//! Cross-crate integration tests: the full learn → formula → evaluate
//! pipeline, the hardness reduction against direct model checking, and
//! relational round trips.

use folearn_suite::core::bruteforce::{brute_force_erm, optimal_error};
use folearn_suite::core::fit::TypeMode;
use folearn_suite::core::ndlearner::{nd_learn, FinalRule, NdConfig, SearchMode};
use folearn_suite::core::problem::{ErmInstance, TrainingSequence};
use folearn_suite::core::realizable::realizable_k1;
use folearn_suite::core::shared_arena;
use folearn_suite::graph::splitter::GraphClass;
use folearn_suite::graph::{generators, ColorId, Vocabulary, V};
use folearn_suite::hardness::{model_check_via_erm, BruteForceOracle};
use folearn_suite::logic::{eval, parse};
use folearn_suite::relational::demo::employees;
use folearn_suite::relational::{encode_instance, translate_query};
use folearn_suite::relational::schema::RelFormula;

fn red_tree(n: usize, stride: usize, seed: u64) -> folearn_suite::graph::Graph {
    let tree = generators::random_tree(n, Vocabulary::new(["Red"]), seed);
    generators::periodically_colored(&tree, ColorId(0), stride)
}

#[test]
fn learned_formula_round_trips_through_the_evaluator() {
    // Learn, materialise the formula, re-evaluate it with the naive
    // model checker, and demand pointwise agreement with the hypothesis.
    let g = red_tree(18, 4, 3);
    let target = |t: &[V]| {
        g.neighbors(t[0])
            .iter()
            .any(|&w| g.has_color(V(w), ColorId(0)))
    };
    let examples = TrainingSequence::label_all_tuples(&g, 1, target);
    let inst = ErmInstance::new(&g, examples, 1, 0, 1, 0.0);
    let arena = shared_arena(&g);
    let res = brute_force_erm(&inst, TypeMode::Global, &arena);
    assert_eq!(res.error, 0.0);
    let phi = res.hypothesis.to_formula();
    for v in g.vertices() {
        assert_eq!(
            eval::satisfies(&g, &phi, &[v]),
            target(&[v]),
            "formula disagrees at {v}"
        );
    }
}

#[test]
fn nd_learner_matches_brute_force_quality_on_trees() {
    for seed in [1u64, 5, 9] {
        let g = generators::random_tree(18, Vocabulary::empty(), seed);
        let w = V((seed as u32 * 7) % 18);
        let target = |t: &[V]| t[0] == w || g.has_edge(t[0], w);
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.2);
        let arena = shared_arena(&g);
        let eps_star = optimal_error(&inst, &arena);
        let cfg = NdConfig {
            class: GraphClass::Forest,
            search: SearchMode::Exhaustive,
            final_rule: FinalRule::LocalAuto,
            locality_radius: Some(1),
            max_rounds: Some(3),
            max_branches: 150,
        };
        let report = nd_learn(&inst, &cfg, &arena);
        assert!(
            report.error <= eps_star + inst.epsilon + 1e-9,
            "seed {seed}: err {} > ε* {} + ε {}",
            report.error,
            eps_star,
            inst.epsilon
        );
    }
}

#[test]
fn reduction_agrees_with_direct_mc_on_a_sentence_suite() {
    let g = red_tree(8, 3, 11);
    let vocab = g.vocab().as_ref().clone();
    let sentences = [
        "exists x0. Red(x0) & forall x1. E(x0, x1) -> !Red(x1)",
        "forall x0. exists x1. E(x0, x1)",
        "exists x0. forall x1. E(x0, x1) -> Red(x1)",
    ];
    for s in sentences {
        let phi = parse(s, &vocab).unwrap();
        let mut oracle = BruteForceOracle::new();
        let report = model_check_via_erm(&g, &phi, &mut oracle);
        assert_eq!(report.result, eval::models(&g, &phi), "on {s}");
    }
}

#[test]
fn realizable_learner_agrees_with_brute_force() {
    let g = generators::star(11, Vocabulary::empty());
    let center = V(0);
    let target = |t: &[V]| g.has_edge(t[0], center);
    let examples = TrainingSequence::label_all_tuples(&g, 1, target);
    // Algorithm 2 path:
    let vocab = g.vocab().as_ref().clone();
    let candidates = vec![parse("E(x0, x1)", &vocab).unwrap()];
    let res = realizable_k1(&g, &examples, &candidates, 1).expect("realisable");
    assert_eq!(res.params, vec![center]);
    // Brute-force path:
    let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.0);
    let arena = shared_arena(&g);
    let bf = brute_force_erm(&inst, TypeMode::Global, &arena);
    assert_eq!(bf.error, 0.0);
    for v in g.vertices() {
        let via_formula = {
            let mut a = eval::Assignment::from_tuple(&[v]);
            a.set(1, res.params[0]);
            eval::eval(&g, &res.formula, &mut a)
        };
        assert_eq!(via_formula, bf.hypothesis.predict(&g, &[v]), "at {v}");
    }
}

#[test]
fn relational_learning_end_to_end() {
    // Learn "is senior or managed by a senior" over the demo database,
    // through the incidence encoding.
    let (inst, rels) = employees();
    let intent = RelFormula::Or(vec![
        RelFormula::Atom(rels.senior, vec![0]),
        RelFormula::Exists(
            1,
            Box::new(RelFormula::And(vec![
                RelFormula::Atom(rels.manages, vec![1, 0]),
                RelFormula::Atom(rels.senior, vec![1]),
            ])),
        ),
    ]);
    let enc = encode_instance(&inst);
    let translated = translate_query(&intent, &enc);
    // Sanity: translation preserved satisfaction.
    for e in inst.elements() {
        assert_eq!(
            intent.satisfies(&inst, &[e]),
            eval::satisfies(&enc.graph, &translated, &[enc.element_vertex(e)])
        );
    }
    // Learn from the labels.
    let labelled = inst
        .elements()
        .map(|e| (vec![e], intent.satisfies(&inst, &[e])));
    let examples = enc.to_training_sequence(labelled);
    let q = translated.quantifier_rank();
    let erm = ErmInstance::new(&enc.graph, examples, 1, 0, q, 0.0);
    let arena = shared_arena(&enc.graph);
    let res = brute_force_erm(&erm, TypeMode::Global, &arena);
    assert_eq!(res.error, 0.0, "intent of rank {q} must be fit exactly");
    for e in inst.elements() {
        assert_eq!(
            res.hypothesis.predict(&enc.graph, &[enc.element_vertex(e)]),
            intent.satisfies(&inst, &[e]),
            "element {e}"
        );
    }
}

#[test]
fn pair_query_with_parameter_end_to_end() {
    // k = 2 and ℓ = 1: learn "x0 and x1 are both adjacent to w".
    let g = generators::star(8, Vocabulary::empty());
    let w = V(0);
    let target = |t: &[V]| g.has_edge(t[0], w) && g.has_edge(t[1], w);
    let examples = TrainingSequence::label_all_tuples(&g, 2, target);
    let inst = ErmInstance::new(&g, examples, 2, 1, 0, 0.0);
    let arena = shared_arena(&g);
    let res = brute_force_erm(&inst, TypeMode::Global, &arena);
    assert_eq!(res.error, 0.0);
    assert!(res.hypothesis.predict(&g, &[V(1), V(2)]));
    assert!(!res.hypothesis.predict(&g, &[V(0), V(2)]));
}
