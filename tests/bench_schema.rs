//! Schema sanity for the committed `BENCH_*.json` artifacts: every file
//! must parse with the workspace's shared [`Json`] type and carry the
//! top-level keys downstream tooling greps for, so bench writers cannot
//! silently drift from the shared `write_json_file` conventions.

use folearn_obs::Json;

fn bench_files() -> Vec<(String, String)> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = Vec::new();
    for entry in std::fs::read_dir(root).expect("repo root is readable") {
        let path = entry.expect("dir entry").path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n.to_string(),
            None => continue,
        };
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {name}: {e}"));
            out.push((name, text));
        }
    }
    out.sort();
    out
}

#[test]
fn every_bench_artifact_parses_and_names_its_experiment() {
    let files = bench_files();
    assert!(
        files.len() >= 5,
        "expected the E16/E17/E18/E19/E20 artifacts at least, found {:?}",
        files.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );
    for (name, text) in &files {
        let v = Json::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let experiment = v
            .get("experiment")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{name}: missing \"experiment\" key"));
        assert!(
            experiment.starts_with('E'),
            "{name}: experiment id {experiment:?} is not an E-number"
        );
        assert!(
            matches!(v, Json::Obj(_)),
            "{name}: top level must be an object"
        );
        // The shared writer renders pretty with a trailing newline;
        // catching hand-rolled writers here keeps the artifacts uniform.
        assert!(
            text.ends_with('\n') && text.starts_with("{\n"),
            "{name}: not written via folearn_bench::write_json_file"
        );
    }
}

#[test]
fn bench_artifacts_respect_their_own_acceptance_flags() {
    for (name, text) in bench_files() {
        let v = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Artifacts that record a bit-identity claim must record it true:
        // a committed regression is a broken build, not a data point.
        if let Some(flag) = v.get("all_bit_identical").and_then(Json::as_bool) {
            assert!(flag, "{name}: all_bit_identical is false");
        }
    }
}

#[test]
fn the_vm_artifact_records_a_real_speedup() {
    let (name, text) = bench_files()
        .into_iter()
        .find(|(n, _)| n == "BENCH_vm.json")
        .expect("the E20 compiled-evaluation artifact must be committed");
    let v = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(v.get("experiment").and_then(Json::as_str), Some("E20"));
    // The headline number is the *minimum* sweep speedup. The committed
    // artifact must never show the VM losing to the tree walker — that
    // would mean the compiled engine regressed and the run that produced
    // the artifact failed its own ≥5× verdict.
    let speedup = v
        .get("speedup")
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("{name}: missing speedup"));
    assert!(speedup >= 1.0, "{name}: VM slower than the tree walker");
    // Bit-identity is the whole point of a differential artifact: both
    // the per-sweep flag and every row must record it.
    assert_eq!(
        v.get("all_bit_identical").and_then(Json::as_bool),
        Some(true),
        "{name}: sweeps diverged from the tree walker"
    );
    let Some(Json::Arr(sweeps)) = v.get("sweeps") else {
        panic!("{name}: missing sweeps array")
    };
    assert!(!sweeps.is_empty(), "{name}: no sweep rows");
    for row in sweeps {
        assert_eq!(row.get("bit_identical").and_then(Json::as_bool), Some(true));
    }
    // The daemon comparison must have produced the same hypothesis under
    // both engines.
    assert_eq!(
        v.get("server")
            .and_then(|s| s.get("outcomes_identical"))
            .and_then(Json::as_bool),
        Some(true),
        "{name}: engines disagreed on a server solve"
    );
}

#[test]
fn the_fault_artifact_records_full_recovery() {
    let (name, text) = bench_files()
        .into_iter()
        .find(|(n, _)| n == "BENCH_fault.json")
        .expect("the E19 fault-injection artifact must be committed");
    let v = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(v.get("experiment").and_then(Json::as_str), Some("E19"));
    // The acceptance criterion: every injected fault was absorbed by the
    // retry layer. A nonzero count here is a broken build, not a data
    // point — the run that produced the artifact failed its own verdict.
    let unrecovered = v
        .get("unrecovered_errors")
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("{name}: missing unrecovered_errors"));
    assert_eq!(unrecovered, 0, "{name}: faults went unrecovered");
    // And the run must actually have exercised the fault path: an artifact
    // produced against a transparent proxy proves nothing.
    let faults = v
        .get("total_faults_injected")
        .and_then(Json::as_usize)
        .unwrap_or(0);
    assert!(faults > 0, "{name}: no faults were injected");
    // Retry histograms must be bounded by the configured retry cap.
    let cap = v.get("max_retries").and_then(Json::as_usize).unwrap_or(0);
    let mut histograms: Vec<&Json> = Vec::new();
    if let Some(Json::Arr(modes)) = v.get("modes") {
        histograms.extend(modes.iter().filter_map(|m| m.get("retry_histogram")));
    }
    if let Some(h) = v.get("loadgen").and_then(|l| l.get("retry_histogram")) {
        histograms.push(h);
    }
    assert!(!histograms.is_empty(), "{name}: no retry histograms");
    for h in histograms {
        let Json::Arr(buckets) = h else {
            panic!("{name}: retry_histogram is not an array")
        };
        assert!(
            buckets.len() <= cap + 1,
            "{name}: a call retried more than the configured cap {cap}"
        );
    }
}

#[test]
fn the_cluster_artifact_records_identity_and_hedging() {
    let (name, text) = bench_files()
        .into_iter()
        .find(|(n, _)| n == "BENCH_cluster.json")
        .expect("the E21 cluster artifact must be committed");
    let v = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(v.get("experiment").and_then(Json::as_str), Some("E21"));
    // The headline claim: the routed reduction — through a backend kill
    // and a garbled link — matched the in-process oracle bit for bit.
    assert_eq!(
        v.get("all_bit_identical").and_then(Json::as_bool),
        Some(true),
        "{name}: the cluster reduction diverged from in-process"
    );
    // Every loadgen error must have been absorbed by retries/failover.
    let unrecovered = v
        .get("unrecovered_errors")
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("{name}: missing unrecovered_errors"));
    assert_eq!(unrecovered, 0, "{name}: cluster errors went unrecovered");
    // The failure paths must actually have been exercised: a run where
    // the kill never forced a failover proves nothing.
    for key in ["replica_retries", "failovers", "garble_faults_injected"] {
        let n = v.get(key).and_then(Json::as_usize).unwrap_or(0);
        assert!(n > 0, "{name}: {key} is zero — the failure path never ran");
    }
    // Hedging must have fired and won; the win rate is a ratio of those
    // counters and must land in [0, 1].
    let fired = v.get("hedges_fired").and_then(Json::as_usize).unwrap_or(0);
    assert!(fired > 0, "{name}: no hedges fired under the slow backend");
    let rate = v
        .get("hedge_win_rate")
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("{name}: missing hedge_win_rate"));
    assert!(
        (0.0..=1.0).contains(&rate) && rate > 0.0,
        "{name}: hedge_win_rate {rate} is not a meaningful ratio"
    );
    // And the point of hedging: the hedged p99 beat the unhedged p99.
    let hedged = v.get("hedged_p99_us").and_then(Json::as_usize).unwrap_or(0);
    let unhedged = v
        .get("unhedged_p99_us")
        .and_then(Json::as_usize)
        .unwrap_or(0);
    assert!(
        hedged > 0 && unhedged > hedged,
        "{name}: hedged p99 {hedged}us did not beat unhedged {unhedged}us"
    );
    // Per-target loadgen rows: every target saw traffic, none saw errors.
    let Some(Json::Arr(targets)) = v.get("loadgen").and_then(|l| l.get("targets")) else {
        panic!("{name}: missing loadgen.targets")
    };
    assert!(targets.len() >= 2, "{name}: loadgen did not fan out");
    for row in targets {
        assert!(row.get("requests").and_then(Json::as_usize).unwrap_or(0) > 0);
        assert_eq!(row.get("errors").and_then(Json::as_usize), Some(0));
    }
}

#[test]
fn the_cluster_obs_artifact_records_complete_traces_within_budget() {
    let (name, text) = bench_files()
        .into_iter()
        .find(|(n, _)| n == "BENCH_cluster_obs.json")
        .expect("the E22 cluster-observability artifact must be committed");
    let v = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(v.get("experiment").and_then(Json::as_str), Some("E22"));
    // The headline budget: enabling tracing on the router must not slow
    // the (unsampled) reduction workload by more than 5%. Stitching is
    // per-request opt-in, so this should sit at ~0.
    let overhead = v
        .get("overhead_pct")
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("{name}: missing overhead_pct"));
    assert!(
        (0.0..=5.0).contains(&overhead),
        "{name}: tracing overhead {overhead}% blows the 5% budget"
    );
    // Every audited trace stitched into one complete tree: a router root
    // with a won attempt holding the backend's server.solve subtree.
    assert_eq!(
        v.get("trace_complete").and_then(Json::as_bool),
        Some(true),
        "{name}: some solves came back with incomplete span trees"
    );
    let audited = v
        .get("traces_audited")
        .and_then(Json::as_usize)
        .unwrap_or(0);
    assert!(audited > 0, "{name}: no traces were audited");
    // The interesting span kinds must all have been exercised: a run
    // where no hedge, failover, or cache replay shows up in any trace
    // proves nothing about stitching them.
    for key in ["hedge_spans", "failover_spans", "replay_spans"] {
        let n = v.get(key).and_then(Json::as_usize).unwrap_or(0);
        assert!(n > 0, "{name}: {key} is zero — that span kind never ran");
    }
    // Propagation: a client-supplied trace id must have reached the
    // stitched root's meta.
    assert_eq!(
        v.get("client_trace_id_propagated").and_then(Json::as_bool),
        Some(true),
        "{name}: the client's trace id was lost in the router"
    );
    // Fan-in stats: all backends reported, and the merged per-endpoint
    // histogram survived aggregation.
    let stats = v
        .get("stats")
        .unwrap_or_else(|| panic!("{name}: missing stats section"));
    let total = stats
        .get("backends_total")
        .and_then(Json::as_usize)
        .unwrap_or(0);
    let reporting = stats
        .get("backends_reporting")
        .and_then(Json::as_usize)
        .unwrap_or(0);
    assert!(total > 0 && reporting == total, "{name}: backends missing from the fan-in");
    assert_eq!(
        stats.get("merged_solve_hist").and_then(Json::as_bool),
        Some(true),
        "{name}: the merged solve histogram is missing"
    );
}

#[test]
fn the_crash_artifact_records_durable_recovery_without_reseeds() {
    let (name, text) = bench_files()
        .into_iter()
        .find(|(n, _)| n == "BENCH_crash.json")
        .expect("the E24 crash-recovery artifact must be committed");
    let v = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(v.get("experiment").and_then(Json::as_str), Some("E24"));
    // The headline claim: the reduction matched the in-process oracle
    // bit for bit through a mid-reduction SIGKILL + restart, in both the
    // durable and the volatile cell.
    assert_eq!(
        v.get("all_bit_identical").and_then(Json::as_bool),
        Some(true),
        "{name}: the reduction diverged through the crash"
    );
    let unrecovered = v
        .get("unrecovered_errors")
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("{name}: missing unrecovered_errors"));
    assert_eq!(unrecovered, 0, "{name}: crash errors went unrecovered");
    // The replay-vs-reseed timing comparison is the artifact's point.
    for key in ["durable_recovery_ms", "cold_reseed_ms"] {
        assert!(
            v.get(key).and_then(Json::as_usize).is_some(),
            "{name}: missing {key}"
        );
    }
    let Some(Json::Arr(cell_rows)) = v.get("cells") else {
        panic!("{name}: missing cells array")
    };
    let cell = |which: &str| {
        cell_rows
            .iter()
            .find(|c| c.get("cell").and_then(Json::as_str) == Some(which))
            .unwrap_or_else(|| panic!("{name}: missing {which} cell"))
    };
    // Durable restart: state came back from the WAL — records actually
    // replayed, and the router's anti-entropy sweep had *nothing* to
    // re-seed. A nonzero reseed count here means recovery leaned on
    // re-registration, which is exactly what --data-dir must prevent.
    let durable = cell("durable");
    assert_eq!(durable.get("bit_identical").and_then(Json::as_bool), Some(true));
    assert_eq!(
        durable.get("reseeds").and_then(Json::as_usize),
        Some(0),
        "{name}: the durable restart needed router reseeds"
    );
    assert!(
        durable
            .get("wal_records_replayed")
            .and_then(Json::as_usize)
            .unwrap_or(0)
            > 0,
        "{name}: the durable restart replayed nothing"
    );
    // Volatile restart: the control cell must really have come back
    // empty, or the comparison proves nothing.
    let volatile = cell("volatile");
    assert_eq!(volatile.get("bit_identical").and_then(Json::as_bool), Some(true));
    assert_eq!(
        volatile.get("wal_records_replayed").and_then(Json::as_usize),
        Some(0),
        "{name}: the volatile cell replayed a WAL"
    );
    // Both cells report the restart clock that feeds the headline
    // timings.
    for c in [durable, volatile] {
        assert!(
            c.get("restart_ms").and_then(Json::as_usize).is_some()
                && c.get("converge_ms").and_then(Json::as_usize).is_some(),
            "{name}: a cell is missing its restart/converge timings"
        );
    }
}

#[test]
fn the_event_loop_artifact_records_the_scaling_win() {
    let (name, text) = bench_files()
        .into_iter()
        .find(|(n, _)| n == "BENCH_event_loop.json")
        .expect("the E23 connection-scaling artifact must be committed");
    let v = Json::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(v.get("experiment").and_then(Json::as_str), Some("E23"));
    // The scaling claim is only meaningful at real concurrency.
    let high = v
        .get("high_concurrency")
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("{name}: missing high_concurrency"));
    assert!(high >= 1000, "{name}: judged at only {high} connections");
    // Zero unrecovered errors across every run — the crash class this
    // rewrite exists to fix. A nonzero count is a broken build, not a
    // data point.
    let unrecovered = v
        .get("unrecovered_errors")
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("{name}: missing unrecovered_errors"));
    assert_eq!(unrecovered, 0, "{name}: errors went unrecovered");
    assert_eq!(
        v.get("sustained_all_requests").and_then(Json::as_bool),
        Some(true),
        "{name}: the high-concurrency runs dropped requests"
    );
    // The headline: the event core strictly out-throughputs the
    // thread-per-connection baseline at high concurrency.
    let event = v
        .get("event_rps_high")
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("{name}: missing event_rps_high"));
    let threaded = v
        .get("threaded_rps_high")
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("{name}: missing threaded_rps_high"));
    assert!(
        event > threaded && threaded > 0.0,
        "{name}: event core {event} req/s does not beat threaded {threaded} req/s"
    );
    // Both cores must appear in the per-run rows, each error-free.
    let Some(Json::Arr(runs)) = v.get("runs") else {
        panic!("{name}: missing runs array")
    };
    let mut cores_at_high = Vec::new();
    for row in runs {
        assert_eq!(
            row.get("unrecovered_errors").and_then(Json::as_usize),
            Some(0)
        );
        if row.get("connections").and_then(Json::as_usize) == Some(high) {
            cores_at_high.extend(row.get("core").and_then(Json::as_str).map(str::to_string));
        }
    }
    cores_at_high.sort();
    assert_eq!(
        cores_at_high,
        ["event", "thread"],
        "{name}: both cores must be measured at {high} connections"
    );
}
