//! Property-based tests (proptest) for the workspace's core invariants.
//!
//! * naive vs type-based model checking agree on random formulas/graphs;
//! * the type arena agrees with the Ehrenfeucht–Fraïssé game;
//! * Gaifman locality (Fact 5) holds at radius `r(q)`;
//! * Lemma 3's covering invariants hold on random graphs;
//! * Hintikka formulas characterise exactly their type;
//! * the parser round-trips the printer;
//! * the Forest splitter wins within its round bound on random trees;
//! * type-majority fitting is optimal among type-set hypotheses.

use std::sync::Arc;

use proptest::prelude::*;

use folearn_suite::core::bruteforce::{
    brute_force_erm_sequential, brute_force_erm_with, BruteForceOpts,
};
use folearn_suite::core::covering::{verify_covering, vitali_cover};
use folearn_suite::core::fit::{fit_with_params, TypeMode};
use folearn_suite::core::problem::{ErmInstance, TrainingSequence};
use folearn_suite::core::shared_arena;
use folearn_suite::graph::splitter::{
    play_game, ForestSplitter, MaxBallConnector, RandomConnector, SplitterStrategy,
};
use folearn_suite::graph::{generators, Graph, GraphBuilder, Vocabulary, V};
use folearn_suite::logic::random::{random_formula, RandomFormulaConfig};
use folearn_suite::logic::{eval, parser};
use folearn_suite::types::ef::duplicator_wins;
use folearn_suite::types::hintikka::hintikka;
use folearn_suite::types::satisfies::satisfies_via_types;
use folearn_suite::types::{compute, gaifman_radius, local_type, TypeArena};

/// A random coloured graph from (n, edge list, colour mask) inputs.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..8, proptest::collection::vec((0u32..8, 0u32..8), 0..14), 0u64..256)
        .prop_map(|(n, edges, mask)| {
            let vocab = Vocabulary::new(["Red"]);
            let mut b = GraphBuilder::with_vertices(vocab, n);
            for (u, v) in edges {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v {
                    b.add_edge(V(u), V(v));
                }
            }
            for i in 0..n {
                if mask >> i & 1 == 1 {
                    b.set_color(V(i as u32), folearn_suite::graph::ColorId(0));
                }
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn naive_and_type_based_eval_agree(g in arb_graph(), seed in 0u64..500) {
        let cfg = RandomFormulaConfig {
            free_vars: 1,
            quantifier_rank: 2,
            max_fanout: 3,
            bool_depth: 2,
            counting_cap: None,
        };
        let phi = random_formula(g.vocab(), &cfg, seed);
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        for v in g.vertices() {
            let naive = eval::satisfies(&g, &phi, &[v]);
            let typed = satisfies_via_types(&g, &mut arena, &phi, &[v]);
            prop_assert_eq!(naive, typed, "formula {} at {}", phi, v);
        }
    }

    #[test]
    fn arena_agrees_with_ef_game(g in arb_graph(), q in 0usize..3) {
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let verts: Vec<V> = g.vertices().collect();
        for &u in verts.iter().take(4) {
            for &v in verts.iter().take(4) {
                let types_equal = compute::type_of(&g, &mut arena, &[u], q)
                    == compute::type_of(&g, &mut arena, &[v], q);
                let ef = duplicator_wins(&g, &[u], &g, &[v], q);
                prop_assert_eq!(types_equal, ef, "q={} u={} v={}", q, u, v);
            }
        }
    }

    #[test]
    fn gaifman_locality_fact5(g in arb_graph()) {
        let q = 1;
        let r = gaifman_radius(q);
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let verts: Vec<V> = g.vertices().collect();
        for &u in &verts {
            for &v in &verts {
                let lu = local_type(&g, &mut arena, &[u], q, r);
                let lv = local_type(&g, &mut arena, &[v], q, r);
                if lu == lv {
                    let tu = compute::type_of(&g, &mut arena, &[u], q);
                    let tv = compute::type_of(&g, &mut arena, &[v], q);
                    prop_assert_eq!(tu, tv, "Fact 5 violated at {}, {}", u, v);
                }
            }
        }
    }

    #[test]
    fn lemma3_invariants_hold(g in arb_graph(), picks in proptest::collection::vec(0u32..8, 1..5), r in 1usize..4) {
        let x: Vec<V> = picks
            .into_iter()
            .map(|p| V(p % g.num_vertices() as u32))
            .collect();
        let c = vitali_cover(&g, &x, r);
        prop_assert!(verify_covering(&g, &x, r, &c));
        prop_assert!(c.steps <= x.len());
        // R = 3^steps · r exactly.
        prop_assert_eq!(c.radius, 3usize.pow(c.steps as u32) * r);
    }

    #[test]
    fn hintikka_characterises_its_type(g in arb_graph(), q in 0usize..2) {
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let types: Vec<_> = g
            .vertices()
            .map(|v| compute::type_of(&g, &mut arena, &[v], q))
            .collect();
        for (v, &tv) in g.vertices().zip(&types).take(3) {
            let hin = hintikka(&arena, tv);
            for (u, &tu) in g.vertices().zip(&types) {
                prop_assert_eq!(
                    eval::satisfies(&g, &hin, &[u]),
                    tu == tv,
                    "hintikka of {} at {} (q={})", v, u, q
                );
            }
        }
    }

    #[test]
    fn printer_parser_round_trip(seed in 0u64..2000) {
        let vocab = Vocabulary::new(["Red", "Blue"]);
        let cfg = RandomFormulaConfig {
            free_vars: 2,
            quantifier_rank: 2,
            max_fanout: 3,
            bool_depth: 2,
            counting_cap: None,
        };
        let phi = random_formula(&vocab, &cfg, seed);
        let printed = parser::render(&phi, &vocab);
        let reparsed = parser::parse(&printed, &vocab);
        prop_assert!(reparsed.is_ok(), "unparseable: {}", printed);
        prop_assert_eq!(reparsed.unwrap(), phi);
    }

    #[test]
    fn forest_splitter_wins_within_bound(n in 2usize..60, seed in 0u64..50, r in 1usize..4) {
        let g = generators::random_tree(n, Vocabulary::empty(), seed);
        let mut s = ForestSplitter;
        let bound = s.round_bound(r).unwrap();
        let mut c = RandomConnector::new(seed);
        let result = play_game(&g, r, &mut s, &mut c, bound + 3);
        prop_assert!(result.splitter_won, "splitter lost within {} rounds", bound + 3);
        prop_assert!(result.rounds <= bound, "rounds {} > bound {}", result.rounds, bound);
    }

    #[test]
    fn fit_error_is_minimal_over_type_sets(g in arb_graph(), labels in 0u64..256) {
        // Compare the majority fit against every subset of realised types
        // (exact minimisation for small instances).
        let examples = TrainingSequence::from_pairs(
            g.vertices()
                .enumerate()
                .map(|(i, v)| (vec![v], labels >> i & 1 == 1)),
        );
        let arena = shared_arena(&g);
        let q = 1;
        let (_, fit_err) = fit_with_params(&g, &examples, &[], q, TypeMode::Global, &arena);
        // Enumerate all type subsets.
        let types: Vec<_> = {
            let mut a = arena.lock();
            g.vertices()
                .map(|v| compute::type_of(&g, &mut a, &[v], q))
                .collect()
        };
        let mut unique = types.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assume!(unique.len() <= 12);
        let mut best = f64::INFINITY;
        for mask in 0u32..(1u32 << unique.len()) {
            let positive: Vec<_> = unique
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &t)| t)
                .collect();
            let err = examples.error_of(|t| {
                let idx = t[0].index();
                positive.contains(&types[idx])
            });
            best = best.min(err);
        }
        prop_assert!((fit_err - best).abs() < 1e-12, "fit {} vs best {}", fit_err, best);
    }

    #[test]
    fn parallel_erm_bit_identical_to_sequential(
        g in arb_graph(), labels in 0u64..256, ell in 0usize..3, threads in 1usize..5
    ) {
        // The parallel sweep must return the same (error, hypothesis) as
        // the sequential reference scan for any thread count / block size.
        let examples = TrainingSequence::from_pairs(
            g.vertices()
                .enumerate()
                .map(|(i, v)| (vec![v], labels >> i & 1 == 1)),
        );
        let inst = ErmInstance::new(&g, examples, 1, ell, 1, 0.0);
        let seq = {
            let arena = shared_arena(&g);
            brute_force_erm_sequential(&inst, TypeMode::Global, &arena)
        };
        let arena = shared_arena(&g);
        let opts = BruteForceOpts {
            threads: Some(threads),
            prune: true,
            block_size: Some(2),
        };
        let par = brute_force_erm_with(&inst, TypeMode::Global, &arena, &opts);
        prop_assert_eq!(par.error.to_bits(), seq.error.to_bits(),
            "errors differ: {} vs {}", par.error, seq.error);
        prop_assert_eq!(par.hypothesis.params(), seq.hypothesis.params());
        for v in g.vertices() {
            prop_assert_eq!(
                par.hypothesis.predict(&g, &[v]),
                seq.hypothesis.predict(&g, &[v]),
                "predictions diverge at {}", v
            );
        }
    }

    #[test]
    fn pruning_never_changes_the_optimum(
        g in arb_graph(), labels in 0u64..256, ell in 0usize..3
    ) {
        let examples = TrainingSequence::from_pairs(
            g.vertices()
                .enumerate()
                .map(|(i, v)| (vec![v], labels >> i & 1 == 1)),
        );
        let inst = ErmInstance::new(&g, examples, 1, ell, 1, 0.0);
        let run = |prune: bool| {
            let arena = shared_arena(&g);
            let opts = BruteForceOpts {
                threads: Some(1),
                prune,
                block_size: None,
            };
            brute_force_erm_with(&inst, TypeMode::Global, &arena, &opts)
        };
        let full = run(false);
        let pruned = run(true);
        prop_assert_eq!(full.error.to_bits(), pruned.error.to_bits());
        prop_assert_eq!(full.hypothesis.params(), pruned.hypothesis.params());
        prop_assert_eq!(full.pruned_params, 0);
        // Pruning abandons tallies early but touches the same tuples.
        prop_assert_eq!(
            pruned.evaluated_params + pruned.pruned_params,
            full.evaluated_params
        );
    }

    #[test]
    fn counting_eval_agrees_across_code_paths(g in arb_graph(), seed in 0u64..300) {
        // Naive evaluation vs counting-type-based evaluation of FO+C
        // formulas (counting quantifiers up to cap 3).
        let cap = 3u32;
        let cfg = RandomFormulaConfig {
            free_vars: 1,
            quantifier_rank: 2,
            max_fanout: 3,
            bool_depth: 2,
            counting_cap: Some(cap),
        };
        let phi = random_formula(g.vocab(), &cfg, seed);
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        for v in g.vertices() {
            let naive = eval::satisfies(&g, &phi, &[v]);
            let tid = folearn_suite::types::compute::counting_type_of(
                &g, &mut arena, &[v], phi.quantifier_rank(), cap,
            );
            let typed = folearn_suite::types::satisfies::type_satisfies(&arena, tid, &phi);
            prop_assert_eq!(naive, typed, "formula {} at {}", phi, v);
        }
    }

    #[test]
    fn counting_parser_round_trip(seed in 0u64..1000) {
        let vocab = Vocabulary::new(["Red"]);
        let cfg = RandomFormulaConfig {
            free_vars: 1,
            quantifier_rank: 2,
            max_fanout: 3,
            bool_depth: 2,
            counting_cap: Some(4),
        };
        let phi = random_formula(&vocab, &cfg, seed);
        let printed = parser::render(&phi, &vocab);
        let reparsed = parser::parse(&printed, &vocab);
        prop_assert!(reparsed.is_ok(), "unparseable: {}", printed);
        prop_assert_eq!(reparsed.unwrap(), phi);
    }

    #[test]
    fn counting_hintikka_characterises(g in arb_graph(), cap in 2u32..4) {
        // FO+C Hintikka formulas characterise exactly their counting type.
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let types: Vec<_> = g
            .vertices()
            .map(|v| folearn_suite::types::compute::counting_type_of(&g, &mut arena, &[v], 1, cap))
            .collect();
        for (v, &tv) in g.vertices().zip(&types).take(3) {
            let hin = hintikka(&arena, tv);
            for (u, &tu) in g.vertices().zip(&types) {
                prop_assert_eq!(
                    eval::satisfies(&g, &hin, &[u]),
                    tu == tv,
                    "counting hintikka of {} at {} (cap={})", v, u, cap
                );
            }
        }
    }

    #[test]
    fn wcol_invariants(g in arb_graph(), r in 0usize..4) {
        use folearn_suite::graph::wcol::{degeneracy_order, weak_reach_sets};
        let order = degeneracy_order(&g);
        prop_assert_eq!(order.len(), g.num_vertices());
        let wr = weak_reach_sets(&g, &order, r);
        let pos: std::collections::HashMap<V, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for v in g.vertices() {
            // v always weakly reaches itself; everything reached is ≤ v in
            // the order and within distance r.
            prop_assert!(wr[v.index()].contains(&v));
            for &u in &wr[v.index()] {
                prop_assert!(pos[&u] <= pos[&v]);
                let d = folearn_suite::graph::bfs::distance(&g, u, v);
                prop_assert!(d.is_some_and(|d| d <= r), "u={} v={} r={}", u, v, r);
            }
        }
    }

    #[test]
    fn wl_refines_counting_one_types(g in arb_graph(), cap in 1u32..4) {
        // Same 1-WL colour after one round ⇒ same counting 1-type at any
        // cap (WL sees the full neighbour multiset; counting types see it
        // capped).
        use folearn_suite::graph::wl::color_refinement;
        let wl = color_refinement(&g, 1);
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let types: Vec<_> = g
            .vertices()
            .map(|v| folearn_suite::types::compute::counting_type_of(&g, &mut arena, &[v], 1, cap))
            .collect();
        for u in g.vertices() {
            for v in g.vertices() {
                if wl.same_class(u, v) {
                    prop_assert_eq!(
                        types[u.index()], types[v.index()],
                        "WL-equal {} {} but counting types differ (cap={})", u, v, cap
                    );
                }
            }
        }
    }

    #[test]
    fn dfa_minimization_preserves_language(
        seed in 0u64..500, states in 2usize..6, sigma in 1usize..4
    ) {
        use folearn_suite::strings::Dfa;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let delta: Vec<Vec<u32>> = (0..states)
            .map(|_| (0..sigma).map(|_| rng.random_range(0..states as u32)).collect())
            .collect();
        let accepting: Vec<bool> = (0..states).map(|_| rng.random_bool(0.5)).collect();
        let d = Dfa::new(delta, accepting, 0);
        let m = d.minimize();
        prop_assert!(m.num_states() <= d.num_states());
        prop_assert!(m.equivalent(&d));
        // Spot-check on random words too.
        for _ in 0..20 {
            let len = rng.random_range(0..12);
            let w: Vec<u8> = (0..len).map(|_| rng.random_range(0..sigma as u8)).collect();
            prop_assert_eq!(d.accepts(&w), m.accepts(&w));
        }
    }

    #[test]
    fn preprocessed_queries_match_naive(seed in 0u64..300, n in 1usize..50) {
        use folearn_suite::strings::query::standard_class;
        use folearn_suite::strings::Word;
        let w = Word::random(n, 2, seed);
        for q in standard_class(2) {
            let pre = q.preprocess(&w);
            for i in 0..w.len() {
                prop_assert_eq!(
                    pre.classify(i),
                    q.classify_naive(&w, i),
                    "{} at {} on {}", q.name, i, w
                );
            }
        }
    }

    #[test]
    fn splitter_game_on_trees_max_ball_connector(n in 3usize..40, r in 1usize..3) {
        let g = generators::random_tree(n, Vocabulary::empty(), 99);
        let mut s = ForestSplitter;
        let bound = s.round_bound(r).unwrap();
        let mut c = MaxBallConnector;
        let result = play_game(&g, r, &mut s, &mut c, bound + 3);
        prop_assert!(result.splitter_won);
        prop_assert!(result.rounds <= bound);
    }
}
