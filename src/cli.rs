//! Implementation of the `folearn` command-line tool.
//!
//! The binary (`src/bin/folearn.rs`) is a thin shell around this module so
//! that argument parsing and command execution stay unit-testable.
//!
//! Subcommands:
//!
//! * `learn      --graph G.txt --examples E.txt [--ell N] [--q N] [--solver brute|nd|local] [--mode global|local=R|counting=CAP] [--threads N] [--prune on|off]`
//! * `modelcheck --graph G.txt --formula "<sentence>"`
//! * `splitter   --graph G.txt [--radius R]`
//! * `types      --graph G.txt [--q N] [--k N]`
//! * `dot        --graph G.txt`
//!
//! Graphs use the `folearn_graph::io` exchange format; example files have
//! one example per line: a `+` or `-` label followed by the vertex indices
//! of the tuple (`+ 3 7` labels the pair `(v3, v7)` positive).

use std::collections::HashMap;
use std::fmt::Write as _;

use folearn::bruteforce::BruteForceOpts;
use folearn::ndlearner::NdConfig;
use folearn::problem::{ErmInstance, Example, TrainingSequence};
use folearn::{shared_arena, solve_fo_erm, Solver, TypeMode};
use folearn_graph::splitter::{play_game, GraphClass, MaxBallConnector};
use folearn_graph::{io, Graph, V};
use folearn_logic::{eval, parser};
use folearn_types::census;

/// A fatal CLI error (message for the user).
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parsed command-line options: `--key value` pairs after the subcommand.
#[derive(Debug, Default)]
pub struct Options {
    flags: HashMap<String, String>,
}

impl Options {
    /// Parse `--key value` pairs.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut flags = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| err(format!("expected --flag, got {a:?}")))?;
            let value = it
                .next()
                .ok_or_else(|| err(format!("--{key} needs a value")))?;
            flags.insert(key.to_string(), value.clone());
        }
        Ok(Self { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key).ok_or_else(|| err(format!("missing --{key}")))
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| err(format!("--{key} expects a number, got {s:?}"))),
        }
    }
}

/// Parse an examples file: one example per line, `+`/`-` then vertex ids.
pub fn parse_examples(text: &str, g: &Graph) -> Result<TrainingSequence, CliError> {
    let mut seq = TrainingSequence::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let label = match parts.next() {
            Some("+") => true,
            Some("-") => false,
            other => {
                return Err(err(format!(
                    "line {}: expected '+' or '-', got {other:?}",
                    idx + 1
                )))
            }
        };
        let tuple: Vec<V> = parts
            .map(|s| {
                s.parse::<u32>()
                    .map(V)
                    .map_err(|_| err(format!("line {}: bad vertex id {s:?}", idx + 1)))
            })
            .collect::<Result<_, _>>()?;
        if tuple.is_empty() {
            return Err(err(format!("line {}: empty tuple", idx + 1)));
        }
        for &v in &tuple {
            if v.index() >= g.num_vertices() {
                return Err(err(format!("line {}: vertex {v} out of range", idx + 1)));
            }
        }
        seq.push(Example::new(tuple, label));
    }
    if seq.is_empty() {
        return Err(err("example file contains no examples"));
    }
    Ok(seq)
}

/// Parse a `--mode` string: `global`, `local=R`, `counting=CAP`, or
/// `local-counting=R,CAP`.
pub fn parse_mode(s: &str) -> Result<TypeMode, CliError> {
    if s == "global" {
        return Ok(TypeMode::Global);
    }
    if let Some(r) = s.strip_prefix("local=") {
        let r = r.parse().map_err(|_| err("bad radius in --mode local=R"))?;
        return Ok(TypeMode::Local { r });
    }
    if let Some(cap) = s.strip_prefix("counting=") {
        let cap = cap
            .parse()
            .map_err(|_| err("bad cap in --mode counting=CAP"))?;
        return Ok(TypeMode::GlobalCounting { cap });
    }
    if let Some(rest) = s.strip_prefix("local-counting=") {
        let (r, cap) = rest
            .split_once(',')
            .ok_or_else(|| err("--mode local-counting=R,CAP"))?;
        return Ok(TypeMode::LocalCounting {
            r: r.parse().map_err(|_| err("bad radius"))?,
            cap: cap.parse().map_err(|_| err("bad cap"))?,
        });
    }
    Err(err(format!("unknown --mode {s:?}")))
}

/// Parse an `on`/`off` (or `true`/`false`) switch value.
fn parse_on_off(s: &str, key: &str) -> Result<bool, CliError> {
    match s {
        "on" | "true" | "1" => Ok(true),
        "off" | "false" | "0" => Ok(false),
        _ => Err(err(format!("--{key} expects on|off, got {s:?}"))),
    }
}

fn load_graph(opts: &Options) -> Result<Graph, CliError> {
    let path = opts.require("graph")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| err(format!("cannot read {path}: {e}")))?;
    io::parse_graph(&text).map_err(|e| err(format!("{path}: {e}")))
}

/// Run a subcommand; returns the text to print.
pub fn run(command: &str, args: &[String]) -> Result<String, CliError> {
    let opts = Options::parse(args)?;
    match command {
        "learn" => cmd_learn(&opts),
        "modelcheck" => cmd_modelcheck(&opts),
        "splitter" => cmd_splitter(&opts),
        "types" => cmd_types(&opts),
        "dot" => {
            let g = load_graph(&opts)?;
            Ok(io::to_dot(&g, "G"))
        }
        other => Err(err(format!(
            "unknown command {other:?}; expected learn | modelcheck | splitter | types | dot"
        ))),
    }
}

fn cmd_learn(opts: &Options) -> Result<String, CliError> {
    let g = load_graph(opts)?;
    let examples_path = opts.require("examples")?;
    let text = std::fs::read_to_string(examples_path)
        .map_err(|e| err(format!("cannot read {examples_path}: {e}")))?;
    let examples = parse_examples(&text, &g)?;
    let k = examples.arity();
    let ell = opts.get_usize("ell", 0)?;
    let q = opts.get_usize("q", 1)?;
    let mode = parse_mode(opts.get("mode").unwrap_or("global"))?;
    let solver = match opts.get("solver").unwrap_or("brute") {
        "brute" => Solver::BruteForce {
            mode,
            opts: BruteForceOpts {
                threads: opts.get("threads").map(str::parse).transpose().map_err(
                    |_| err("--threads expects a number (0 = one per core)"),
                )?,
                prune: parse_on_off(opts.get("prune").unwrap_or("on"), "prune")?,
                block_size: None,
            },
        },
        "nd" => Solver::NowhereDense(NdConfig::default()),
        "local" => Solver::LocalAccess {
            param_radius: opts.get_usize("param-radius", 2)?,
            type_radius: opts.get_usize("type-radius", 1)?,
        },
        other => return Err(err(format!("unknown --solver {other:?}"))),
    };
    let inst = ErmInstance::new(&g, examples, k, ell, q, 0.1);
    let arena = shared_arena(&g);
    let report = solve_fo_erm(&inst, &solver, &arena);
    let mut out = String::new();
    let _ = writeln!(out, "solver:          {}", report.solver_name);
    let _ = writeln!(out, "training error:  {:.4}", report.error);
    if report.evaluated_params + report.pruned_params > 0 {
        let _ = writeln!(
            out,
            "work units:      {} ({} evaluated, {} pruned)",
            report.work, report.evaluated_params, report.pruned_params
        );
    } else {
        let _ = writeln!(out, "work units:      {}", report.work);
    }
    let _ = writeln!(out, "hypothesis:      {}", report.hypothesis.describe());
    let phi = report.hypothesis.to_formula();
    let rendered = parser::render(&phi, g.vocab());
    let _ = writeln!(out, "formula (qr {}):", phi.quantifier_rank());
    if rendered.len() > 2000 {
        let cut = rendered
            .char_indices()
            .nth(2000)
            .map_or(rendered.len(), |(i, _)| i);
        let _ = writeln!(
            out,
            "  {} … ({} chars total)",
            &rendered[..cut],
            rendered.len()
        );
    } else {
        let _ = writeln!(out, "  {rendered}");
    }
    Ok(out)
}

fn cmd_modelcheck(opts: &Options) -> Result<String, CliError> {
    let g = load_graph(opts)?;
    let formula = opts.require("formula")?;
    let phi = parser::parse(formula, g.vocab()).map_err(|e| err(e.to_string()))?;
    if !phi.is_sentence() {
        return Err(err("modelcheck expects a sentence (no free variables)"));
    }
    let holds = eval::models(&g, &phi);
    Ok(format!("G ⊨ φ: {holds}\n"))
}

fn cmd_splitter(opts: &Options) -> Result<String, CliError> {
    let g = load_graph(opts)?;
    let radius = opts.get_usize("radius", 2)?;
    let class = GraphClass::Heuristic { assumed_rounds: 0 };
    let mut strategy = class.make_splitter(&g);
    let mut connector = MaxBallConnector;
    let cap = g.num_vertices() + 5;
    let result = play_game(&g, radius, strategy.as_mut(), &mut connector, cap);
    Ok(format!(
        "splitter game (r = {radius}, max-ball Connector): {} rounds, splitter {}\n",
        result.rounds,
        if result.splitter_won { "won" } else { "capped" }
    ))
}

fn cmd_types(opts: &Options) -> Result<String, CliError> {
    let g = load_graph(opts)?;
    let q = opts.get_usize("q", 1)?;
    let k = opts.get_usize("k", 1)?;
    let arena = shared_arena(&g);
    let mut a = arena.lock();
    let groups = census::type_census(&g, &mut a, k, q);
    let mut sizes: Vec<usize> = groups.values().map(Vec::len).collect();
    sizes.sort_unstable_by(|x, y| y.cmp(x));
    Ok(format!(
        "{} distinct {q}-types of {k}-tuples on {} vertices; class sizes: {:?}\n",
        groups.len(),
        g.num_vertices(),
        sizes
    ))
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, Vocabulary};

    use super::*;

    fn write_graph(dir: &std::path::Path) -> std::path::PathBuf {
        let g = generators::periodically_colored(
            &generators::path(8, Vocabulary::new(["Red"])),
            folearn_graph::ColorId(0),
            3,
        );
        let p = dir.join("g.txt");
        std::fs::write(&p, io::to_text(&g)).unwrap();
        p
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("folearn-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn parse_examples_round_trip() {
        let g = generators::path(5, Vocabulary::empty());
        let seq = parse_examples("+ 0\n- 1\n# comment\n+ 4\n", &g).unwrap();
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.positives().count(), 2);
        assert!(parse_examples("+ 9\n", &g).is_err());
        assert!(parse_examples("x 1\n", &g).is_err());
        assert!(parse_examples("", &g).is_err());
    }

    #[test]
    fn parse_mode_variants() {
        assert_eq!(parse_mode("global").unwrap(), TypeMode::Global);
        assert_eq!(parse_mode("local=3").unwrap(), TypeMode::Local { r: 3 });
        assert_eq!(
            parse_mode("counting=2").unwrap(),
            TypeMode::GlobalCounting { cap: 2 }
        );
        assert_eq!(
            parse_mode("local-counting=2,3").unwrap(),
            TypeMode::LocalCounting { r: 2, cap: 3 }
        );
        assert!(parse_mode("nonsense").is_err());
    }

    #[test]
    fn options_parsing() {
        let args: Vec<String> = ["--graph", "g.txt", "--q", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = Options::parse(&args).unwrap();
        assert_eq!(o.require("graph").unwrap(), "g.txt");
        assert_eq!(o.get_usize("q", 1).unwrap(), 2);
        assert_eq!(o.get_usize("k", 1).unwrap(), 1);
        assert!(Options::parse(&["--key".to_string()]).is_err());
        assert!(Options::parse(&["bare".to_string()]).is_err());
    }

    #[test]
    fn learn_command_end_to_end() {
        let dir = tmpdir("learn");
        let gpath = write_graph(&dir);
        // Label "is red" over the striped path (reds at 0, 3, 6).
        let epath = dir.join("e.txt");
        std::fs::write(&epath, "+ 0\n+ 3\n+ 6\n- 1\n- 2\n- 4\n- 5\n- 7\n").unwrap();
        let args: Vec<String> = [
            "--graph",
            gpath.to_str().unwrap(),
            "--examples",
            epath.to_str().unwrap(),
            "--q",
            "0",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let out = run("learn", &args).unwrap();
        assert!(out.contains("training error:  0.0000"), "{out}");
        assert!(out.contains("Red"), "{out}");
    }

    #[test]
    fn learn_command_engine_knobs() {
        let dir = tmpdir("knobs");
        let gpath = write_graph(&dir);
        let epath = dir.join("e.txt");
        std::fs::write(&epath, "+ 0\n+ 3\n+ 6\n- 1\n- 2\n- 4\n- 5\n- 7\n").unwrap();
        let base = |extra: &[&str]| -> Vec<String> {
            ["--graph", gpath.to_str().unwrap(), "--examples", epath.to_str().unwrap(), "--q", "0", "--ell", "1"]
                .iter()
                .chain(extra)
                .map(|s| s.to_string())
                .collect()
        };
        let out = run("learn", &base(&["--threads", "2", "--prune", "off"])).unwrap();
        assert!(out.contains("evaluated"), "{out}");
        assert!(out.contains("0 pruned"), "{out}");
        assert!(run("learn", &base(&["--prune", "maybe"])).is_err());
        assert!(run("learn", &base(&["--threads", "two"])).is_err());
    }

    #[test]
    fn modelcheck_command() {
        let dir = tmpdir("mc");
        let gpath = write_graph(&dir);
        let args: Vec<String> = [
            "--graph",
            gpath.to_str().unwrap(),
            "--formula",
            "exists x0. Red(x0)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let out = run("modelcheck", &args).unwrap();
        assert!(out.contains("true"));
        // Free variables are rejected.
        let args2: Vec<String> = [
            "--graph",
            gpath.to_str().unwrap(),
            "--formula",
            "Red(x0)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(run("modelcheck", &args2).is_err());
    }

    #[test]
    fn types_and_splitter_and_dot_commands() {
        let dir = tmpdir("misc");
        let gpath = write_graph(&dir);
        let base: Vec<String> = ["--graph", gpath.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let types = run("types", &base).unwrap();
        assert!(types.contains("distinct 1-types"));
        let splitter = run("splitter", &base).unwrap();
        assert!(splitter.contains("rounds"));
        let dot = run("dot", &base).unwrap();
        assert!(dot.starts_with("graph G {"));
        assert!(run("bogus", &base).is_err());
    }
}
