//! Implementation of the `folearn` command-line tool.
//!
//! The binary (`src/bin/folearn.rs`) is a thin shell around this module so
//! that argument parsing and command execution stay unit-testable.
//!
//! Subcommands:
//!
//! * `learn      --graph G.txt --examples E.txt [--ell N] [--q N] [--solver brute|nd|local] [--mode global|local=R|counting=CAP] [--threads N] [--prune on|off] [--trace-out T.jsonl] [--trace-summary on|off]`
//! * `modelcheck --graph G.txt --formula "<sentence>"`
//! * `splitter   --graph G.txt [--radius R]`
//! * `types      --graph G.txt [--q N] [--k N]`
//! * `dot        --graph G.txt`
//! * `trace      --file T.jsonl`
//! * `serve      [--addr H:P] [--data-dir DIR] [--snapshot-every N] [--core thread|event] [--loops N] [--inflight N] [--cache-shards N] [--workers N] [--queue N] [--cache N] [--max-requests N] [--max-line BYTES] [--idle-ms N] [--max-conns N] [--addr-file PATH] [--trace on|off]`
//! * `route      --backends H:P,H:P,… [--replicas R] [--hedge-ms N] [--repair-ms N] [--vnodes N] [--eject-after N] [--addr H:P] [--addr-file PATH] [--timeout-ms N] [--retries N] [--retry-seed N] [--trace on|off]`
//! * `client     --addr H:P --action ping|register|solve|evaluate|modelcheck|stats|shutdown [--timeout-ms N] [--retries N] [--retry-seed N] [--trace-out T.jsonl] …`
//! * `loadgen    --addr H:P[,H:P…] --graph G.txt [--connections N] [--requests N] [--pipeline N] [--seed N] [--pool N] [--timeout-ms N] [--retries N] [--retry-seed N]`
//! * `top        --addr H:P [--once] [--interval-ms N] [--iterations N]`
//!
//! Graphs use the `folearn_graph::io` exchange format; example files have
//! one example per line: a `+` or `-` label followed by the vertex indices
//! of the tuple (`+ 3 7` labels the pair `(v3, v7)` positive).

use std::collections::HashMap;
use std::fmt::Write as _;

use folearn::bruteforce::BruteForceOpts;
use folearn::ndlearner::NdConfig;
use folearn::problem::{ErmInstance, Example, TrainingSequence};
use folearn::{shared_arena, solve_fo_erm_with_engine, Solver, TypeMode};
use folearn_graph::splitter::{play_game, GraphClass, MaxBallConnector};
use folearn_graph::{io, Graph, V};
use folearn_logic::vm::EvalEngine;
use folearn_logic::parser;
use folearn_server::proto::{hex64, parse_hex64, Json};
use folearn_server::server::MAX_SOLVER_THREADS;
use folearn_server::{
    ClientApi, ClientConfig, LoadgenConfig, RetryPolicy, RetryingClient, ServerConfig,
    SolverSpec, WireExample,
};
use folearn_types::census;

/// A fatal CLI error (message for the user).
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parsed command-line options: `--key value` pairs after the subcommand.
#[derive(Debug, Default)]
pub struct Options {
    flags: HashMap<String, String>,
}

impl Options {
    /// Parse `--key value` pairs.
    pub fn parse(args: &[String]) -> Result<Self, CliError> {
        let mut flags = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| err(format!("expected --flag, got {a:?}")))?;
            let value = it
                .next()
                .ok_or_else(|| err(format!("--{key} needs a value")))?;
            flags.insert(key.to_string(), value.clone());
        }
        Ok(Self { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn require(&self, key: &str) -> Result<&str, CliError> {
        self.get(key).ok_or_else(|| err(format!("missing --{key}")))
    }

    fn get_usize(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| err(format!("--{key} expects a number, got {s:?}"))),
        }
    }
}

/// Parse an examples file: one example per line, `+`/`-` then vertex ids.
pub fn parse_examples(text: &str, g: &Graph) -> Result<TrainingSequence, CliError> {
    let mut seq = TrainingSequence::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let label = match parts.next() {
            Some("+") => true,
            Some("-") => false,
            other => {
                return Err(err(format!(
                    "line {}: expected '+' or '-', got {other:?}",
                    idx + 1
                )))
            }
        };
        let tuple: Vec<V> = parts
            .map(|s| {
                s.parse::<u32>()
                    .map(V)
                    .map_err(|_| err(format!("line {}: bad vertex id {s:?}", idx + 1)))
            })
            .collect::<Result<_, _>>()?;
        if tuple.is_empty() {
            return Err(err(format!("line {}: empty tuple", idx + 1)));
        }
        for &v in &tuple {
            if v.index() >= g.num_vertices() {
                return Err(err(format!("line {}: vertex {v} out of range", idx + 1)));
            }
        }
        seq.push(Example::new(tuple, label));
    }
    if seq.is_empty() {
        return Err(err("example file contains no examples"));
    }
    Ok(seq)
}

/// Parse a `--mode` string: `global`, `local=R`, `counting=CAP`, or
/// `local-counting=R,CAP` (delegates to [`TypeMode`]'s `FromStr`, the
/// same grammar the wire protocol speaks).
pub fn parse_mode(s: &str) -> Result<TypeMode, CliError> {
    s.parse().map_err(err)
}

/// Parse and validate `--threads`: a number, at most
/// [`MAX_SOLVER_THREADS`] (`0` = one per core), `None` when absent.
fn parse_threads(opts: &Options) -> Result<Option<usize>, CliError> {
    match opts.get("threads") {
        None => Ok(None),
        Some(s) => {
            let t: usize = s.parse().map_err(|_| {
                err(format!(
                    "--threads expects a number (0 = one per core), got {s:?}"
                ))
            })?;
            if t > MAX_SOLVER_THREADS {
                return Err(err(format!(
                    "--threads must be at most {MAX_SOLVER_THREADS} (got {t})"
                )));
            }
            Ok(Some(t))
        }
    }
}

/// Parse an `on`/`off` (or `true`/`false`) switch value.
fn parse_on_off(s: &str, key: &str) -> Result<bool, CliError> {
    match s {
        "on" | "true" | "1" => Ok(true),
        "off" | "false" | "0" => Ok(false),
        _ => Err(err(format!("--{key} expects on|off, got {s:?}"))),
    }
}

fn load_graph(opts: &Options) -> Result<Graph, CliError> {
    let path = opts.require("graph")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| err(format!("cannot read {path}: {e}")))?;
    io::parse_graph(&text).map_err(|e| err(format!("{path}: {e}")))
}

/// Run a subcommand; returns the text to print.
pub fn run(command: &str, args: &[String]) -> Result<String, CliError> {
    if command == "top" {
        // `top` takes a bare `--once` switch, which the strict
        // `--key value` parser would reject; it pre-parses its args.
        return cmd_top(args);
    }
    let opts = Options::parse(args)?;
    match command {
        "learn" => cmd_learn(&opts),
        "modelcheck" => cmd_modelcheck(&opts),
        "splitter" => cmd_splitter(&opts),
        "types" => cmd_types(&opts),
        "dot" => {
            let g = load_graph(&opts)?;
            Ok(io::to_dot(&g, "G"))
        }
        "trace" => cmd_trace(&opts),
        "serve" => cmd_serve(&opts),
        "route" => cmd_route(&opts),
        "client" => cmd_client(&opts),
        "loadgen" => cmd_loadgen(&opts),
        other => Err(err(format!(
            "unknown command {other:?}; expected learn | modelcheck | splitter | types | dot | trace | serve | route | client | loadgen | top"
        ))),
    }
}

fn cmd_learn(opts: &Options) -> Result<String, CliError> {
    let g = load_graph(opts)?;
    let examples_path = opts.require("examples")?;
    let text = std::fs::read_to_string(examples_path)
        .map_err(|e| err(format!("cannot read {examples_path}: {e}")))?;
    let examples = parse_examples(&text, &g)?;
    let k = examples.arity();
    let ell = opts.get_usize("ell", 0)?;
    let q = opts.get_usize("q", 1)?;
    let mode = parse_mode(opts.get("mode").unwrap_or("global"))?;
    let solver = match opts.get("solver").unwrap_or("brute") {
        "brute" => Solver::BruteForce {
            mode,
            opts: BruteForceOpts {
                threads: parse_threads(opts)?,
                prune: parse_on_off(opts.get("prune").unwrap_or("on"), "prune")?,
                block_size: None,
            },
        },
        "nd" => Solver::NowhereDense(NdConfig::default()),
        "local" => Solver::LocalAccess {
            param_radius: opts.get_usize("param-radius", 2)?,
            type_radius: opts.get_usize("type-radius", 1)?,
        },
        other => return Err(err(format!("unknown --solver {other:?}"))),
    };
    let trace_out = opts.get("trace-out");
    let trace_summary = parse_on_off(opts.get("trace-summary").unwrap_or("off"), "trace-summary")?;
    let tracing = trace_out.is_some() || trace_summary;
    if tracing {
        folearn_obs::set_enabled(true);
        // Discard spans left on this thread by earlier work so the file
        // holds exactly this run.
        let _ = folearn_obs::take_thread_roots();
    }
    let engine = parse_engine(opts)?;
    let inst = ErmInstance::new(&g, examples, k, ell, q, 0.1);
    let arena = shared_arena(&g);
    let report = solve_fo_erm_with_engine(&inst, &solver, &arena, engine);
    let roots = if tracing {
        folearn_obs::take_thread_roots()
    } else {
        Vec::new()
    };
    let mut out = String::new();
    let _ = writeln!(out, "{}", report.to_json().render_pretty());
    let phi = report.hypothesis.to_formula();
    let rendered = parser::render(&phi, g.vocab());
    let _ = writeln!(out, "formula (qr {}):", phi.quantifier_rank());
    if rendered.len() > 2000 {
        let cut = rendered
            .char_indices()
            .nth(2000)
            .map_or(rendered.len(), |(i, _)| i);
        let _ = writeln!(
            out,
            "  {} … ({} chars total)",
            &rendered[..cut],
            rendered.len()
        );
    } else {
        let _ = writeln!(out, "  {rendered}");
    }
    if trace_summary {
        let _ = writeln!(out, "trace:");
        out.push_str(&folearn_obs::export::tree_summary(&roots));
    }
    if let Some(path) = trace_out {
        std::fs::write(path, folearn_obs::export::to_jsonl(&roots))
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
        let _ = writeln!(out, "trace: {} root span(s) written to {path}", roots.len());
    }
    Ok(out)
}

/// `folearn trace`: inspect a JSONL trace written by `learn --trace-out`
/// (or assembled from server `trace` payloads): a per-name rollup, then
/// the span tree itself.
fn cmd_trace(opts: &Options) -> Result<String, CliError> {
    let path = opts.require("file")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| err(format!("cannot read {path}: {e}")))?;
    let roots = folearn_obs::export::parse_jsonl(&text).map_err(|e| err(format!("{path}: {e}")))?;
    let total: usize = roots.iter().map(|r| r.span_count()).sum();
    let mut out = String::new();
    let _ = writeln!(out, "{path}: {} root span(s), {total} spans total", roots.len());
    let _ = writeln!(out, "by span name:");
    for (name, spans, ns, counters) in folearn_obs::export::aggregate(&roots) {
        let _ = write!(
            out,
            "  {name:<28} ×{spans:<5} {:>12.3} ms",
            ns as f64 / 1e6
        );
        for (c, v) in counters.iter_nonzero() {
            let _ = write!(out, "  {}={v}", c.name());
        }
        out.push('\n');
    }
    let _ = writeln!(out, "tree:");
    out.push_str(&folearn_obs::export::tree_summary(&roots));
    Ok(out)
}

fn cmd_modelcheck(opts: &Options) -> Result<String, CliError> {
    let g = load_graph(opts)?;
    let formula = opts.require("formula")?;
    let phi = parser::parse(formula, g.vocab()).map_err(|e| err(e.to_string()))?;
    if !phi.is_sentence() {
        return Err(err("modelcheck expects a sentence (no free variables)"));
    }
    let holds = parse_engine(opts)?.models(&g, &phi);
    Ok(format!("G ⊨ φ: {holds}\n"))
}

fn cmd_splitter(opts: &Options) -> Result<String, CliError> {
    let g = load_graph(opts)?;
    let radius = opts.get_usize("radius", 2)?;
    let class = GraphClass::Heuristic { assumed_rounds: 0 };
    let mut strategy = class.make_splitter(&g);
    let mut connector = MaxBallConnector;
    let cap = g.num_vertices() + 5;
    let result = play_game(&g, radius, strategy.as_mut(), &mut connector, cap);
    Ok(format!(
        "splitter game (r = {radius}, max-ball Connector): {} rounds, splitter {}\n",
        result.rounds,
        if result.splitter_won { "won" } else { "capped" }
    ))
}

fn cmd_types(opts: &Options) -> Result<String, CliError> {
    let g = load_graph(opts)?;
    let q = opts.get_usize("q", 1)?;
    let k = opts.get_usize("k", 1)?;
    let arena = shared_arena(&g);
    let mut a = arena.lock();
    let groups = census::type_census(&g, &mut a, k, q);
    let mut sizes: Vec<usize> = groups.values().map(Vec::len).collect();
    sizes.sort_unstable_by(|x, y| y.cmp(x));
    Ok(format!(
        "{} distinct {q}-types of {k}-tuples on {} vertices; class sizes: {:?}\n",
        groups.len(),
        g.num_vertices(),
        sizes
    ))
}

/// `folearn serve`: run the learning daemon until a client sends a
/// `shutdown` request. The bound address is printed to stdout
/// immediately (port 0 picks an ephemeral port) and, with
/// `--addr-file PATH`, also written to a file so scripts can discover
/// it without parsing output.
fn cmd_serve(opts: &Options) -> Result<String, CliError> {
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        addr: opts.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        workers: opts.get_usize("workers", 0)?,
        queue_depth: opts.get_usize("queue", 64)?,
        cache_capacity: opts.get_usize("cache", 256)?,
        max_requests_per_conn: opts.get_usize("max-requests", 100_000)?,
        trace: parse_on_off(opts.get("trace").unwrap_or("on"), "trace")?,
        max_line_bytes: opts.get_usize("max-line", defaults.max_line_bytes)?,
        idle_timeout: std::time::Duration::from_millis(
            opts.get_usize("idle-ms", defaults.idle_timeout.as_millis() as usize)? as u64,
        ),
        max_connections: opts.get_usize("max-conns", defaults.max_connections)?,
        core: opts
            .get("core")
            .unwrap_or("event")
            .parse()
            .map_err(err)?,
        event_loops: opts.get_usize("loops", defaults.event_loops)?,
        max_inflight_per_conn: opts.get_usize("inflight", defaults.max_inflight_per_conn)?,
        cache_shards: opts.get_usize("cache-shards", defaults.cache_shards)?,
        data_dir: opts.get("data-dir").map(std::path::PathBuf::from),
        snapshot_every: opts.get_usize("snapshot-every", defaults.snapshot_every)?,
    };
    let handle = folearn_server::start(&config)
        .map_err(|e| err(format!("cannot bind {}: {e}", config.addr)))?;
    let addr = handle.addr();
    println!("folearn-server listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(path) = opts.get("addr-file") {
        std::fs::write(path, addr.to_string())
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
    }
    handle.wait();
    Ok(format!("folearn-server on {addr}: shut down cleanly\n"))
}

/// `folearn route`: run the cluster router in front of a set of
/// `folearn serve` backends. Structures are placed on `--replicas`
/// backends by consistent hashing; reads hedge to the next replica
/// after `--hedge-ms` of silence (0 disables hedging; failover on
/// error still applies). Like `serve`, the bound address is printed
/// immediately and optionally written to `--addr-file`.
fn cmd_route(opts: &Options) -> Result<String, CliError> {
    let defaults = folearn_cluster::RouterConfig::default();
    let backends: Vec<String> = opts
        .require("backends")?
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if backends.is_empty() {
        return Err(err(
            "--backends expects a comma-separated list of host:port addresses",
        ));
    }
    // The router's own defaults (a read deadline and a couple of
    // retries) are better daemon defaults than the client's fail-fast
    // ones, so flags override rather than replace them.
    let client = match opts.get_usize("timeout-ms", 0)? {
        0 => defaults.client,
        ms => ClientConfig::with_deadline(std::time::Duration::from_millis(ms as u64)),
    };
    let retry = match opts.get("retries") {
        None => defaults.retry.clone(),
        Some(_) => match opts.get_usize("retries", 0)? {
            0 => RetryPolicy::none(),
            n => RetryPolicy::backoff(n as u32, opts.get_usize("retry-seed", 0)? as u64),
        },
    };
    let hedge_ms = opts.get_usize(
        "hedge-ms",
        defaults.hedge_delay.map_or(0, |d| d.as_millis() as usize),
    )?;
    let repair_ms = opts.get_usize(
        "repair-ms",
        defaults.repair_interval.map_or(0, |d| d.as_millis() as usize),
    )?;
    let config = folearn_cluster::RouterConfig {
        addr: opts.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        backends,
        replicas: opts.get_usize("replicas", defaults.replicas)?.max(1),
        vnodes: opts.get_usize("vnodes", defaults.vnodes)?.max(1),
        hedge_delay: (hedge_ms > 0)
            .then(|| std::time::Duration::from_millis(hedge_ms as u64)),
        repair_interval: (repair_ms > 0)
            .then(|| std::time::Duration::from_millis(repair_ms as u64)),
        client,
        retry,
        eject_after: opts.get_usize("eject-after", defaults.eject_after as usize)? as u32,
        max_requests_per_conn: opts.get_usize("max-requests", defaults.max_requests_per_conn)?,
        max_line_bytes: opts.get_usize("max-line", defaults.max_line_bytes)?,
        idle_timeout: std::time::Duration::from_millis(
            opts.get_usize("idle-ms", defaults.idle_timeout.as_millis() as usize)? as u64,
        ),
        max_connections: opts.get_usize("max-conns", defaults.max_connections)?,
        trace: parse_on_off(opts.get("trace").unwrap_or("on"), "trace")?,
    };
    let handle = folearn_cluster::start(&config)
        .map_err(|e| err(format!("cannot start router on {}: {e}", config.addr)))?;
    let addr = handle.addr();
    println!(
        "folearn-router listening on {addr} ({} backends, R={})",
        config.backends.len(),
        config.replicas.min(config.backends.len())
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if let Some(path) = opts.get("addr-file") {
        std::fs::write(path, addr.to_string())
            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
    }
    handle.wait();
    Ok(format!("folearn-router on {addr}: shut down cleanly\n"))
}

/// Parse `--engine tree|vm` (default: the tree-walking evaluator).
fn parse_engine(opts: &Options) -> Result<EvalEngine, CliError> {
    opts.get("engine")
        .unwrap_or("tree")
        .parse()
        .map_err(|e: String| err(format!("--engine: {e}")))
}

/// Build the wire solver spec from
/// `--solver/--mode/--threads/--prune/--engine`.
fn parse_solver_spec(opts: &Options) -> Result<SolverSpec, CliError> {
    match opts.get("solver").unwrap_or("brute") {
        "brute" => Ok(SolverSpec::Brute {
            mode: parse_mode(opts.get("mode").unwrap_or("global"))?,
            threads: parse_threads(opts)?,
            prune: parse_on_off(opts.get("prune").unwrap_or("on"), "prune")?,
            engine: parse_engine(opts)?,
        }),
        "nd" => Ok(SolverSpec::Nd),
        other => Err(err(format!(
            "unknown --solver {other:?} (the server offers brute | nd)"
        ))),
    }
}

/// Read, parse, and wire-encode an examples file against a graph.
fn wire_examples(opts: &Options, g: &Graph) -> Result<Vec<WireExample>, CliError> {
    let path = opts.require("examples")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| err(format!("cannot read {path}: {e}")))?;
    let seq = parse_examples(&text, g)?;
    Ok(seq
        .iter()
        .map(|e| WireExample {
            tuple: e.tuple.iter().map(|v| v.0).collect(),
            label: e.label,
        })
        .collect())
}

/// Client deadline/retry knobs shared by `client` and `loadgen`:
/// `--timeout-ms N` sets connect/read/write deadlines (default: none),
/// `--retries N` enables backoff-and-reconnect (default: 0, fail fast),
/// `--retry-seed N` makes the backoff jitter reproducible.
fn parse_client_knobs(opts: &Options) -> Result<(ClientConfig, RetryPolicy), CliError> {
    let config = match opts.get_usize("timeout-ms", 0)? {
        0 => ClientConfig::default(),
        ms => ClientConfig::with_deadline(std::time::Duration::from_millis(ms as u64)),
    };
    let policy = match opts.get_usize("retries", 0)? {
        0 => RetryPolicy::none(),
        n => RetryPolicy::backoff(n as u32, opts.get_usize("retry-seed", 0)? as u64),
    };
    Ok((config, policy))
}

/// `folearn client`: one request/response exchange with a daemon.
fn cmd_client(opts: &Options) -> Result<String, CliError> {
    let addr = opts.require("addr")?;
    let (config, policy) = parse_client_knobs(opts)?;
    let mut client = RetryingClient::connect(addr, config, policy)
        .map_err(|e| err(format!("cannot connect to {addr}: {e}")))?;
    let net = |e: folearn_server::ClientError| err(e.to_string());
    match opts.require("action")? {
        "ping" => {
            client.ping().map_err(net)?;
            Ok("pong\n".to_string())
        }
        "register" => {
            let g = load_graph(opts)?;
            let structure = client.register(&io::to_text(&g)).map_err(net)?;
            Ok(format!("structure {}\n", hex64(structure)))
        }
        "solve" => {
            let g = load_graph(opts)?;
            let examples = wire_examples(opts, &g)?;
            let structure = client.register(&io::to_text(&g)).map_err(net)?;
            let ell = opts.get_usize("ell", 0)?;
            let q = opts.get_usize("q", 1)?;
            let spec = parse_solver_spec(opts)?;
            // `--trace-out` opts this solve into tracing: the request
            // carries a trace context, so a router stitches its span
            // tree (and a daemon binds `server.solve`) under it.
            let outcome = if opts.get("trace-out").is_some() {
                let trace_id = {
                    let now = std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map_or(0, |d| d.as_nanos() as u64);
                    (now ^ u64::from(std::process::id()).rotate_left(32)) | 1
                };
                client
                    .solve_traced(
                        structure,
                        examples,
                        ell,
                        q,
                        0.0,
                        spec,
                        folearn_server::proto::TraceContext {
                            trace_id,
                            parent: 0,
                        },
                    )
                    .map_err(net)?
            } else {
                client
                    .solve(structure, examples, ell, q, 0.0, spec)
                    .map_err(net)?
            };
            let mut out = String::new();
            let _ = writeln!(out, "structure:       {}", hex64(structure));
            let _ = writeln!(out, "solver:          {}", outcome.solver);
            let _ = writeln!(
                out,
                "cached:          {}",
                if outcome.cached { "yes" } else { "no" }
            );
            let _ = writeln!(out, "training error:  {:.4}", outcome.error);
            let _ = writeln!(
                out,
                "work units:      {} ({} evaluated, {} pruned)",
                outcome.work, outcome.evaluated, outcome.pruned
            );
            let _ = writeln!(out, "hypothesis id:   {}", hex64(outcome.hypothesis.id));
            let _ = writeln!(out, "hypothesis:      {}", outcome.hypothesis.describe);
            if let Some(path) = opts.get("trace-out") {
                // One span tree per line: the same JSONL shape `learn
                // --trace-out` writes, so `folearn trace` renders it.
                match &outcome.trace {
                    Some(t) => {
                        std::fs::write(path, format!("{}\n", t.render()))
                            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
                        let _ = writeln!(out, "trace:           written to {path}");
                    }
                    None => {
                        let _ = writeln!(out, "trace:           (server sent none)");
                    }
                }
            }
            Ok(out)
        }
        "evaluate" => {
            let g = load_graph(opts)?;
            let examples = wire_examples(opts, &g)?;
            let structure = client.register(&io::to_text(&g)).map_err(net)?;
            let hypothesis = parse_hex64(opts.require("hypothesis")?)
                .map_err(|e| err(format!("--hypothesis: {e}")))?;
            let tuples: Vec<Vec<u32>> = examples.iter().map(|e| e.tuple.clone()).collect();
            let labels: Vec<bool> = examples.iter().map(|e| e.label).collect();
            let (predictions, error) = client
                .evaluate(structure, hypothesis, tuples, Some(labels))
                .map_err(net)?;
            let positives = predictions.iter().filter(|&&p| p).count();
            Ok(format!(
                "{} tuples: {} predicted positive; error vs labels: {:.4}\n",
                predictions.len(),
                positives,
                error.unwrap_or(0.0)
            ))
        }
        "modelcheck" => {
            let g = load_graph(opts)?;
            let structure = client.register(&io::to_text(&g)).map_err(net)?;
            let holds = client
                .modelcheck_with_engine(
                    structure,
                    opts.require("formula")?,
                    parse_engine(opts)?,
                )
                .map_err(net)?;
            Ok(format!("G ⊨ φ: {holds}\n"))
        }
        "stats" => {
            let stats = client.stats().map_err(net)?;
            Ok(format!("{}\n", stats.render_pretty()))
        }
        "shutdown" => {
            client.shutdown().map_err(net)?;
            Ok("server shutting down\n".to_string())
        }
        other => Err(err(format!(
            "unknown --action {other:?}; expected ping | register | solve | evaluate | modelcheck | stats | shutdown"
        ))),
    }
}

/// `folearn loadgen`: drive one or more daemons with a deterministic
/// request mix and report throughput and per-operation latency
/// quantiles. `--addr` accepts a comma-separated list; workers
/// round-robin over the targets and the report breaks out per-target
/// request and error counts.
fn cmd_loadgen(opts: &Options) -> Result<String, CliError> {
    let addr_str = opts.require("addr")?;
    let addrs: Vec<std::net::SocketAddr> = addr_str
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .map_err(|_| err(format!("--addr expects host:port, got {s:?}")))
        })
        .collect::<Result<_, _>>()?;
    if addrs.is_empty() {
        return Err(err(format!(
            "--addr expects host:port, got {addr_str:?}"
        )));
    }
    let g = load_graph(opts)?;
    let (client, retry) = parse_client_knobs(opts)?;
    let config = LoadgenConfig {
        connections: opts.get_usize("connections", 2)?.max(1),
        requests_per_conn: opts.get_usize("requests", 40)?,
        seed: opts.get_usize("seed", 17)? as u64,
        sample_pool: opts.get_usize("pool", 4)?.max(1),
        ell: opts.get_usize("ell", 1)?,
        q: opts.get_usize("q", 1)?,
        client,
        retry,
        pipeline: opts.get_usize("pipeline", 0)?,
    };
    let report = folearn_server::loadgen::run_load_multi(&addrs, &io::to_text(&g), &config);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} requests over {} connections in {:.3}s ({:.0} req/s), {} errors",
        report.requests,
        config.connections,
        report.wall_s,
        report.throughput(),
        report.errors
    );
    let _ = writeln!(
        out,
        "solves: {} fresh, {} cached",
        report.fresh_solves, report.cached_solves
    );
    if report.retries > 0 || report.reconnects > 0 {
        let _ = writeln!(
            out,
            "transport: {} retries, {} reconnects",
            report.retries, report.reconnects
        );
    }
    if report.targets.len() > 1 {
        for (target, requests, errors) in &report.targets {
            let _ = writeln!(out, "  target {target}: {requests} requests, {errors} errors");
        }
    }
    for (worker, error) in &report.worker_errors {
        let _ = writeln!(out, "worker {worker} failed: {error}");
    }
    for (op, stats) in &report.ops {
        let _ = writeln!(
            out,
            "  {op:<11} n={:<5} mean {:>8.1}µs  p50 {:>7}µs  p95 {:>7}µs  max {:>7}µs",
            stats.count,
            stats.mean_us(),
            stats.quantile_us(0.50),
            stats.quantile_us(0.95),
            stats.quantile_us(1.0)
        );
    }
    Ok(out)
}

/// Numeric field lookup with a zero default (absent keys read 0).
fn jnum(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_num).unwrap_or(0.0)
}

/// Summarise a stats `series` window into one "last 60s: …" line:
/// request rate over the seconds the window actually covers, error and
/// cache totals, and the quantiles of the most recent bucket.
fn series_line(series: &Json) -> String {
    let empty: &[Json] = &[];
    let buckets = series.get("buckets").and_then(Json::as_arr).unwrap_or(empty);
    if buckets.is_empty() {
        return "last 60s:  idle".to_string();
    }
    let sum = |key: &str| -> f64 { buckets.iter().map(|b| jnum(b, key)).sum() };
    let span = (jnum(series, "now_s") - jnum(&buckets[0], "t") + 1.0).max(1.0);
    let last = &buckets[buckets.len() - 1];
    let mut line = format!(
        "last 60s:  {:.1} req/s, {} errors, p50 {}µs, p99 {}µs",
        sum("requests") / span,
        sum("errors") as u64,
        jnum(last, "p50_us") as u64,
        jnum(last, "p99_us") as u64,
    );
    let (hits, misses) = (sum("cache_hits"), sum("cache_misses"));
    if hits + misses > 0.0 {
        let _ = write!(
            line,
            ", cache {}/{} hit",
            hits as u64,
            (hits + misses) as u64
        );
    }
    let fired = sum("hedges_fired");
    if fired > 0.0 {
        let _ = write!(
            line,
            ", hedges {} fired / {} won",
            fired as u64,
            sum("hedges_won") as u64
        );
    }
    line
}

/// Render one `top` frame from a `stats` snapshot. Handles both roles:
/// a server reports its own cache and series; a router's snapshot adds
/// hedge/failover counters and the fanned-in `cluster` section with one
/// row per backend.
fn render_top(addr: &str, stats: &Json) -> String {
    let role = stats.get("role").and_then(Json::as_str).unwrap_or("server");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "folearn top — {role} v{} @ {addr}, up {}s",
        stats.get("version").and_then(Json::as_str).unwrap_or("?"),
        (jnum(stats, "uptime_ms") / 1000.0) as u64,
    );
    let _ = write!(out, "requests:  {} total", jnum(stats, "requests") as u64);
    if role == "router" {
        let _ = writeln!(
            out,
            ", hedges {} fired / {} won, {} replica retries, {} failovers",
            jnum(stats, "hedges_fired") as u64,
            jnum(stats, "hedges_won") as u64,
            jnum(stats, "replica_retries") as u64,
            jnum(stats, "failovers") as u64,
        );
        let (repairs, rebinds) = (
            jnum(stats, "repairs_performed") as u64,
            jnum(stats, "rebinds_avoided") as u64,
        );
        if repairs + rebinds > 0 {
            let _ = writeln!(
                out,
                "repair:    {repairs} structures re-seeded, {rebinds} rebinds avoided",
            );
        }
    } else {
        let _ = writeln!(
            out,
            ", {} connections, {} worker panics",
            jnum(stats, "connections") as u64,
            jnum(stats, "worker_panics") as u64,
        );
        if stats.get("durable").and_then(Json::as_bool) == Some(true) {
            let _ = writeln!(
                out,
                "durable:   {} WAL records written, {} replayed at boot ({} snapshot loads, {} torn tails), recovery {}ms",
                jnum(stats, "wal_records_written") as u64,
                jnum(stats, "wal_records_replayed") as u64,
                jnum(stats, "snapshot_loads") as u64,
                jnum(stats, "torn_tail_truncations") as u64,
                jnum(stats, "recovery_ms") as u64,
            );
        }
        if let Some(cache) = stats.get("cache") {
            let _ = writeln!(
                out,
                "cache:     {} hits / {} misses (rate {:.2}), {} entries",
                jnum(cache, "hits") as u64,
                jnum(cache, "misses") as u64,
                jnum(cache, "hit_rate"),
                jnum(cache, "entries") as u64,
            );
        }
    }
    if let Some(series) = stats.get("series") {
        let _ = writeln!(out, "{}", series_line(series));
    }
    if let Some(Json::Obj(ops)) = stats.get("endpoints") {
        if !ops.is_empty() {
            let _ = writeln!(out, "endpoints:");
            for (op, rec) in ops {
                let _ = writeln!(
                    out,
                    "  {op:<11} n={:<6} err={:<4} p50 {:>7}µs  p99 {:>7}µs  max {:>7}µs",
                    jnum(rec, "count") as u64,
                    jnum(rec, "errors") as u64,
                    jnum(rec, "p50_us") as u64,
                    jnum(rec, "p99_us") as u64,
                    jnum(rec, "max_us") as u64,
                );
            }
        }
    }
    if let Some(cluster) = stats.get("cluster") {
        let _ = writeln!(
            out,
            "cluster:   {} backends, {} live, {} reporting, {} requests, cache rate {:.2}",
            jnum(cluster, "backends_total") as u64,
            jnum(cluster, "backends_live") as u64,
            jnum(cluster, "backends_reporting") as u64,
            jnum(cluster, "requests") as u64,
            cluster.get("cache").map_or(0.0, |c| jnum(c, "hit_rate")),
        );
        if let Some(nodes) = cluster.get("nodes").and_then(Json::as_arr) {
            for n in nodes {
                let node_addr = n.get("addr").and_then(Json::as_str).unwrap_or("?");
                match n.get("error").and_then(Json::as_str) {
                    Some(e) => {
                        let _ = writeln!(out, "  {node_addr:<21} DOWN  {e}");
                    }
                    None => {
                        // A freshly restarted durable backend announces its
                        // recovery right in the row: tiny uptime plus how
                        // many WAL records it replayed to get back.
                        let mut recovery = String::new();
                        if n.get("durable").and_then(Json::as_bool) == Some(true) {
                            let _ = write!(
                                recovery,
                                ", durable ({} replayed)",
                                jnum(n, "wal_records_replayed") as u64,
                            );
                        }
                        let _ = writeln!(
                            out,
                            "  {node_addr:<21} {}  {} v{}, up {}s, {} requests{recovery}",
                            if n.get("live").and_then(Json::as_bool) == Some(true) {
                                "live"
                            } else {
                                "out "
                            },
                            n.get("role").and_then(Json::as_str).unwrap_or("?"),
                            n.get("version").and_then(Json::as_str).unwrap_or("?"),
                            (jnum(n, "uptime_ms") / 1000.0) as u64,
                            jnum(n, "requests") as u64,
                        );
                    }
                }
            }
        }
    }
    out
}

/// `folearn top`: a plain-text dashboard over a daemon's or router's
/// `stats` endpoint. Repaints every `--interval-ms` (default 2000);
/// `--once` prints a single frame and exits (what scripts use), and
/// `--iterations N` stops after N frames, returning the last one.
fn cmd_top(args: &[String]) -> Result<String, CliError> {
    let mut once = false;
    let mut rest = Vec::with_capacity(args.len());
    for a in args {
        if a == "--once" {
            once = true;
        } else {
            rest.push(a.clone());
        }
    }
    let opts = Options::parse(&rest)?;
    let addr = opts.require("addr")?;
    let interval = opts.get_usize("interval-ms", 2000)?.max(100) as u64;
    let iterations = if once {
        1
    } else {
        opts.get_usize("iterations", 0)?
    };
    let (config, policy) = parse_client_knobs(&opts)?;
    let mut client = RetryingClient::connect(addr, config, policy)
        .map_err(|e| err(format!("cannot connect to {addr}: {e}")))?;
    let mut frames = 0usize;
    loop {
        let stats = client.stats().map_err(|e| err(e.to_string()))?;
        let frame = render_top(addr, &stats);
        frames += 1;
        if iterations != 0 && frames >= iterations {
            return Ok(frame);
        }
        // Interactive mode: clear, repaint in place, poll again.
        use std::io::Write as _;
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(interval));
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, Vocabulary};

    use super::*;

    fn write_graph(dir: &std::path::Path) -> std::path::PathBuf {
        let g = generators::periodically_colored(
            &generators::path(8, Vocabulary::new(["Red"])),
            folearn_graph::ColorId(0),
            3,
        );
        let p = dir.join("g.txt");
        std::fs::write(&p, io::to_text(&g)).unwrap();
        p
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("folearn-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn parse_examples_round_trip() {
        let g = generators::path(5, Vocabulary::empty());
        let seq = parse_examples("+ 0\n- 1\n# comment\n+ 4\n", &g).unwrap();
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.positives().count(), 2);
        assert!(parse_examples("+ 9\n", &g).is_err());
        assert!(parse_examples("x 1\n", &g).is_err());
        assert!(parse_examples("", &g).is_err());
    }

    #[test]
    fn parse_mode_variants() {
        assert_eq!(parse_mode("global").unwrap(), TypeMode::Global);
        assert_eq!(parse_mode("local=3").unwrap(), TypeMode::Local { r: 3 });
        assert_eq!(
            parse_mode("counting=2").unwrap(),
            TypeMode::GlobalCounting { cap: 2 }
        );
        assert_eq!(
            parse_mode("local-counting=2,3").unwrap(),
            TypeMode::LocalCounting { r: 2, cap: 3 }
        );
        assert!(parse_mode("nonsense").is_err());
    }

    #[test]
    fn options_parsing() {
        let args: Vec<String> = ["--graph", "g.txt", "--q", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = Options::parse(&args).unwrap();
        assert_eq!(o.require("graph").unwrap(), "g.txt");
        assert_eq!(o.get_usize("q", 1).unwrap(), 2);
        assert_eq!(o.get_usize("k", 1).unwrap(), 1);
        assert!(Options::parse(&["--key".to_string()]).is_err());
        assert!(Options::parse(&["bare".to_string()]).is_err());
    }

    #[test]
    fn learn_command_end_to_end() {
        let dir = tmpdir("learn");
        let gpath = write_graph(&dir);
        // Label "is red" over the striped path (reds at 0, 3, 6).
        let epath = dir.join("e.txt");
        std::fs::write(&epath, "+ 0\n+ 3\n+ 6\n- 1\n- 2\n- 4\n- 5\n- 7\n").unwrap();
        let args: Vec<String> = [
            "--graph",
            gpath.to_str().unwrap(),
            "--examples",
            epath.to_str().unwrap(),
            "--q",
            "0",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let out = run("learn", &args).unwrap();
        assert!(out.contains("\"error\": 0"), "{out}");
        assert!(out.contains("Red"), "{out}");
    }

    #[test]
    fn learn_command_engine_knobs() {
        let dir = tmpdir("knobs");
        let gpath = write_graph(&dir);
        let epath = dir.join("e.txt");
        std::fs::write(&epath, "+ 0\n+ 3\n+ 6\n- 1\n- 2\n- 4\n- 5\n- 7\n").unwrap();
        let base = |extra: &[&str]| -> Vec<String> {
            ["--graph", gpath.to_str().unwrap(), "--examples", epath.to_str().unwrap(), "--q", "0", "--ell", "1"]
                .iter()
                .chain(extra)
                .map(|s| s.to_string())
                .collect()
        };
        let out = run("learn", &base(&["--threads", "2", "--prune", "off"])).unwrap();
        assert!(out.contains("\"evaluated_params\""), "{out}");
        assert!(out.contains("\"pruned_params\": 0"), "{out}");
        assert!(run("learn", &base(&["--prune", "maybe"])).is_err());
        assert!(run("learn", &base(&["--threads", "two"])).is_err());
        // The VM engine reproduces the tree-walker's report exactly (the
        // cross-validation inside the solve would panic otherwise).
        let tree = run("learn", &base(&["--engine", "tree"])).unwrap();
        let vm = run("learn", &base(&["--engine", "vm"])).unwrap();
        assert_eq!(tree, vm);
        assert!(run("learn", &base(&["--engine", "warp"])).is_err());
    }

    #[test]
    fn learn_trace_out_round_trips_through_the_trace_command() {
        let dir = tmpdir("trace");
        let gpath = write_graph(&dir);
        let epath = dir.join("e.txt");
        std::fs::write(&epath, "+ 0\n+ 3\n+ 6\n- 1\n- 2\n- 4\n- 5\n- 7\n").unwrap();
        let tpath = dir.join("t.jsonl");
        let args: Vec<String> = [
            "--graph",
            gpath.to_str().unwrap(),
            "--examples",
            epath.to_str().unwrap(),
            "--q",
            "0",
            "--ell",
            "1",
            "--trace-out",
            tpath.to_str().unwrap(),
            "--trace-summary",
            "on",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let out = run("learn", &args).unwrap();
        assert!(out.contains("trace:"), "{out}");
        assert!(out.contains("solve"), "{out}");
        assert!(out.contains("erm.sweep"), "{out}");

        let inspect = run(
            "trace",
            &["--file".to_string(), tpath.to_str().unwrap().to_string()],
        )
        .unwrap();
        assert!(inspect.contains("1 root span(s)"), "{inspect}");
        assert!(inspect.contains("by span name:"), "{inspect}");
        assert!(inspect.contains("erm.worker"), "{inspect}");
        assert!(inspect.contains("evaluated_params="), "{inspect}");
        assert!(inspect.contains("└─"), "{inspect}");

        // A garbage trace file is a clean error, not a panic.
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "{\"ns\": 1}\n").unwrap();
        assert!(run(
            "trace",
            &["--file".to_string(), bad.to_str().unwrap().to_string()]
        )
        .is_err());
    }

    #[test]
    fn threads_cap_fails_with_a_clear_error_not_a_panic() {
        let dir = tmpdir("cap");
        let gpath = write_graph(&dir);
        let epath = dir.join("e.txt");
        std::fs::write(&epath, "+ 0\n- 1\n").unwrap();
        let args: Vec<String> = [
            "--graph",
            gpath.to_str().unwrap(),
            "--examples",
            epath.to_str().unwrap(),
            "--threads",
            "100000",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let e = run("learn", &args).unwrap_err();
        assert!(e.0.contains("at most 256"), "{e}");
        assert!(e.0.contains("100000"), "{e}");
    }

    #[test]
    fn serve_client_loadgen_end_to_end() {
        let dir = tmpdir("serve");
        let gpath = write_graph(&dir);
        let epath = dir.join("e.txt");
        std::fs::write(&epath, "+ 0\n+ 3\n+ 6\n- 1\n- 2\n- 4\n- 5\n- 7\n").unwrap();
        let addr_file = dir.join("addr.txt");

        let serve_args: Vec<String> = [
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
            "--workers",
            "1",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || run("serve", &serve_args));

        let addr = {
            let mut waited = 0;
            loop {
                if let Ok(a) = std::fs::read_to_string(&addr_file) {
                    if !a.is_empty() {
                        break a;
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
                waited += 20;
                assert!(waited < 5000, "server did not come up");
            }
        };

        let client_args = |extra: &[&str]| -> Vec<String> {
            ["--addr", addr.as_str()]
                .iter()
                .chain(extra)
                .map(|s| s.to_string())
                .collect()
        };
        let out = run("client", &client_args(&["--action", "ping"])).unwrap();
        assert_eq!(out, "pong\n");

        let solve = |_tag: &str| {
            run(
                "client",
                &client_args(&[
                    "--action",
                    "solve",
                    "--graph",
                    gpath.to_str().unwrap(),
                    "--examples",
                    epath.to_str().unwrap(),
                    "--q",
                    "0",
                    "--ell",
                    "1",
                ]),
            )
            .unwrap()
        };
        let cold = solve("cold");
        assert!(cold.contains("cached:          no"), "{cold}");
        assert!(cold.contains("training error:  0.0000"), "{cold}");
        let warm = solve("warm");
        assert!(warm.contains("cached:          yes"), "{warm}");

        // Evaluate the learned hypothesis on its own training set.
        let hyp = cold
            .lines()
            .find_map(|l| l.strip_prefix("hypothesis id:   "))
            .expect("hypothesis id line")
            .trim()
            .to_string();
        let eval_out = run(
            "client",
            &client_args(&[
                "--action",
                "evaluate",
                "--graph",
                gpath.to_str().unwrap(),
                "--examples",
                epath.to_str().unwrap(),
                "--hypothesis",
                hyp.as_str(),
            ]),
        )
        .unwrap();
        assert!(eval_out.contains("error vs labels: 0.0000"), "{eval_out}");

        let mc = run(
            "client",
            &client_args(&[
                "--action",
                "modelcheck",
                "--graph",
                gpath.to_str().unwrap(),
                "--formula",
                "exists x0. Red(x0)",
            ]),
        )
        .unwrap();
        assert!(mc.contains("true"), "{mc}");

        let lg = run(
            "loadgen",
            &client_args(&[
                "--graph",
                gpath.to_str().unwrap(),
                "--connections",
                "1",
                "--requests",
                "10",
                "--pool",
                "2",
            ]),
        )
        .unwrap();
        assert!(lg.contains("req/s"), "{lg}");
        assert!(lg.contains("0 errors"), "{lg}");

        let stats = run("client", &client_args(&["--action", "stats"])).unwrap();
        assert!(stats.contains("\"cache\""), "{stats}");

        let bye = run("client", &client_args(&["--action", "shutdown"])).unwrap();
        assert!(bye.contains("shutting down"));
        let served = server.join().unwrap().unwrap();
        assert!(served.contains("shut down cleanly"), "{served}");
    }

    #[test]
    fn route_command_fronts_a_two_backend_cluster() {
        let dir = tmpdir("route");
        let gpath = write_graph(&dir);
        let epath = dir.join("e.txt");
        std::fs::write(&epath, "+ 0\n+ 3\n+ 6\n- 1\n- 2\n- 4\n- 5\n- 7\n").unwrap();

        // Backends run in-process; the router runs through the CLI.
        let backend = |_: usize| {
            folearn_server::start(&ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 1,
                ..ServerConfig::default()
            })
            .unwrap()
        };
        let (b0, b1) = (backend(0), backend(1));
        let backends = format!("{},{}", b0.addr(), b1.addr());

        let addr_file = dir.join("router-addr.txt");
        let route_args: Vec<String> = [
            "--backends",
            backends.as_str(),
            "--replicas",
            "2",
            "--hedge-ms",
            "10",
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let router = std::thread::spawn(move || run("route", &route_args));
        let addr = {
            let mut waited = 0;
            loop {
                if let Ok(a) = std::fs::read_to_string(&addr_file) {
                    if !a.is_empty() {
                        break a;
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
                waited += 20;
                assert!(waited < 5000, "router did not come up");
            }
        };

        let client_args = |extra: &[&str]| -> Vec<String> {
            ["--addr", addr.as_str()]
                .iter()
                .chain(extra)
                .map(|s| s.to_string())
                .collect()
        };
        assert_eq!(
            run("client", &client_args(&["--action", "ping"])).unwrap(),
            "pong\n"
        );
        let solved = run(
            "client",
            &client_args(&[
                "--action",
                "solve",
                "--graph",
                gpath.to_str().unwrap(),
                "--examples",
                epath.to_str().unwrap(),
                "--q",
                "0",
                "--ell",
                "1",
            ]),
        )
        .unwrap();
        assert!(solved.contains("training error:  0.0000"), "{solved}");
        let stats = run("client", &client_args(&["--action", "stats"])).unwrap();
        assert!(stats.contains("\"router\""), "{stats}");
        assert!(stats.contains("\"hedges_fired\""), "{stats}");
        assert!(stats.contains("\"cluster\""), "{stats}");
        assert!(stats.contains("\"backends_live\""), "{stats}");

        // A routed solve carries a stitched trace — router.solve root,
        // per-attempt child spans, the winning backend's server.solve
        // subtree — written as JSONL the `trace` subcommand renders.
        let tpath = dir.join("routed-trace.jsonl");
        let traced = run(
            "client",
            &client_args(&[
                "--action",
                "solve",
                "--graph",
                gpath.to_str().unwrap(),
                "--examples",
                epath.to_str().unwrap(),
                "--q",
                "0",
                "--ell",
                "1",
                "--trace-out",
                tpath.to_str().unwrap(),
            ]),
        )
        .unwrap();
        assert!(traced.contains("written to"), "{traced}");
        let text = std::fs::read_to_string(&tpath).unwrap();
        assert!(text.contains("router.solve"), "{text}");
        assert!(text.contains("router.attempt"), "{text}");
        assert!(text.contains("server.solve"), "{text}");
        let inspect = run(
            "trace",
            &["--file".to_string(), tpath.to_str().unwrap().to_string()],
        )
        .unwrap();
        assert!(inspect.contains("router.solve"), "{inspect}");
        assert!(inspect.contains("server.solve"), "{inspect}");

        // `top --once` renders one dashboard frame off the same stats
        // endpoint, cluster section included.
        let top = run("top", &client_args(&["--once"])).unwrap();
        assert!(top.contains("folearn top — router"), "{top}");
        assert!(top.contains("last 60s:"), "{top}");
        assert!(top.contains("cluster:"), "{top}");
        assert!(top.contains("2 backends, 2 live, 2 reporting"), "{top}");

        // Multi-target loadgen round-robins directly over the backends
        // and breaks the report out per target.
        let lg = run(
            "loadgen",
            &[
                "--addr",
                backends.as_str(),
                "--graph",
                gpath.to_str().unwrap(),
                "--connections",
                "2",
                "--requests",
                "6",
                "--pool",
                "2",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<String>>(),
        )
        .unwrap();
        assert!(lg.contains("0 errors"), "{lg}");
        assert_eq!(lg.matches("  target ").count(), 2, "{lg}");

        let bye = run("client", &client_args(&["--action", "shutdown"])).unwrap();
        assert!(bye.contains("shutting down"));
        let routed = router.join().unwrap().unwrap();
        assert!(routed.contains("shut down cleanly"), "{routed}");
        b0.shutdown();
        b1.shutdown();
    }

    #[test]
    fn top_renders_durability_and_repair_counters() {
        let server = Json::parse(
            r#"{"role":"server","version":"0.1","uptime_ms":1200,"requests":7,"connections":1,"worker_panics":0,"durable":true,"wal_records_written":5,"wal_records_replayed":3,"snapshot_loads":1,"torn_tail_truncations":1,"recovery_ms":12}"#,
        )
        .unwrap();
        let frame = render_top("127.0.0.1:1", &server);
        assert!(
            frame.contains(
                "durable:   5 WAL records written, 3 replayed at boot (1 snapshot loads, 1 torn tails), recovery 12ms"
            ),
            "{frame}"
        );
        // A volatile server gets no durability line at all.
        let volatile = Json::parse(r#"{"role":"server","version":"0.1","durable":false}"#).unwrap();
        assert!(!render_top("127.0.0.1:1", &volatile).contains("durable:"));

        let router = Json::parse(
            r#"{"role":"router","version":"0.1","uptime_ms":500,"requests":9,"failovers":1,"repairs_performed":2,"rebinds_avoided":1,"cluster":{"backends_total":1,"backends_live":1,"backends_reporting":1,"requests":7,"nodes":[{"addr":"127.0.0.1:2","live":true,"role":"server","version":"0.1","uptime_ms":900,"requests":7,"durable":true,"wal_records_replayed":3}]}}"#,
        )
        .unwrap();
        let frame = render_top("127.0.0.1:1", &router);
        assert!(
            frame.contains("repair:    2 structures re-seeded, 1 rebinds avoided"),
            "{frame}"
        );
        assert!(frame.contains(", durable (3 replayed)"), "{frame}");
    }

    #[test]
    fn modelcheck_command() {
        let dir = tmpdir("mc");
        let gpath = write_graph(&dir);
        let args: Vec<String> = [
            "--graph",
            gpath.to_str().unwrap(),
            "--formula",
            "exists x0. Red(x0)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let out = run("modelcheck", &args).unwrap();
        assert!(out.contains("true"));
        // The VM engine answers the same sentence identically.
        let mut vm_args = args.clone();
        vm_args.extend(["--engine".to_string(), "vm".to_string()]);
        assert_eq!(run("modelcheck", &vm_args).unwrap(), out);
        // Free variables are rejected.
        let args2: Vec<String> = [
            "--graph",
            gpath.to_str().unwrap(),
            "--formula",
            "Red(x0)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(run("modelcheck", &args2).is_err());
    }

    #[test]
    fn types_and_splitter_and_dot_commands() {
        let dir = tmpdir("misc");
        let gpath = write_graph(&dir);
        let base: Vec<String> = ["--graph", gpath.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let types = run("types", &base).unwrap();
        assert!(types.contains("distinct 1-types"));
        let splitter = run("splitter", &base).unwrap();
        assert!(splitter.contains("rounds"));
        let dot = run("dot", &base).unwrap();
        assert!(dot.starts_with("graph G {"));
        assert!(run("bogus", &base).is_err());
    }
}
