//! Facade crate for the `folearn` workspace.
//!
//! Re-exports every sub-crate so examples and integration tests can use a
//! single dependency. See the workspace `README.md` for a tour and
//! `DESIGN.md` for the paper-to-code mapping.

pub mod cli;

pub use folearn as core;
pub use folearn_graph as graph;
pub use folearn_hardness as hardness;
pub use folearn_logic as logic;
pub use folearn_relational as relational;
pub use folearn_strings as strings;
pub use folearn_types as types;
