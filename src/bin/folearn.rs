//! The `folearn` command-line tool: learn first-order queries, model-check
//! sentences, play the splitter game, and census types over graphs in the
//! text exchange format. See `folearn_suite::cli` for details and
//! `folearn --help` for usage.

use std::process::ExitCode;

const HELP: &str = "\
folearn — parameterized learning of first-order queries (PODS 2022)

USAGE:
  folearn learn      --graph G.txt --examples E.txt [--ell N] [--q N]
                     [--solver brute|nd|local]
                     [--mode global|local=R|counting=CAP|local-counting=R,CAP]
  folearn modelcheck --graph G.txt --formula \"<sentence>\"
  folearn splitter   --graph G.txt [--radius R]
  folearn types      --graph G.txt [--q N] [--k N]
  folearn dot        --graph G.txt

Graph files use the line format:
  colors Red Blue
  vertices 5
  edge 0 1
  color 0 Red
Example files label tuples, one per line:  '+ 3'  or  '- 2 4'
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{HELP}");
        return ExitCode::FAILURE;
    };
    if command == "--help" || command == "-h" || command == "help" {
        print!("{HELP}");
        return ExitCode::SUCCESS;
    }
    match folearn_suite::cli::run(command, &args[1..]) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
