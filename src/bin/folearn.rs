//! The `folearn` command-line tool: learn first-order queries, model-check
//! sentences, play the splitter game, and census types over graphs in the
//! text exchange format. See `folearn_suite::cli` for details and
//! `folearn --help` for usage.

use std::process::ExitCode;

const HELP: &str = "\
folearn — parameterized learning of first-order queries (PODS 2022)

USAGE:
  folearn learn      --graph G.txt --examples E.txt [--ell N] [--q N]
                     [--solver brute|nd|local]
                     [--mode global|local=R|counting=CAP|local-counting=R,CAP]
                     [--threads N (0 = one per core, max 256)] [--prune on|off]
                     [--engine tree|vm]
  folearn modelcheck --graph G.txt --formula \"<sentence>\" [--engine tree|vm]
  folearn splitter   --graph G.txt [--radius R]
  folearn types      --graph G.txt [--q N] [--k N]
  folearn dot        --graph G.txt
  folearn serve      [--addr HOST:PORT] [--workers N] [--queue N] [--cache N]
                     [--max-requests N] [--addr-file PATH] [--max-line BYTES]
                     [--idle-ms MS] [--max-conns N]
  folearn route      --backends H:P,H:P,... [--replicas R] [--hedge-ms MS]
                     [--vnodes N] [--eject-after N] [--addr HOST:PORT]
                     [--addr-file PATH] [--timeout-ms MS] [--retries N]
                     [--retry-seed N] [--trace on|off]
  folearn client     --addr HOST:PORT --action ACTION ...
                     [--timeout-ms MS (0 = none)] [--retries N (0 = none)]
                     [--retry-seed N]
                     ACTION: ping | register --graph G.txt
                           | solve --graph G.txt --examples E.txt
                                   [--ell N] [--q N] [--solver brute|nd]
                                   [--mode ...] [--threads N] [--prune on|off]
                                   [--engine tree|vm] [--trace-out T.jsonl]
                           | evaluate --graph G.txt --examples E.txt --hypothesis HEX
                           | modelcheck --graph G.txt --formula \"<sentence>\"
                                        [--engine tree|vm]
                           | stats | shutdown
  folearn loadgen    --addr H:P[,H:P...] --graph G.txt [--connections N]
                     [--requests N] [--seed N] [--pool N] [--ell N] [--q N]
                     [--timeout-ms MS] [--retries N] [--retry-seed N]
  folearn top        --addr HOST:PORT [--once] [--interval-ms MS]
                     [--iterations N] [--timeout-ms MS] [--retries N]

Graph files use the line format:
  colors Red Blue
  vertices 5
  edge 0 1
  color 0 Red
Example files label tuples, one per line:  '+ 3'  or  '- 2 4'
The server speaks newline-delimited JSON over TCP; see README.md
(\"The folearn server\") for the wire format.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{HELP}");
        return ExitCode::FAILURE;
    };
    if command == "--help" || command == "-h" || command == "help" {
        print!("{HELP}");
        return ExitCode::SUCCESS;
    }
    match folearn_suite::cli::run(command, &args[1..]) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::HELP;

    #[test]
    fn help_lists_the_engine_flag_everywhere_it_is_parsed() {
        // `--engine` is read by learn, modelcheck, and the client's solve
        // and modelcheck actions (see `cli::parse_engine`); the usage
        // text must keep advertising it for each.
        assert_eq!(
            HELP.matches("[--engine tree|vm]").count(),
            4,
            "usage text drifted from the CLI's --engine surface"
        );
        for backend in ["tree", "vm"] {
            assert!(
                backend.parse::<folearn_logic::vm::EvalEngine>().is_ok(),
                "HELP advertises engine {backend:?} but the parser rejects it"
            );
        }
    }
}
