//! Offline drop-in subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (`lock()` returns a guard, not a `Result`). Poisoned locks are
//! recovered rather than propagated, matching `parking_lot` semantics of
//! never poisoning.

use std::sync::TryLockError;

/// Guard alias — deref to the protected value, unlock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Shared-read guard alias.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard alias.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion primitive with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is held; never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader–writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
