//! Offline work-alike of `rayon`.
//!
//! The build environment has no crates registry, so the workspace vendors
//! the parallel-iterator API subset it needs as a path crate with the same
//! name. Everything runs on `std::thread::scope` with dynamic chunk
//! scheduling (an atomic block dispenser instead of work stealing), which
//! for the coarse-grained workloads in this repo — per-tuple ERM fits,
//! per-example type computations, per-source BFS — behaves like rayon's
//! pool to within noise.
//!
//! Supported surface:
//!
//! * [`prelude`] — `into_par_iter()` on integer ranges, `par_iter()` /
//!   `par_chunks()` on slices, with `map`, `for_each`, `collect`, `sum`;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — scoped control of
//!   the worker count (`num_threads(0)` = all cores, like rayon);
//! * [`current_num_threads`], [`join`];
//! * [`sweep::worker_sweep`] — a shim *extension* (not in real rayon):
//!   the chunked sweep primitive with per-worker state and cooperative
//!   early exit that the ERM engine drives directly. With real rayon this
//!   role is played by `fold`/`reduce`; the extension keeps per-worker
//!   state explicit so callers can merge side arenas deterministically.

pub mod iter;
pub mod prelude;
pub mod sweep;

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`] (and set
    /// to 1 inside sweep workers so nested calls degrade to sequential
    /// instead of oversubscribing).
    static CURRENT_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

static GLOBAL_OVERRIDE: OnceLock<usize> = OnceLock::new();

/// Number of worker threads parallel operations on this thread will use.
///
/// Resolution order: innermost [`ThreadPool::install`] scope, then the
/// global pool from [`ThreadPoolBuilder::build_global`], then the
/// `RAYON_NUM_THREADS` environment variable, then available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = CURRENT_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Some(&n) = GLOBAL_OVERRIDE.get() {
        return n.max(1);
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
    })
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by the shim;
/// kept so caller signatures match real rayon).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (all cores).
    pub fn new() -> Self {
        Self::default()
    }

    /// Use `n` worker threads; `0` means one per core.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build a scoped pool handle.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }

    /// Install this configuration as the process-global default.
    /// Later calls are ignored (first build_global wins), like rayon.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.num_threads
        };
        let _ = GLOBAL_OVERRIDE.set(n);
        Ok(())
    }
}

/// A handle fixing the worker count for operations run under
/// [`ThreadPool::install`].
///
/// The shim has no persistent worker threads; the handle only scopes the
/// thread-count used by parallel operations, which spawn on demand.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's thread count as the ambient default.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = CURRENT_OVERRIDE.with(|c| c.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }
}

/// Internal: pin the calling thread to sequential mode (used inside sweep
/// workers so nested parallel calls don't oversubscribe).
pub(crate) fn enter_worker_thread() {
    CURRENT_OVERRIDE.with(|c| c.set(Some(1)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let outside = current_num_threads();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn nested_install_innermost_wins() {
        let outer = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let n = outer.install(|| inner.install(current_num_threads));
        assert_eq!(n, 2);
    }
}
