//! Indexed parallel iterators (eager, order-preserving).
//!
//! Unlike real rayon's lazy splitting trees, this shim models every
//! parallel iterator as an *indexed source* — a `len` plus a `get(i)` —
//! executed by the chunked [`crate::sweep::worker_sweep`]. That covers
//! ranges, slices, and chunked slices, which is everything the workspace
//! drives in parallel, and makes `collect` trivially order-preserving.

use std::cell::UnsafeCell;
use std::ops::{ControlFlow, Range};

use crate::sweep::{default_block_size, worker_sweep};

/// A random-access description of a parallel sequence.
pub trait IndexedSource: Sync {
    /// Element type produced per index.
    type Item: Send;
    /// Number of elements.
    fn len(&self) -> usize;
    /// Whether the sequence is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Produce element `i` (`i < len()`); called exactly once per index.
    fn get(&self, i: usize) -> Self::Item;
}

/// A parallel iterator over an indexed source.
pub struct ParIter<S> {
    src: S,
    block: Option<usize>,
}

impl<S: IndexedSource> ParIter<S> {
    pub(crate) fn new(src: S) -> Self {
        Self { src, block: None }
    }

    /// Override the scheduling block size (defaults to a load-balanced
    /// choice based on the current thread count).
    pub fn with_block_size(mut self, block: usize) -> Self {
        self.block = Some(block.max(1));
        self
    }

    fn block_size(&self) -> usize {
        self.block.unwrap_or_else(|| default_block_size(self.src.len()))
    }

    /// Transform every element.
    pub fn map<R: Send, F>(self, f: F) -> ParIter<MapSrc<S, F>>
    where
        F: Fn(S::Item) -> R + Sync,
    {
        ParIter {
            src: MapSrc { base: self.src, f },
            block: self.block,
        }
    }

    /// Run `f` on every element (unordered across workers).
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync,
    {
        let block = self.block_size();
        let src = &self.src;
        worker_sweep(
            src.len(),
            block,
            |_| (),
            |(), r: Range<usize>| {
                for i in r {
                    f(src.get(i));
                }
                ControlFlow::Continue(())
            },
        );
    }

    /// Collect all elements, preserving index order.
    pub fn collect<C: FromIterator<S::Item>>(self) -> C {
        let block = self.block_size();
        let src = &self.src;
        collect_indexed(src.len(), block, |i| src.get(i))
            .into_iter()
            .collect()
    }

    /// Sum all elements.
    pub fn sum<T>(self) -> T
    where
        T: std::iter::Sum<S::Item> + std::iter::Sum<T> + Send,
    {
        let block = self.block_size();
        let src = &self.src;
        let parts = worker_sweep(
            src.len(),
            block,
            |_| Vec::new(),
            |acc: &mut Vec<S::Item>, r: Range<usize>| {
                for i in r {
                    acc.push(src.get(i));
                }
                ControlFlow::Continue(())
            },
        );
        parts.into_iter().map(|p| p.into_iter().sum::<T>()).sum()
    }
}

/// Element `i` written by exactly one sweep worker, then drained on the
/// caller thread; `Sync` is sound because blocks partition the index
/// space.
struct OutSlot<T>(UnsafeCell<Option<T>>);

unsafe impl<T: Send> Sync for OutSlot<T> {}

pub(crate) fn collect_indexed<T: Send>(
    len: usize,
    block: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let slots: Vec<OutSlot<T>> = (0..len).map(|_| OutSlot(UnsafeCell::new(None))).collect();
    worker_sweep(
        len,
        block,
        |_| (),
        |(), r: Range<usize>| {
            for i in r {
                let value = f(i);
                // SAFETY: index `i` belongs to exactly one dispensed block,
                // so no other worker touches this slot.
                unsafe { *slots[i].0.get() = Some(value) };
            }
            ControlFlow::Continue(())
        },
    );
    slots
        .into_iter()
        .map(|s| s.0.into_inner().expect("sweep wrote every index"))
        .collect()
}

/// `map` adapter source.
pub struct MapSrc<S, F> {
    base: S,
    f: F,
}

impl<S: IndexedSource, R: Send, F: Fn(S::Item) -> R + Sync> IndexedSource for MapSrc<S, F> {
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn get(&self, i: usize) -> R {
        (self.f)(self.base.get(i))
    }
}

/// Integer-range source.
pub struct RangeSrc<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl IndexedSource for RangeSrc<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                self.len
            }

            fn get(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParIter<RangeSrc<$t>>;

            fn into_par_iter(self) -> Self::Iter {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                ParIter::new(RangeSrc { start: self.start, len })
            }
        }
    )*};
}

impl_range_source!(u32, u64, usize);

/// Borrowed-slice source (`Item = &T`).
pub struct SliceSrc<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedSource for SliceSrc<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn get(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Chunked-slice source (`Item = &[T]`).
pub struct ChunksSrc<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

impl<'a, T: Sync> IndexedSource for ChunksSrc<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    fn get(&self, i: usize) -> &'a [T] {
        let lo = i * self.chunk;
        let hi = (lo + self.chunk).min(self.slice.len());
        &self.slice[lo..hi]
    }
}

/// Conversion into a parallel iterator (mirrors rayon's trait).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Iterator type.
    type Iter;
    /// Build the parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = ParIter<SliceSrc<'a, T>>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter::new(SliceSrc { slice: self })
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<SliceSrc<'a, T>>;

    fn into_par_iter(self) -> Self::Iter {
        ParIter::new(SliceSrc { slice: self })
    }
}

/// Slice entry points (mirrors rayon's `ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T`.
    fn par_iter(&self) -> ParIter<SliceSrc<'_, T>>;
    /// Parallel iterator over `chunk`-sized sub-slices (last may be
    /// shorter).
    ///
    /// # Panics
    /// Panics if `chunk == 0`.
    fn par_chunks(&self, chunk: usize) -> ParIter<ChunksSrc<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<SliceSrc<'_, T>> {
        ParIter::new(SliceSrc { slice: self })
    }

    fn par_chunks(&self, chunk: usize) -> ParIter<ChunksSrc<'_, T>> {
        assert!(chunk > 0, "chunk size must be positive");
        // One scheduling block per chunk: the chunk is the load unit.
        ParIter::new(ChunksSrc { slice: self, chunk }).with_block_size(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_map_collect_preserves_order() {
        let squares: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        assert!(squares.iter().enumerate().all(|(i, &s)| s == (i * i) as u64));
    }

    #[test]
    fn slice_par_iter_sums() {
        let data: Vec<u64> = (0..500).collect();
        let total: u64 = data.par_iter().map(|&x| x).sum();
        assert_eq!(total, 499 * 500 / 2);
    }

    #[test]
    fn par_chunks_cover_slice() {
        let data: Vec<u32> = (0..103).collect();
        let chunk_sums: Vec<u32> = data.par_chunks(10).map(|c| c.iter().sum()).collect();
        assert_eq!(chunk_sums.len(), 11);
        assert_eq!(chunk_sums.iter().sum::<u32>(), data.iter().sum::<u32>());
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<u32> = (5u32..5).into_par_iter().collect();
        assert!(v.is_empty());
        let e: Vec<u32> = Vec::new();
        let w: Vec<u32> = e.par_iter().map(|&x| x).collect();
        assert!(w.is_empty());
    }
}
