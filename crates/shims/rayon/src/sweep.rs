//! The chunked worker-sweep execution primitive.
//!
//! Everything parallel in this shim bottoms out here: a half-open index
//! space `0..len` is carved into fixed-size blocks, worker threads grab
//! blocks off an atomic dispenser (dynamic load balancing without work
//! stealing), and each worker threads a private state value through the
//! blocks it processes. Callers that need global coordination (pruning
//! bounds, short-circuits) capture atomics in `body` and may return
//! [`ControlFlow::Break`] to retire a worker early.

use std::ops::{ControlFlow, Range};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::current_num_threads;

/// Sweep `0..len` in blocks of `block` indices with per-worker state.
///
/// * `init(worker_id)` builds each worker's private state;
/// * `body(state, range)` processes one block; returning
///   `ControlFlow::Break(())` retires *that worker* (cooperative early
///   exit — other workers keep draining unless they also break);
/// * the states of all workers that ran are returned sorted by worker id,
///   so callers can merge side products (arenas, tallies) in a
///   deterministic order.
///
/// Blocks are dispensed in increasing index order; with a single worker
/// (or `len <= block`) the sweep degenerates to the plain sequential
/// loop, processing blocks strictly in order. Worker threads are pinned
/// to sequential mode so nested parallel calls inside `body` don't
/// oversubscribe the machine.
pub fn worker_sweep<St, I, F>(len: usize, block: usize, init: I, body: F) -> Vec<St>
where
    St: Send,
    I: Fn(usize) -> St + Sync,
    F: Fn(&mut St, Range<usize>) -> ControlFlow<()> + Sync,
{
    let block = block.max(1);
    if len == 0 {
        return Vec::new();
    }
    let blocks = len.div_ceil(block);
    let workers = current_num_threads().min(blocks).max(1);
    if workers == 1 {
        let mut state = init(0);
        for b in 0..blocks {
            let lo = b * block;
            let hi = (lo + block).min(len);
            if body(&mut state, lo..hi).is_break() {
                break;
            }
        }
        return vec![state];
    }

    let cursor = AtomicUsize::new(0);
    let states: Mutex<Vec<(usize, St)>> = Mutex::new(Vec::with_capacity(workers));
    std::thread::scope(|scope| {
        for wid in 0..workers {
            let cursor = &cursor;
            let states = &states;
            let init = &init;
            let body = &body;
            scope.spawn(move || {
                crate::enter_worker_thread();
                let mut state = init(wid);
                loop {
                    let lo = cursor.fetch_add(block, Ordering::Relaxed);
                    if lo >= len {
                        break;
                    }
                    let hi = (lo + block).min(len);
                    if body(&mut state, lo..hi).is_break() {
                        break;
                    }
                }
                states.lock().unwrap().push((wid, state));
            });
        }
    });
    let mut states = states.into_inner().unwrap();
    states.sort_unstable_by_key(|(wid, _)| *wid);
    states.into_iter().map(|(_, st)| st).collect()
}

/// A reasonable block size for `len` items: small enough to balance load
/// across the current thread count, large enough to amortise dispatch.
pub fn default_block_size(len: usize) -> usize {
    let threads = current_num_threads();
    (len / (threads * 8).max(1)).clamp(1, 1024)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sweep_covers_every_index_once() {
        let hits = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        worker_sweep(
            1000,
            7,
            |_| (),
            |(), r| {
                for i in r {
                    hits.fetch_add(1, Ordering::Relaxed);
                    sum.fetch_add(i as u64, Ordering::Relaxed);
                }
                ControlFlow::Continue(())
            },
        );
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn per_worker_states_merge() {
        let states = worker_sweep(
            100,
            3,
            |_| 0u64,
            |acc, r| {
                *acc += r.map(|i| i as u64).sum::<u64>();
                ControlFlow::Continue(())
            },
        );
        assert_eq!(states.iter().sum::<u64>(), 99 * 100 / 2);
    }

    #[test]
    fn break_retires_worker() {
        // Single-threaded determinism: force one worker, break after the
        // first block; only that block's indices are seen.
        let pool = crate::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let seen = pool.install(|| {
            worker_sweep(
                100,
                10,
                |_| Vec::new(),
                |acc: &mut Vec<usize>, r| {
                    acc.extend(r);
                    ControlFlow::Break(())
                },
            )
        });
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0], (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_sweep_is_empty() {
        let states = worker_sweep(0, 8, |_| 1u8, |_, _| ControlFlow::Continue(()));
        assert!(states.is_empty());
    }
}
