//! Glob-import surface mirroring `rayon::prelude`.

pub use crate::iter::{IndexedSource, IntoParallelIterator, ParIter, ParallelSlice};
