//! Offline mini benchmark harness.
//!
//! Implements the `criterion` API subset the workspace's benches use —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_with_input`, `Bencher::iter`, `black_box` — measuring
//! wall-clock time with `std::time::Instant` and reporting
//! min/median/mean per benchmark to stdout. No plots, no statistics
//! beyond the basics; enough to track relative performance offline.

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimiser from discarding a value (same contract as
/// `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A labelled benchmark id (`function_name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Compose `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id from a bare function name.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Passed to bench closures; [`Bencher::iter`] runs and times the
/// routine.
pub struct Bencher {
    samples: usize,
    /// Per-sample measured durations, filled by `iter`.
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Measure `routine`: one warm-up call, then `samples` timed calls.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine());
        self.recorded.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.recorded.push(t0.elapsed());
        }
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench forwards CLI args: treat the first non-flag token
        // as a substring filter, like criterion does.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Self {
            sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    /// Default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one("", name, sample_size, f);
        self
    }

    fn run_one(
        &mut self,
        group: &str,
        name: &str,
        samples: usize,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let full = if group.is_empty() {
            name.to_string()
        } else {
            format!("{group}/{name}")
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples,
            recorded: Vec::with_capacity(samples),
        };
        f(&mut b);
        let mut times = b.recorded;
        if times.is_empty() {
            println!("{full}: no measurements (routine never called iter)");
            return;
        }
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{full}  time: [min {} median {} mean {}] ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            times.len()
        );
    }

    /// Report completion (kept for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let name = self.name.clone();
        self.criterion
            .run_one(&name, &id.name, samples, |b| f(b, input));
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let group = self.name.clone();
        self.criterion.run_one(&group, &name.into(), samples, f);
        self
    }

    /// Close the group.
    pub fn finish(&mut self) {}
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declare a group of benchmark functions (simple form only).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        c.filter = None;
        let mut group = c.benchmark_group("g");
        group.sample_size(4);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &(), |b, ()| {
            b.iter(|| calls += 1)
        });
        group.finish();
        // 1 warm-up + 4 samples.
        assert_eq!(calls, 5);
    }

    #[test]
    fn format_scales() {
        assert!(fmt_duration(Duration::from_nanos(10)).contains("ns"));
        assert!(fmt_duration(Duration::from_micros(10)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(10)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(10)).contains("s"));
    }
}
