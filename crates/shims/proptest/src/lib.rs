//! Offline mini property-testing harness.
//!
//! Implements the slice of the `proptest` API this workspace uses —
//! strategies built from integer ranges, tuples, `collection::vec`, and
//! `prop_map`; the `proptest!` macro; `prop_assert!`-family assertions —
//! over the local `rand` shim. No shrinking: on failure the harness
//! reports the test name, case number, and deterministic seed instead of
//! a minimised counterexample.

pub mod collection;
pub mod runner;
pub mod strategy;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::runner::ProptestConfig;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{TestCaseError, TestCaseResult};
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case violated a `prop_assume!` precondition; it is retried
    /// with fresh inputs and does not count against the budget.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Assert a condition inside a `proptest!` body; optionally with a
/// `format!`-style message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return Err($crate::TestCaseError::fail(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)*),
                a,
                b
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a != b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond).to_string()));
        }
    };
}

/// Define property tests: an optional
/// `#![proptest_config(..)]` header followed by `#[test] fn name(arg in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::runner::run_cases(
                $cfg,
                concat!(module_path!(), "::", stringify!($name)),
                |__proptest_rng| {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    let __proptest_result: $crate::TestCaseResult = (move || {
                        $body
                        Ok(())
                    })();
                    __proptest_result
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
