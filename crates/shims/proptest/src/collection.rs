//! Collection strategies.

use crate::strategy::{Strategy, TestRng};
use rand::Rng;

/// A strategy producing `Vec`s with lengths drawn from `len` and
/// elements from `element`.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        len: len.into(),
    }
}

/// Accepted length specifications for [`vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        Self { lo: *r.start(), hi: *r.end() + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.random_range(self.len.lo..self.len.hi);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let strat = vec(0u32..5, 2..6);
        let mut rng = TestRng::deterministic(1);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
