//! The case-running loop behind the `proptest!` macro.

use crate::strategy::TestRng;
use crate::{TestCaseError, TestCaseResult};

/// Configuration mirror of `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Give up after this many consecutive `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        Self {
            cases,
            max_global_rejects: 4096,
        }
    }
}

/// Run `body` on `config.cases` generated inputs; panic on the first
/// failing case, naming the deterministic seed so the run can be
/// reproduced exactly.
pub fn run_cases(
    config: ProptestConfig,
    test_name: &str,
    mut body: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| fnv1a(test_name.as_bytes()));
    let mut rng = TestRng::deterministic(seed);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut case = 0u64;
    while accepted < config.cases {
        case += 1;
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < config.max_global_rejects,
                    "{test_name}: too many prop_assume! rejections \
                     ({rejected}); seed {seed:#x}"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{test_name}: property failed at case #{case} \
                     (seed {seed:#x}, set PROPTEST_SEED={seed} to replay): {msg}"
                );
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_and_counts_cases() {
        let mut runs = 0;
        run_cases(ProptestConfig::with_cases(10), "t", |_| {
            runs += 1;
            Ok(())
        });
        assert_eq!(runs, 10);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failure_panics_with_seed() {
        run_cases(ProptestConfig::with_cases(5), "t", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn rejections_retry() {
        let mut seen = 0u32;
        run_cases(ProptestConfig::with_cases(3), "t", |_| {
            seen += 1;
            if seen % 2 == 0 {
                Err(TestCaseError::reject("skip"))
            } else {
                Ok(())
            }
        });
        assert!(seen >= 3);
    }
}
