//! Strategies: deterministic value generators.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleRange, SeedableRng};

/// The generator handed to strategies; a thin wrapper over the rand
/// shim's deterministic [`StdRng`].
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn deterministic(seed: u64) -> Self {
        Self(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Always produce a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

impl Strategy for bool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+ $(,)?))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_map_compose() {
        let strat = (1usize..5, 0u32..10).prop_map(|(a, b)| a as u32 + b);
        let mut rng = TestRng::deterministic(3);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..15).contains(&v));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let strat = 0u64..1_000_000;
        let a: Vec<u64> = {
            let mut rng = TestRng::deterministic(9);
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::deterministic(9);
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
