//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors the *exact API subset it uses* as a path crate:
//! [`Rng::random_range`], [`Rng::random_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is xoshiro256** seeded through
//! SplitMix64 — statistically solid for tests and experiments, but **not**
//! the ChaCha12 stream of the real `rand`, so seeds produce different (still
//! deterministic) sequences than upstream.

/// Uniform sampling support for range types, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform value from the given (half-open or inclusive) range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // 53 uniform mantissa bits, exactly like rand's f64 sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Deterministic construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                self.start.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `0..span` (`span > 0`) by widening multiply; the
/// modulo bias at 128 bits is immaterial for test workloads.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    rng.next_u64() as u128 % span
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 — the workspace's standard
    /// deterministic generator (stands in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for call sites that name `SmallRng`.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u32> = (0..16).map(|_| a.random_range(0..1000u32)).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.random_range(0..1000u32)).collect();
        let zs: Vec<u32> = (0..16).map(|_| c.random_range(0..1000u32)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.random_range(5..=5);
            assert_eq!(w, 5);
            let i: i32 = rng.random_range(-4..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn bool_probabilities_extreme() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..64).any(|_| rng.random_bool(0.0)));
        assert!((0..64).all(|_| rng.random_bool(1.0)));
        let heads = (0..4000).filter(|_| rng.random_bool(0.5)).count();
        assert!((1600..2400).contains(&heads), "heads={heads}");
    }
}
