//! Workload generators.
//!
//! Experiments need graphs from (effectively) nowhere dense classes —
//! forests, bounded-degree graphs, grids — as well as dense controls
//! (cliques, dense random graphs) that sit *outside* every nowhere dense
//! class, so that the tractability boundary of Theorem 2 is visible. All
//! random generators are deterministic given a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::graph::{Graph, V};
use crate::vocab::{ColorId, Vocabulary};

/// The path `P_n` (vertices `0 — 1 — … — n−1`).
pub fn path(n: usize, vocab: Vocabulary) -> Graph {
    let mut b = GraphBuilder::with_vertices(vocab, n);
    for i in 1..n {
        b.add_edge(V(i as u32 - 1), V(i as u32));
    }
    b.build()
}

/// The cycle `C_n` (requires `n ≥ 3`).
pub fn cycle(n: usize, vocab: Vocabulary) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut b = GraphBuilder::with_vertices(vocab, n);
    for i in 1..n {
        b.add_edge(V(i as u32 - 1), V(i as u32));
    }
    b.add_edge(V(n as u32 - 1), V(0));
    b.build()
}

/// The complete graph `K_n` — the canonical *somewhere dense* control.
pub fn clique(n: usize, vocab: Vocabulary) -> Graph {
    let mut b = GraphBuilder::with_vertices(vocab, n);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(V(i as u32), V(j as u32));
        }
    }
    b.build()
}

/// The star `K_{1,n−1}` with centre `V(0)`.
pub fn star(n: usize, vocab: Vocabulary) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::with_vertices(vocab, n);
    for i in 1..n {
        b.add_edge(V(0), V(i as u32));
    }
    b.build()
}

/// The `w × h` grid (planar, bounded degree 4, nowhere dense).
pub fn grid(w: usize, h: usize, vocab: Vocabulary) -> Graph {
    let mut b = GraphBuilder::with_vertices(vocab, w * h);
    let at = |x: usize, y: usize| V((y * w + x) as u32);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(at(x, y), at(x + 1, y));
            }
            if y + 1 < h {
                b.add_edge(at(x, y), at(x, y + 1));
            }
        }
    }
    b.build()
}

/// The complete binary tree with `depth` levels below the root
/// (`2^{depth+1} − 1` vertices).
pub fn binary_tree(depth: usize, vocab: Vocabulary) -> Graph {
    let n = (1usize << (depth + 1)) - 1;
    let mut b = GraphBuilder::with_vertices(vocab, n);
    for i in 1..n {
        b.add_edge(V(((i - 1) / 2) as u32), V(i as u32));
    }
    b.build()
}

/// A uniformly random labelled tree on `n` vertices (random attachment:
/// vertex `i` attaches to a uniform earlier vertex — a random recursive
/// tree; seeded, deterministic).
pub fn random_tree(n: usize, vocab: Vocabulary, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_vertices(vocab, n);
    for i in 1..n {
        let p = rng.random_range(0..i);
        b.add_edge(V(p as u32), V(i as u32));
    }
    b.build()
}

/// A caterpillar: a spine path of length `spine` with `legs` pendant
/// vertices attached to each spine vertex. Treedepth-ish and very sparse.
pub fn caterpillar(spine: usize, legs: usize, vocab: Vocabulary) -> Graph {
    let mut b = GraphBuilder::with_vertices(vocab, spine * (1 + legs));
    for i in 1..spine {
        b.add_edge(V(i as u32 - 1), V(i as u32));
    }
    for i in 0..spine {
        for l in 0..legs {
            b.add_edge(V(i as u32), V((spine + i * legs + l) as u32));
        }
    }
    b.build()
}

/// A random graph of maximum degree `≤ d`: repeatedly sample vertex pairs
/// and keep an edge if both endpoints still have spare degree. Produces
/// `≈ n·d/2 · fill` edges; bounded degree `d` puts it in a nowhere dense
/// class with concrete Splitter bounds.
pub fn bounded_degree_random(n: usize, d: usize, fill: f64, vocab: Vocabulary, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_vertices(vocab, n);
    let mut deg = vec![0usize; n];
    let mut present = std::collections::HashSet::new();
    let target = ((n * d) as f64 / 2.0 * fill) as usize;
    let mut placed = 0usize;
    let mut attempts = 0usize;
    while placed < target && attempts < 20 * target.max(1) {
        attempts += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v || deg[u] >= d || deg[v] >= d {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if present.insert(key) {
            b.add_edge(V(u as u32), V(v as u32));
            deg[u] += 1;
            deg[v] += 1;
            placed += 1;
        }
    }
    b.build()
}

/// The Erdős–Rényi graph `G(n, p)` (dense control when `p` is constant).
pub fn gnp(n: usize, p: f64, vocab: Vocabulary, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_vertices(vocab, n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.random_bool(p) {
                b.add_edge(V(i as u32), V(j as u32));
            }
        }
    }
    b.build()
}

/// Assign each vertex each colour of the vocabulary independently with the
/// given probability (seeded). Returns a recoloured copy.
pub fn randomly_colored(g: &Graph, prob: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_shared_vocab(std::sync::Arc::clone(g.vocab()));
    for _ in g.vertices() {
        b.add_vertex();
    }
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    for v in g.vertices() {
        for (c, _) in g.vocab().colors() {
            if rng.random_bool(prob) {
                b.set_color(v, c);
            }
        }
    }
    b.build()
}

/// Colour every `stride`-th vertex with `c` (deterministic marker pattern,
/// handy in tests and examples).
pub fn periodically_colored(g: &Graph, c: ColorId, stride: usize) -> Graph {
    let mut b = GraphBuilder::with_shared_vocab(std::sync::Arc::clone(g.vocab()));
    for v in g.vertices() {
        let nv = b.add_vertex();
        b.set_color_words(nv, g.color_words(v));
    }
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    for v in g.vertices().step_by(stride.max(1)) {
        b.set_color(v, c);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use crate::bfs;

    use super::*;

    #[test]
    fn path_shape() {
        let g = path(4, Vocabulary::empty());
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(5, Vocabulary::empty());
        assert_eq!(g.num_edges(), 5);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn clique_shape() {
        let g = clique(6, Vocabulary::empty());
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4, Vocabulary::empty());
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn random_tree_is_tree() {
        let g = random_tree(50, Vocabulary::empty(), 7);
        assert_eq!(g.num_edges(), 49);
        let (_, comps) = bfs::connected_components(&g);
        assert_eq!(comps, 1);
    }

    #[test]
    fn random_tree_deterministic() {
        let a = random_tree(30, Vocabulary::empty(), 42);
        let b = random_tree(30, Vocabulary::empty(), 42);
        assert!(crate::ops::graphs_equal(&a, &b));
    }

    #[test]
    fn bounded_degree_respected() {
        let g = bounded_degree_random(100, 3, 1.0, Vocabulary::empty(), 1);
        assert!(g.max_degree() <= 3);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(3, Vocabulary::empty());
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_edges(), 14);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 2, Vocabulary::empty());
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 + 8);
    }

    #[test]
    fn coloring_helpers() {
        let vocab = Vocabulary::new(["A"]);
        let g = path(10, vocab);
        let c = g.vocab().color_by_name("A").unwrap();
        let g2 = periodically_colored(&g, c, 3);
        assert!(g2.has_color(V(0), c));
        assert!(g2.has_color(V(3), c));
        assert!(!g2.has_color(V(1), c));
        let g3 = randomly_colored(&g, 1.0, 0);
        assert!(g3.vertices().all(|v| g3.has_color(v, c)));
    }
}
