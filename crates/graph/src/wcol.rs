//! Weak colouring numbers — the quantitative face of nowhere-denseness.
//!
//! A class `C` is nowhere dense iff for every `r` the weak `r`-colouring
//! number `wcol_r(G)` is `n^{o(1)}` over `G ∈ C` (and bounded for bounded
//! expansion). This gives a second, order-based certificate of the
//! learnability boundary of Theorem 2, complementing the splitter game:
//! experiment E14 measures `wcol_r` flat on trees and grids but growing
//! on cliques.
//!
//! For a linear order `L` on `V(G)`, a vertex `u` is *weakly r-reachable*
//! from `v` if `u ≤_L v` and there is a path `v = x_0, …, x_j = u` of
//! length `j ≤ r` whose every vertex satisfies `x_i ≥_L u`. Then
//! `wcol_r(G, L) = max_v |WReach_r(v)|` and `wcol_r(G)` is the minimum
//! over orders; we use the degeneracy order, the standard heuristic.

use std::collections::VecDeque;

use crate::graph::{Graph, V};

/// A degeneracy ordering (smallest-last): repeatedly remove a
/// minimum-degree vertex; earlier removed = *larger* in the order, so the
/// returned vector lists vertices from smallest to largest `L`-position.
pub fn degeneracy_order(g: &Graph) -> Vec<V> {
    let n = g.num_vertices();
    let mut degree: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut order_rev = Vec::with_capacity(n);
    for _ in 0..n {
        let v = g
            .vertices()
            .filter(|v| !removed[v.index()])
            .min_by_key(|v| degree[v.index()])
            .expect("vertices remain");
        removed[v.index()] = true;
        order_rev.push(v);
        for &w in g.neighbors(v) {
            if !removed[w as usize] {
                degree[w as usize] -= 1;
            }
        }
    }
    // Smallest-last: the first removed vertex is the largest in L.
    order_rev.reverse();
    order_rev
}

/// `WReach_r(G, L, v)` for every `v`: the sets of weakly `r`-reachable
/// vertices. `order[i]` is the vertex at `L`-position `i`.
pub fn weak_reach_sets(g: &Graph, order: &[V], r: usize) -> Vec<Vec<V>> {
    let n = g.num_vertices();
    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v.index()] = i;
    }
    let mut wreach: Vec<Vec<V>> = vec![Vec::new(); n];
    // For each u (as the reached, L-minimal endpoint): BFS from u of depth
    // ≤ r inside {w : pos(w) ≥ pos(u)}; every reached v gets u in
    // WReach_r(v).
    let mut dist = vec![u32::MAX; n];
    for &u in order {
        let pu = pos[u.index()];
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        let mut queue = VecDeque::new();
        dist[u.index()] = 0;
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            let d = dist[x.index()];
            wreach[x.index()].push(u);
            if d as usize >= r {
                continue;
            }
            for &w in g.neighbors(x) {
                if dist[w as usize] == u32::MAX && pos[w as usize] >= pu {
                    dist[w as usize] = d + 1;
                    queue.push_back(V(w));
                }
            }
        }
    }
    wreach
}

/// `wcol_r(G, L) = max_v |WReach_r(v)|` under the given order.
pub fn weak_coloring_number(g: &Graph, order: &[V], r: usize) -> usize {
    weak_reach_sets(g, order, r)
        .iter()
        .map(Vec::len)
        .max()
        .unwrap_or(0)
}

/// `wcol_r` under the degeneracy-order heuristic.
pub fn wcol(g: &Graph, r: usize) -> usize {
    weak_coloring_number(g, &degeneracy_order(g), r)
}

#[cfg(test)]
mod tests {
    use crate::generators;
    use crate::vocab::Vocabulary;

    use super::*;

    #[test]
    fn wcol_includes_self() {
        let g = generators::path(5, Vocabulary::empty());
        // wcol_0 counts only the vertex itself.
        assert_eq!(wcol(&g, 0), 1);
    }

    #[test]
    fn wcol1_is_degeneracy_plus_one_on_trees() {
        // Trees are 1-degenerate: wcol_1 = 2 under a degeneracy order.
        for seed in 0..3 {
            let g = generators::random_tree(40, Vocabulary::empty(), seed);
            assert_eq!(wcol(&g, 1), 2, "seed {seed}");
        }
    }

    #[test]
    fn wcol_flat_on_growing_trees() {
        let a = wcol(&generators::random_tree(50, Vocabulary::empty(), 1), 3);
        let b = wcol(&generators::random_tree(400, Vocabulary::empty(), 1), 3);
        // Sublinear growth: far below proportional scaling.
        assert!(b <= a * 3, "a={a} b={b}");
    }

    #[test]
    fn wcol_linear_on_cliques() {
        // On K_n every vertex weakly reaches all smaller ones already at
        // r = 1: wcol_1(K_n) = n.
        let g = generators::clique(10, Vocabulary::empty());
        assert_eq!(wcol(&g, 1), 10);
    }

    #[test]
    fn wreach_respects_order_constraint() {
        // Path a-b-c with order a < b < c: WReach_1(a) = {a} despite the
        // edge to b (b > a can't be weakly reached... b is reachable from
        // a only if b ≤ a). Check the definition directly.
        let g = generators::path(3, Vocabulary::empty());
        let order = vec![V(0), V(1), V(2)];
        let wr = weak_reach_sets(&g, &order, 1);
        assert_eq!(wr[0], vec![V(0)]);
        assert!(wr[1].contains(&V(0)) && wr[1].contains(&V(1)));
        assert_eq!(wr[2].len(), 2); // {V(2), V(1)}
    }

    #[test]
    fn monotone_in_radius() {
        let g = generators::grid(6, 6, Vocabulary::empty());
        let order = degeneracy_order(&g);
        let w1 = weak_coloring_number(&g, &order, 1);
        let w2 = weak_coloring_number(&g, &order, 2);
        let w3 = weak_coloring_number(&g, &order, 3);
        assert!(w1 <= w2 && w2 <= w3);
    }
}
