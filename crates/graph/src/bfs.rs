//! Breadth-first search, distances, and `r`-neighbourhoods.
//!
//! The paper's constructions are all *local*: Gaifman locality (Fact 5)
//! speaks about `r`-neighbourhoods `N_r^G(v̄)` of tuples, Lemma 3 covers
//! `N_r(X)` by disjoint larger balls, and Lemma 16 cuts the graph down to
//! `N_{R'}(Z)`. Everything here is bounded-radius BFS over the CSR graph.

use std::collections::VecDeque;
use std::ops::ControlFlow;

use folearn_obs::Counter;

use crate::graph::{Graph, V};

/// Distance `≤ cap` from a set of sources to every vertex; `u32::MAX`
/// denotes "further than `cap`" (or unreachable).
///
/// This is the workhorse: one allocation, bounded BFS. Call sites doing
/// *many* searches should hold a [`DistanceBuffers`] instead and reuse
/// its storage across calls.
pub fn bounded_distances(g: &Graph, sources: &[V], cap: usize) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_vertices()];
    let mut queue = VecDeque::new();
    let mut visited = 0u64;
    for &s in sources {
        // Duplicate sources hit `dist == 0` and are enqueued only once.
        if dist[s.index()] != 0 {
            dist[s.index()] = 0;
            visited += 1;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        if d as usize >= cap {
            continue;
        }
        for &w in g.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = d + 1;
                visited += 1;
                queue.push_back(V(w));
            }
        }
    }
    folearn_obs::count(Counter::BfsRuns, 1);
    folearn_obs::count(Counter::BfsVertices, visited);
    dist
}

/// Reusable storage for repeated bounded BFS runs.
///
/// A bounded search touches only the ball around its sources, but a fresh
/// `Vec<u32>` per call pays an `O(n)` allocation + fill regardless. The
/// pool keeps one distance array and resets *only the entries the previous
/// search wrote* (sparse reset), so a radius-`r` search costs `O(|ball|)`
/// after the first call. This is what the learners' per-example /
/// per-center BFS loops hold per worker.
#[derive(Default)]
pub struct DistanceBuffers {
    dist: Vec<u32>,
    queue: VecDeque<V>,
    touched: Vec<V>,
}

impl DistanceBuffers {
    /// An empty pool; storage grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// [`bounded_distances`] into pooled storage. The returned slice has
    /// one entry per vertex of `g` and is valid until the next call.
    pub fn bounded_distances_in(&mut self, g: &Graph, sources: &[V], cap: usize) -> &[u32] {
        let n = g.num_vertices();
        if self.dist.len() < n {
            self.dist.resize(n, u32::MAX);
        }
        for v in self.touched.drain(..) {
            self.dist[v.index()] = u32::MAX;
        }
        self.queue.clear();
        for &s in sources {
            if self.dist[s.index()] != 0 {
                self.dist[s.index()] = 0;
                self.touched.push(s);
                self.queue.push_back(s);
            }
        }
        while let Some(v) = self.queue.pop_front() {
            let d = self.dist[v.index()];
            if d as usize >= cap {
                continue;
            }
            for &w in g.neighbors(v) {
                if self.dist[w as usize] == u32::MAX {
                    self.dist[w as usize] = d + 1;
                    self.touched.push(V(w));
                    self.queue.push_back(V(w));
                }
            }
        }
        folearn_obs::count(Counter::BfsRuns, 1);
        folearn_obs::count(Counter::BfsVertices, self.touched.len() as u64);
        &self.dist[..n]
    }

    /// The ball `N_r^G(v̄)` using pooled storage (same result as [`ball`]).
    ///
    /// Sorted output comes for free: the touched list is not sorted, but
    /// filtering `g.vertices()` against the distance array is, and only
    /// costs `O(n)` — dominated by ball extraction's later use. For
    /// `O(|ball|)` output, read the distances directly.
    pub fn ball_in(&mut self, g: &Graph, centers: &[V], r: usize) -> Vec<V> {
        let dist = self.bounded_distances_in(g, centers, r);
        g.vertices().filter(|v| dist[v.index()] != u32::MAX).collect()
    }
}

/// Bounded distances from many source sets at once, in parallel: one
/// result row per entry of `sources`, each exactly what
/// [`bounded_distances`] returns for that set.
///
/// Workers reuse a private [`DistanceBuffers`] across the searches they
/// process, so the per-search cost stays `O(|ball|)`. Row order matches
/// input order regardless of scheduling.
pub fn par_bounded_distances_many(
    g: &Graph,
    sources: &[Vec<V>],
    cap: usize,
) -> Vec<Vec<u32>> {
    let states = rayon::sweep::worker_sweep(
        sources.len(),
        rayon::sweep::default_block_size(sources.len()),
        |_| (DistanceBuffers::new(), Vec::new()),
        |(bufs, acc): &mut (DistanceBuffers, Vec<(usize, Vec<u32>)>), range| {
            for i in range {
                let d = bufs.bounded_distances_in(g, &sources[i], cap).to_vec();
                acc.push((i, d));
            }
            ControlFlow::Continue(())
        },
    );
    let mut slots: Vec<Option<Vec<u32>>> = (0..sources.len()).map(|_| None).collect();
    for (_, acc) in states {
        for (i, d) in acc {
            slots[i] = Some(d);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("the sweep covers every index"))
        .collect()
}

/// The distance between two vertices, or `None` if disconnected.
pub fn distance(g: &Graph, u: V, v: V) -> Option<usize> {
    let d = bounded_distances(g, &[u], g.num_vertices())[v.index()];
    (d != u32::MAX).then_some(d as usize)
}

/// `dist(u, v̄) = min_{v ∈ v̄} dist(u, v)` capped at `cap`.
pub fn distance_to_tuple(g: &Graph, u: V, tuple: &[V], cap: usize) -> Option<usize> {
    let d = bounded_distances(g, tuple, cap)[u.index()];
    (d != u32::MAX).then_some(d as usize)
}

/// The ball `N_r^G(v̄) = { u : dist(u, v̄) ≤ r }`, sorted by vertex index.
pub fn ball(g: &Graph, centers: &[V], r: usize) -> Vec<V> {
    let dist = bounded_distances(g, centers, r);
    g.vertices()
        .filter(|v| dist[v.index()] != u32::MAX)
        .collect()
}

/// Whether two tuples are within distance `≤ r` of each other
/// (`dist(ū, v̄) ≤ r` in the paper's notation).
pub fn tuples_within(g: &Graph, a: &[V], b: &[V], r: usize) -> bool {
    let dist = bounded_distances(g, a, r);
    b.iter().any(|v| dist[v.index()] != u32::MAX)
}

/// Connected components; returns `(component_id_per_vertex, count)`.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for s in g.vertices() {
        if comp[s.index()] != u32::MAX {
            continue;
        }
        comp[s.index()] = next;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = next;
                    queue.push_back(V(w));
                }
            }
        }
        next += 1;
    }
    (comp, next as usize)
}

/// Eccentricity of `v` within its connected component.
pub fn eccentricity(g: &Graph, v: V) -> usize {
    bounded_distances(g, &[v], g.num_vertices())
        .into_iter()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0) as usize
}

/// A vertex of minimum eccentricity in the component of `v` (a *centre*),
/// computed by the classic two-BFS heuristic followed by exact check on
/// small components, or exactly when `exact` is set.
///
/// Used by the forest Splitter strategy, where the centre of a ball is the
/// root that bounds the remaining game length.
pub fn component_center(g: &Graph, v: V) -> V {
    // For trees the midpoint of a longest path is exact; for general graphs
    // this is a good heuristic and only used heuristically there.
    let d1 = bounded_distances(g, &[v], g.num_vertices());
    let a = g
        .vertices()
        .filter(|u| d1[u.index()] != u32::MAX)
        .max_by_key(|u| d1[u.index()])
        .unwrap_or(v);
    let d2 = bounded_distances(g, &[a], g.num_vertices());
    let b = g
        .vertices()
        .filter(|u| d2[u.index()] != u32::MAX)
        .max_by_key(|u| d2[u.index()])
        .unwrap_or(a);
    // Walk from b halfway towards a along a shortest path.
    let d3 = bounded_distances(g, &[b], g.num_vertices());
    let diam = d2[b.index()] as usize;
    let half = diam.div_ceil(2);
    // Find a vertex on a shortest a-b path at distance `half` from b:
    // dist(b, x) == half and dist(a, x) == diam - half.
    g.vertices()
        .find(|x| {
            d3[x.index()] as usize == half && d2[x.index()] as usize == diam - half
        })
        .unwrap_or(v)
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::generators;
    use crate::vocab::Vocabulary;

    use super::*;

    fn path(n: usize) -> Graph {
        generators::path(n, Vocabulary::empty())
    }

    #[test]
    fn distances_on_path() {
        let g = path(5);
        assert_eq!(distance(&g, V(0), V(4)), Some(4));
        assert_eq!(distance(&g, V(2), V(2)), Some(0));
    }

    #[test]
    fn bounded_cap_cuts_off() {
        let g = path(10);
        let d = bounded_distances(&g, &[V(0)], 3);
        assert_eq!(d[3], 3);
        assert_eq!(d[4], u32::MAX);
    }

    #[test]
    fn ball_of_tuple() {
        let g = path(10);
        let b = ball(&g, &[V(0), V(9)], 1);
        assert_eq!(b, vec![V(0), V(1), V(8), V(9)]);
    }

    #[test]
    fn disconnected_distance_is_none() {
        let mut b = GraphBuilder::with_vertices(Vocabulary::empty(), 2);
        b.add_edge(V(0), V(1));
        let mut b2 = GraphBuilder::with_vertices(Vocabulary::empty(), 3);
        b2.add_edge(V(0), V(1));
        let g = b2.build();
        assert_eq!(distance(&g, V(0), V(2)), None);
        drop(b);
    }

    #[test]
    fn components_counted() {
        let mut b = GraphBuilder::with_vertices(Vocabulary::empty(), 5);
        b.add_edge(V(0), V(1));
        b.add_edge(V(2), V(3));
        let g = b.build();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
    }

    #[test]
    fn center_of_path_is_middle() {
        let g = path(9);
        let c = component_center(&g, V(0));
        assert_eq!(c, V(4));
    }

    #[test]
    fn pooled_bfs_matches_fresh() {
        let g = generators::random_tree(40, Vocabulary::empty(), 7);
        let mut bufs = DistanceBuffers::new();
        // Repeated pooled calls (sparse reset in between) agree with the
        // allocating version, including duplicated sources.
        for sources in [vec![V(0)], vec![V(7), V(7), V(31)], vec![V(39)], vec![V(3)]] {
            for cap in [0, 1, 2, 5, 40] {
                assert_eq!(
                    bufs.bounded_distances_in(&g, &sources, cap),
                    bounded_distances(&g, &sources, cap).as_slice(),
                    "sources {sources:?} cap {cap}"
                );
            }
        }
        assert_eq!(bufs.ball_in(&g, &[V(0)], 2), ball(&g, &[V(0)], 2));
    }

    #[test]
    fn parallel_many_matches_serial() {
        let g = generators::random_tree(30, Vocabulary::empty(), 5);
        let sources: Vec<Vec<V>> =
            g.vertices().map(|v| vec![v, V(v.0 % 7)]).collect();
        let par = par_bounded_distances_many(&g, &sources, 3);
        assert_eq!(par.len(), sources.len());
        for (row, src) in par.iter().zip(&sources) {
            assert_eq!(row, &bounded_distances(&g, src, 3));
        }
        assert!(par_bounded_distances_many(&g, &[], 3).is_empty());
    }

    #[test]
    fn tuples_within_works() {
        let g = path(10);
        assert!(tuples_within(&g, &[V(0)], &[V(3)], 3));
        assert!(!tuples_within(&g, &[V(0)], &[V(4)], 3));
        assert!(tuples_within(&g, &[V(0), V(8)], &[V(9)], 1));
    }

    #[test]
    fn eccentricity_on_path() {
        let g = path(5);
        assert_eq!(eccentricity(&g, V(0)), 4);
        assert_eq!(eccentricity(&g, V(2)), 2);
    }
}
