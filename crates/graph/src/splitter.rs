//! The splitter game (the paper's Fact 4, from Grohe–Kreutzer–Siebertz).
//!
//! The `(r, s)`-splitter game on `G` is played by *Connector* and
//! *Splitter*. Starting from `G_0 = G`, in round `i+1` Connector picks a
//! vertex `v` of the current arena `G_i` (in the *modified* game also a
//! radius `r' ≤ r`), Splitter answers with `w ∈ N_{r'}^{G_i}(v)`, and the
//! arena becomes `G_{i+1} = G_i[N_{r'}^{G_i}(v) \ {w}]`. Splitter wins when
//! the arena is empty. A class is nowhere dense iff for every `r` there is
//! an `s` such that Splitter wins the `(r, s)` game on every member
//! (Fact 4); *effectively* nowhere dense classes have a computable `s(r)`.
//!
//! The FPT learner of Theorem 13 consumes exactly two things from a class:
//! the bound `s(r)` and Splitter's answers `w_j` to the picks `z_j` — those
//! answers become the *parameters* of the learned query. This module
//! provides both, for the concrete classes used in the experiments:
//!
//! * forests — the top-of-ball strategy wins in `s(r) ≤ r + 2` rounds;
//! * graphs of treedepth `≤ d` — the minimal-elimination-depth rule wins in
//!   `s(r) ≤ d` rounds (independent of `r`);
//! * graphs of maximum degree `≤ d` — balls have at most
//!   `1 + d·Σ_{i<r}(d−1)^i` vertices and any answer wins within one more
//!   than that bound;
//! * a greedy heuristic for classes without an implemented certificate
//!   (e.g. planar), with the achieved round count *measured*, not promised.

use std::collections::HashMap;

use folearn_obs::{Counter, Json};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bfs;
use crate::graph::{Graph, V};
use crate::ops::{self, InducedSubgraph};

/// Splitter's side of the game: pick `w ∈ N_r(v)` given the current arena.
///
/// Implementations may keep state across rounds of one game; the learner
/// creates a fresh strategy per derived graph, which is sound because each
/// derived graph is itself a member of the class.
pub trait SplitterStrategy {
    /// Splitter's answer to Connector picking `v` with radius `r` in
    /// `arena`. Must return a vertex of `N_r^{arena}(v)`.
    fn answer(&mut self, arena: &Graph, v: V, r: usize) -> V;

    /// An upper bound on the number of rounds Splitter needs for radius
    /// `r`, independent of the graph's order; `None` if the strategy is
    /// heuristic and offers no guarantee.
    fn round_bound(&self, r: usize) -> Option<usize>;

    /// Human-readable strategy name.
    fn name(&self) -> &'static str;
}

/// Connector's side: pick a vertex and a radius `≤ r_max`, or concede when
/// the arena is empty.
pub trait ConnectorStrategy {
    /// Pick `(vertex, radius)` in the arena; `None` concedes.
    fn pick(&mut self, arena: &Graph, r_max: usize) -> Option<(V, usize)>;
}

// ---------------------------------------------------------------------------
// Splitter strategies
// ---------------------------------------------------------------------------

/// Winning strategy on forests: answer the *top* of the picked ball.
///
/// The ball `N_r(v)` in a tree is a subtree; relative to a root of the
/// component it has a unique vertex of minimal depth (its *top*) through
/// which every path into the ball passes. Removing the top splits the
/// remaining ball into subtrees of strictly larger minimal depth, so the
/// depth spread — at most `r − 1` after the first round — shrinks every
/// round: Splitter wins within `r + 2` rounds.
///
/// Roots are chosen lazily per component as BFS centres, which both keeps
/// the strategy stateless across games and gives the tightest spread.
#[derive(Default, Clone)]
pub struct ForestSplitter;

impl SplitterStrategy for ForestSplitter {
    fn answer(&mut self, arena: &Graph, v: V, r: usize) -> V {
        // Root the component at its centre, then return the min-depth
        // vertex of the ball.
        let center = bfs::component_center(arena, v);
        let depth = bfs::bounded_distances(arena, &[center], arena.num_vertices());
        let ball = bfs::ball(arena, &[v], r);
        ball.into_iter()
            .min_by_key(|u| depth[u.index()])
            .expect("ball always contains its centre")
    }

    fn round_bound(&self, r: usize) -> Option<usize> {
        Some(r + 2)
    }

    fn name(&self) -> &'static str {
        "forest-top-of-ball"
    }
}

/// An elimination forest (treedepth decomposition): a rooted forest on
/// `V(G)` such that every edge of `G` connects an ancestor–descendant pair.
#[derive(Clone, Debug)]
pub struct EliminationForest {
    /// Parent of each vertex (`None` for roots).
    pub parent: Vec<Option<V>>,
    /// Depth of each vertex (roots have depth 1).
    pub depth: Vec<u32>,
}

impl EliminationForest {
    /// Height = treedepth witnessed by this forest.
    pub fn height(&self) -> usize {
        self.depth.iter().copied().max().unwrap_or(0) as usize
    }

    /// Verify the ancestor property against `g` (used in tests).
    pub fn is_valid_for(&self, g: &Graph) -> bool {
        if self.parent.len() != g.num_vertices() {
            return false;
        }
        let ancestor = |mut a: V, b: V| -> bool {
            loop {
                if a == b {
                    return true;
                }
                match self.parent[a.index()] {
                    Some(p) => a = p,
                    None => return false,
                }
            }
        };
        g.edges().all(|(u, v)| ancestor(u, v) || ancestor(v, u))
    }
}

/// Compute an elimination forest of a *forest* graph by recursive centroid
/// decomposition; the resulting height is `O(log n)` — and for balls of a
/// tree, `O(log ball-size)`.
///
/// # Panics
/// Panics if `g` contains a cycle.
pub fn centroid_elimination_forest(g: &Graph) -> EliminationForest {
    assert!(
        g.num_edges() + count_components(g) == g.num_vertices(),
        "centroid elimination forests require acyclic input"
    );
    let n = g.num_vertices();
    let mut parent = vec![None; n];
    let mut depth = vec![0u32; n];
    let mut removed = vec![false; n];
    // Recursive centroid decomposition, iteratively with an explicit stack
    // of (component representative, parent-in-forest, depth).
    let mut stack: Vec<(V, Option<V>, u32)> = Vec::new();
    let mut seen = vec![false; n];
    for s in g.vertices() {
        if !seen[s.index()] {
            // mark component
            let comp = component_of(g, s, &removed);
            for &c in &comp {
                seen[c.index()] = true;
            }
            stack.push((s, None, 1));
        }
    }
    while let Some((rep, par, d)) = stack.pop() {
        let comp = component_of(g, rep, &removed);
        let centroid = tree_centroid(g, &comp, &removed);
        parent[centroid.index()] = par;
        depth[centroid.index()] = d;
        removed[centroid.index()] = true;
        let mut handled = vec![false; n];
        for &u in g.neighbors(centroid) {
            let u = V(u);
            if !removed[u.index()] && !handled[u.index()] {
                let sub = component_of(g, u, &removed);
                for &x in &sub {
                    handled[x.index()] = true;
                }
                stack.push((u, Some(centroid), d + 1));
            }
        }
    }
    EliminationForest { parent, depth }
}

fn count_components(g: &Graph) -> usize {
    bfs::connected_components(g).1
}

fn component_of(g: &Graph, s: V, removed: &[bool]) -> Vec<V> {
    let mut out = Vec::new();
    let mut stack = vec![s];
    let mut seen = HashMap::new();
    seen.insert(s, ());
    while let Some(v) = stack.pop() {
        out.push(v);
        for &w in g.neighbors(v) {
            let w = V(w);
            if !removed[w.index()] && !seen.contains_key(&w) {
                seen.insert(w, ());
                stack.push(w);
            }
        }
    }
    out
}

/// The centroid of a tree component: a vertex whose removal leaves
/// components of size `≤ |comp|/2`.
fn tree_centroid(g: &Graph, comp: &[V], removed: &[bool]) -> V {
    let total = comp.len();
    let in_comp: HashMap<V, usize> = comp.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    // Subtree sizes via iterative post-order from comp[0].
    let root = comp[0];
    let mut order = Vec::with_capacity(total);
    let mut parent: HashMap<V, V> = HashMap::new();
    let mut stack = vec![root];
    let mut seen = vec![false; total];
    seen[in_comp[&root]] = true;
    while let Some(v) = stack.pop() {
        order.push(v);
        for &w in g.neighbors(v) {
            let w = V(w);
            if removed[w.index()] {
                continue;
            }
            if let Some(&wi) = in_comp.get(&w) {
                if !seen[wi] {
                    seen[wi] = true;
                    parent.insert(w, v);
                    stack.push(w);
                }
            }
        }
    }
    let mut size: HashMap<V, usize> = comp.iter().map(|&v| (v, 1)).collect();
    for &v in order.iter().rev() {
        if let Some(&p) = parent.get(&v) {
            *size.get_mut(&p).unwrap() += size[&v];
        }
    }
    // Walk down from the root towards the heavy side.
    let mut cur = root;
    loop {
        let heavy = g
            .neighbors(cur)
            .iter()
            .map(|&w| V(w))
            .filter(|w| !removed[w.index()] && in_comp.contains_key(w) && parent.get(w) == Some(&cur))
            .max_by_key(|w| size[w]);
        match heavy {
            Some(h) if size[&h] > total / 2 => cur = h,
            _ => return cur,
        }
    }
}

/// Winning strategy for graphs with a known elimination forest: answer the
/// vertex of minimal elimination depth in the ball.
///
/// The ball is connected, and a connected subgraph has a unique
/// minimal-depth vertex in an elimination forest which is an ancestor of
/// the whole subgraph; removing it pushes the minimal depth strictly down,
/// so Splitter wins within `height` rounds regardless of `r`.
pub struct TreedepthSplitter {
    forest: EliminationForest,
}

impl TreedepthSplitter {
    /// Build from an explicit elimination forest of the *arena* graph.
    pub fn new(forest: EliminationForest) -> Self {
        Self { forest }
    }

    /// Build by centroid-decomposing an acyclic arena.
    pub fn for_forest_graph(g: &Graph) -> Self {
        Self::new(centroid_elimination_forest(g))
    }
}

impl SplitterStrategy for TreedepthSplitter {
    fn answer(&mut self, arena: &Graph, v: V, r: usize) -> V {
        let ball = bfs::ball(arena, &[v], r);
        ball.into_iter()
            .min_by_key(|u| self.forest.depth[u.index()])
            .expect("ball always contains its centre")
    }

    fn round_bound(&self, _r: usize) -> Option<usize> {
        Some(self.forest.height())
    }

    fn name(&self) -> &'static str {
        "treedepth-elimination"
    }
}

/// Strategy for bounded-degree graphs: balls are small, so *any* answer
/// wins; we answer the pick itself.
pub struct BoundedDegreeSplitter {
    /// The degree bound `d` of the class.
    pub degree: usize,
}

/// `1 + d·Σ_{i<r}(d−1)^i`, the maximum ball size in a graph of maximum
/// degree `d`, saturating on overflow.
pub fn ball_size_bound(d: usize, r: usize) -> usize {
    if d == 0 || r == 0 {
        return 1;
    }
    let mut total = 1usize;
    let mut layer = d;
    for _ in 0..r {
        total = total.saturating_add(layer);
        layer = layer.saturating_mul(d.saturating_sub(1).max(1));
    }
    total
}

impl SplitterStrategy for BoundedDegreeSplitter {
    fn answer(&mut self, _arena: &Graph, v: V, _r: usize) -> V {
        v
    }

    fn round_bound(&self, r: usize) -> Option<usize> {
        Some(ball_size_bound(self.degree, r).saturating_add(1))
    }

    fn name(&self) -> &'static str {
        "bounded-degree-any"
    }
}

/// Heuristic strategy with no guarantee: answer the highest-degree vertex
/// of the ball (ties by index). Performs well on planar-ish classes; its
/// achieved round counts are an experiment, not a theorem.
#[derive(Default, Clone)]
pub struct GreedySplitter;

impl SplitterStrategy for GreedySplitter {
    fn answer(&mut self, arena: &Graph, v: V, r: usize) -> V {
        let ball = bfs::ball(arena, &[v], r);
        ball.into_iter()
            .max_by_key(|u| (arena.degree(*u), std::cmp::Reverse(u.0)))
            .expect("ball always contains its centre")
    }

    fn round_bound(&self, _r: usize) -> Option<usize> {
        None
    }

    fn name(&self) -> &'static str {
        "greedy-max-degree"
    }
}

// ---------------------------------------------------------------------------
// Connector strategies
// ---------------------------------------------------------------------------

/// Adversarial Connector: pick the vertex whose `r`-ball is largest
/// (always with the full radius).
pub struct MaxBallConnector;

impl ConnectorStrategy for MaxBallConnector {
    fn pick(&mut self, arena: &Graph, r_max: usize) -> Option<(V, usize)> {
        arena
            .vertices()
            .max_by_key(|&v| bfs::ball(arena, &[v], r_max).len())
            .map(|v| (v, r_max))
    }
}

/// Random Connector (seeded).
pub struct RandomConnector {
    rng: StdRng,
}

impl RandomConnector {
    /// A seeded random Connector.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl ConnectorStrategy for RandomConnector {
    fn pick(&mut self, arena: &Graph, r_max: usize) -> Option<(V, usize)> {
        if arena.num_vertices() == 0 {
            return None;
        }
        let v = V(self.rng.random_range(0..arena.num_vertices() as u32));
        let r = self.rng.random_range(1..=r_max.max(1));
        Some((v, r))
    }
}

/// Connector picking the maximum-degree vertex with full radius.
pub struct MaxDegreeConnector;

impl ConnectorStrategy for MaxDegreeConnector {
    fn pick(&mut self, arena: &Graph, r_max: usize) -> Option<(V, usize)> {
        arena
            .vertices()
            .max_by_key(|&v| arena.degree(v))
            .map(|v| (v, r_max))
    }
}

// ---------------------------------------------------------------------------
// Game runner
// ---------------------------------------------------------------------------

/// Outcome of a finished splitter game.
#[derive(Debug, Clone)]
pub struct GameResult {
    /// Rounds actually played.
    pub rounds: usize,
    /// Whether Splitter emptied the arena within the round cap.
    pub splitter_won: bool,
    /// The trace of `(connector pick, radius, splitter answer)` in
    /// *original-graph* vertex ids.
    pub trace: Vec<(V, usize, V)>,
}

/// The evolving arena of a splitter game, tracked against the original
/// graph so traces stay meaningful.
pub struct SplitterGame {
    arena: Graph,
    /// Arena vertex → original vertex.
    to_original: Vec<V>,
    r_max: usize,
    rounds: usize,
}

impl SplitterGame {
    /// Start the `(r, ·)` game on `g`.
    pub fn new(g: &Graph, r_max: usize) -> Self {
        Self {
            arena: g.clone(),
            to_original: g.vertices().collect(),
            r_max,
            rounds: 0,
        }
    }

    /// Current arena.
    pub fn arena(&self) -> &Graph {
        &self.arena
    }

    /// Rounds played so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Whether Splitter has already won.
    pub fn is_over(&self) -> bool {
        self.arena.num_vertices() == 0
    }

    /// Map an arena vertex to the original graph.
    pub fn original_vertex(&self, v: V) -> V {
        self.to_original[v.index()]
    }

    /// Play one round: Connector has picked arena vertex `v` with radius
    /// `radius ≤ r_max`; Splitter answers `w ∈ N_radius(v)`. Returns the
    /// answer in original-vertex coordinates.
    ///
    /// # Panics
    /// Panics if the radius exceeds the game radius or the answer is not
    /// in the picked ball (rule violations).
    pub fn play_round(
        &mut self,
        v: V,
        radius: usize,
        splitter: &mut dyn SplitterStrategy,
    ) -> V {
        assert!(radius <= self.r_max, "Connector radius exceeds game radius");
        assert!(v.index() < self.arena.num_vertices(), "pick out of arena");
        let w = splitter.answer(&self.arena, v, radius);
        let ball = bfs::ball(&self.arena, &[v], radius);
        assert!(ball.contains(&w), "Splitter answer must lie in the ball");
        let remaining: Vec<V> = ball.into_iter().filter(|&u| u != w).collect();
        let sub: InducedSubgraph = ops::induced_subgraph(&self.arena, &remaining);
        let new_to_original = sub
            .to_old
            .iter()
            .map(|&u| self.to_original[u.index()])
            .collect();
        let original_answer = self.to_original[w.index()];
        self.arena = sub.graph;
        self.to_original = new_to_original;
        self.rounds += 1;
        original_answer
    }
}

/// Play a full game between the given strategies, capped at `max_rounds`.
///
/// ```
/// use folearn_graph::{generators, Vocabulary};
/// use folearn_graph::splitter::{play_game, ForestSplitter, MaxBallConnector};
///
/// let g = generators::random_tree(100, Vocabulary::empty(), 1);
/// let result = play_game(&g, 2, &mut ForestSplitter, &mut MaxBallConnector, 10);
/// assert!(result.splitter_won);
/// assert!(result.rounds <= 4); // forests: s(r) = r + 2
/// ```
pub fn play_game(
    g: &Graph,
    r: usize,
    splitter: &mut dyn SplitterStrategy,
    connector: &mut dyn ConnectorStrategy,
    max_rounds: usize,
) -> GameResult {
    let sp = folearn_obs::span("splitter.game");
    let mut game = SplitterGame::new(g, r);
    let mut trace = Vec::new();
    while !game.is_over() && game.rounds() < max_rounds {
        let Some((v, radius)) = connector.pick(game.arena(), r) else {
            break;
        };
        let orig_pick = game.original_vertex(v);
        let answer = game.play_round(v, radius, splitter);
        trace.push((orig_pick, radius, answer));
    }
    // Each round appends exactly one trace entry, so the recorded counter
    // always equals the returned trace length.
    folearn_obs::count(Counter::GameRounds, trace.len() as u64);
    if folearn_obs::enabled() {
        folearn_obs::meta("r", Json::int(r));
        folearn_obs::meta("splitter", Json::str(splitter.name()));
        folearn_obs::meta(
            "trace",
            Json::Arr(
                trace
                    .iter()
                    .map(|&(pick, radius, answer)| {
                        Json::Arr(vec![
                            Json::int(pick.index()),
                            Json::int(radius),
                            Json::int(answer.index()),
                        ])
                    })
                    .collect(),
            ),
        );
    }
    drop(sp);
    GameResult {
        rounds: game.rounds(),
        splitter_won: game.is_over(),
        trace,
    }
}

// ---------------------------------------------------------------------------
// Class descriptors
// ---------------------------------------------------------------------------

/// A certified (or heuristic) graph class, bundling the Splitter round
/// bound `s(r)` with a strategy factory — exactly what Theorem 13's learner
/// consumes.
#[derive(Clone, Debug)]
pub enum GraphClass {
    /// Acyclic graphs; `s(r) = r + 2`.
    Forest,
    /// Maximum degree `≤ d`; `s(r) = ball_size_bound(d, r) + 1`.
    BoundedDegree(usize),
    /// Treedepth `≤ d` (elimination forest recomputed per arena via
    /// centroid decomposition, valid when arenas stay acyclic);
    /// `s(r) = d`.
    Treedepth(usize),
    /// No certificate: greedy strategy with a caller-chosen round budget.
    Heuristic {
        /// Assumed round bound used in place of a certified `s(r)`.
        assumed_rounds: usize,
    },
}

impl GraphClass {
    /// The (claimed) Splitter round bound `s(r)`.
    pub fn splitter_rounds(&self, r: usize) -> usize {
        match self {
            GraphClass::Forest => r + 2,
            GraphClass::BoundedDegree(d) => ball_size_bound(*d, r).saturating_add(1),
            GraphClass::Treedepth(d) => *d,
            GraphClass::Heuristic { assumed_rounds } => *assumed_rounds,
        }
    }

    /// A fresh Splitter strategy for an arena from this class.
    pub fn make_splitter(&self, arena: &Graph) -> Box<dyn SplitterStrategy> {
        match self {
            GraphClass::Forest => Box::new(ForestSplitter),
            GraphClass::BoundedDegree(d) => Box::new(BoundedDegreeSplitter { degree: *d }),
            GraphClass::Treedepth(_) => {
                if arena.num_edges() + count_components(arena) == arena.num_vertices() {
                    Box::new(TreedepthSplitter::for_forest_graph(arena))
                } else {
                    Box::new(GreedySplitter)
                }
            }
            GraphClass::Heuristic { .. } => Box::new(GreedySplitter),
        }
    }

    /// Class name for reports.
    pub fn name(&self) -> String {
        match self {
            GraphClass::Forest => "forest".into(),
            GraphClass::BoundedDegree(d) => format!("max-degree-{d}"),
            GraphClass::Treedepth(d) => format!("treedepth-{d}"),
            GraphClass::Heuristic { assumed_rounds } => {
                format!("heuristic(s={assumed_rounds})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::generators;
    use crate::vocab::Vocabulary;

    use super::*;

    #[test]
    fn forest_splitter_wins_on_paths_within_bound() {
        for n in [5usize, 20, 60] {
            for r in [1usize, 2, 3] {
                let g = generators::path(n, Vocabulary::empty());
                let mut s = ForestSplitter;
                let mut c = MaxBallConnector;
                let result = play_game(&g, r, &mut s, &mut c, 10 * (r + 2));
                assert!(result.splitter_won, "n={n} r={r}");
                assert!(
                    result.rounds <= r + 2,
                    "n={n} r={r} rounds={}",
                    result.rounds
                );
            }
        }
    }

    #[test]
    fn forest_splitter_wins_on_random_trees() {
        for seed in 0..5 {
            let g = generators::random_tree(80, Vocabulary::empty(), seed);
            let mut s = ForestSplitter;
            let mut c = RandomConnector::new(seed);
            let r = 3;
            let result = play_game(&g, r, &mut s, &mut c, 10 * (r + 2));
            assert!(result.splitter_won);
            assert!(result.rounds <= r + 2, "rounds={}", result.rounds);
        }
    }

    #[test]
    fn bounded_degree_splitter_terminates() {
        let g = generators::bounded_degree_random(60, 3, 1.0, Vocabulary::empty(), 3);
        let mut s = BoundedDegreeSplitter { degree: 3 };
        let mut c = MaxDegreeConnector;
        let r = 2;
        let bound = s.round_bound(r).unwrap();
        let result = play_game(&g, r, &mut s, &mut c, bound + 1);
        assert!(result.splitter_won);
        assert!(result.rounds <= bound);
    }

    #[test]
    fn clique_resists_splitter() {
        // On K_n with r ≥ 1 the arena shrinks by exactly one vertex per
        // round, so Splitter needs n rounds — witnessing somewhere-density.
        let n = 12;
        let g = generators::clique(n, Vocabulary::empty());
        let mut s = GreedySplitter;
        let mut c = MaxBallConnector;
        let result = play_game(&g, 1, &mut s, &mut c, n + 5);
        assert!(result.splitter_won);
        assert_eq!(result.rounds, n);
    }

    #[test]
    fn centroid_forest_is_valid_and_shallow() {
        let g = generators::random_tree(127, Vocabulary::empty(), 11);
        let f = centroid_elimination_forest(&g);
        assert!(f.is_valid_for(&g));
        // Centroid decomposition height ≤ log2(n) + 1.
        assert!(f.height() <= 8, "height={}", f.height());
    }

    #[test]
    fn treedepth_splitter_wins_within_height() {
        let g = generators::binary_tree(5, Vocabulary::empty());
        let f = centroid_elimination_forest(&g);
        let h = f.height();
        let mut s = TreedepthSplitter::new(f);
        let mut c = MaxBallConnector;
        let result = play_game(&g, 4, &mut s, &mut c, h + 1);
        assert!(result.splitter_won);
        assert!(result.rounds <= h, "rounds={} height={h}", result.rounds);
    }

    #[test]
    fn modified_game_smaller_radius_allowed() {
        let g = generators::path(30, Vocabulary::empty());
        let mut game = SplitterGame::new(&g, 5);
        let mut s = ForestSplitter;
        // Connector shrinks the radius to 2.
        let answer = game.play_round(V(10), 2, &mut s);
        assert!(answer.index() < 30);
        assert!(game.arena().num_vertices() <= 5 - 1 + 1); // ball of radius 2 minus answer, ≤ 4
    }

    #[test]
    #[should_panic(expected = "radius exceeds")]
    fn radius_violation_panics() {
        let g = generators::path(10, Vocabulary::empty());
        let mut game = SplitterGame::new(&g, 2);
        let mut s = ForestSplitter;
        game.play_round(V(0), 3, &mut s);
    }

    #[test]
    fn ball_size_bound_values() {
        assert_eq!(ball_size_bound(3, 1), 4);
        assert_eq!(ball_size_bound(3, 2), 10);
        assert_eq!(ball_size_bound(2, 3), 7); // path-like: 1 + 2 + 2 + 2
        assert_eq!(ball_size_bound(0, 5), 1);
    }

    #[test]
    fn class_descriptor_round_bounds() {
        assert_eq!(GraphClass::Forest.splitter_rounds(3), 5);
        assert_eq!(GraphClass::Treedepth(4).splitter_rounds(100), 4);
        assert_eq!(
            GraphClass::BoundedDegree(3).splitter_rounds(2),
            ball_size_bound(3, 2) + 1
        );
    }

    #[test]
    fn telemetry_game_rounds_match_trace_length() {
        folearn_obs::set_enabled(true);
        folearn_obs::take_thread_roots();
        let g = generators::random_tree(40, Vocabulary::empty(), 3);
        let result = play_game(&g, 2, &mut ForestSplitter, &mut MaxBallConnector, 20);
        let roots = folearn_obs::take_thread_roots();
        let game = roots
            .iter()
            .find_map(|r| r.find("splitter.game"))
            .expect("the game records a span");
        assert_eq!(
            game.counters.get(Counter::GameRounds),
            result.trace.len() as u64,
            "recorded game length must equal the returned trace length"
        );
        assert_eq!(result.rounds, result.trace.len());
        let wire_trace = game
            .meta
            .iter()
            .find(|(k, _)| k == "trace")
            .and_then(|(_, v)| v.as_arr())
            .expect("the trace rides along as span metadata");
        assert_eq!(wire_trace.len(), result.trace.len());
    }

    #[test]
    fn game_trace_uses_original_ids() {
        let g = generators::path(9, Vocabulary::empty());
        let mut s = ForestSplitter;
        let mut c = MaxBallConnector;
        let result = play_game(&g, 2, &mut s, &mut c, 20);
        assert!(result.splitter_won);
        for (pick, radius, answer) in result.trace {
            assert!(pick.index() < 9);
            assert!(answer.index() < 9);
            assert!(radius <= 2);
        }
    }
}
