//! Colour refinement (1-dimensional Weisfeiler–Leman).
//!
//! Iterative colour refinement assigns every vertex a colour that encodes
//! its initial colour plus the *multiset* of neighbour colours, repeated
//! until stabilisation. The classical correspondence (Cai–Fürer–Immerman,
//! Immerman–Lander): two vertices receive the same stable 1-WL colour iff
//! they satisfy the same formulas of the 2-variable counting logic `C²`.
//!
//! In this workspace it serves two roles:
//!
//! * a *scalable* (near-linear) coarse proxy for the counting-type
//!   machinery of `folearn-types` — and a cross-check: the round-`i` WL
//!   partition refines the counting 1-type partition of quantifier rank
//!   `min(i, 1)` for every cap (property-tested);
//! * a practical pre-grouping pass a query-learning system can use before
//!   paying for exact types.

use std::collections::HashMap;

use crate::graph::{Graph, V};

/// The result of colour refinement.
#[derive(Debug, Clone)]
pub struct WlColoring {
    /// Stable colour id per vertex (ids are dense, `0..num_colors`).
    pub colors: Vec<u32>,
    /// Number of distinct colours.
    pub num_colors: usize,
    /// Rounds needed to stabilise.
    pub rounds: usize,
}

impl WlColoring {
    /// Whether two vertices share a colour class.
    pub fn same_class(&self, u: V, v: V) -> bool {
        self.colors[u.index()] == self.colors[v.index()]
    }

    /// The colour classes as vertex lists.
    pub fn classes(&self) -> Vec<Vec<V>> {
        let mut out = vec![Vec::new(); self.num_colors];
        for (i, &c) in self.colors.iter().enumerate() {
            out[c as usize].push(V(i as u32));
        }
        out
    }
}

/// Run colour refinement until stabilisation (or `max_rounds`).
///
/// Initial colours are the vertices' colour bitsets; each round re-colours
/// by `(old colour, sorted multiset of neighbour colours)`.
pub fn color_refinement(g: &Graph, max_rounds: usize) -> WlColoring {
    let n = g.num_vertices();
    // Initial partition by colour words.
    let mut ids: HashMap<Vec<u64>, u32> = HashMap::new();
    let mut colors: Vec<u32> = g
        .vertices()
        .map(|v| {
            let key = g.color_words(v).to_vec();
            let next = ids.len() as u32;
            *ids.entry(key).or_insert(next)
        })
        .collect();
    let mut num_colors = ids.len().max(1);
    let mut rounds = 0usize;
    for _ in 0..max_rounds {
        let mut next_ids: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
        let mut next: Vec<u32> = Vec::with_capacity(n);
        for v in g.vertices() {
            let mut neigh: Vec<u32> = g
                .neighbors(v)
                .iter()
                .map(|&w| colors[w as usize])
                .collect();
            neigh.sort_unstable();
            let key = (colors[v.index()], neigh);
            let fresh = next_ids.len() as u32;
            next.push(*next_ids.entry(key).or_insert(fresh));
        }
        let new_count = next_ids.len();
        rounds += 1;
        let stabilised = new_count == num_colors;
        colors = next;
        num_colors = new_count.max(1);
        if stabilised {
            break;
        }
    }
    WlColoring {
        colors,
        num_colors,
        rounds,
    }
}

/// Run to full stabilisation (at most `n` rounds are ever needed).
pub fn stable_coloring(g: &Graph) -> WlColoring {
    color_refinement(g, g.num_vertices().max(1))
}

#[cfg(test)]
mod tests {
    use crate::generators;
    use crate::vocab::{ColorId, Vocabulary};

    use super::*;

    #[test]
    fn regular_graphs_stay_monochromatic() {
        let g = generators::cycle(8, Vocabulary::empty());
        let wl = stable_coloring(&g);
        assert_eq!(wl.num_colors, 1);
    }

    #[test]
    fn path_classes_are_distance_to_end() {
        // On P_7 the stable classes are symmetric distance-to-endpoint
        // layers: {0,6}, {1,5}, {2,4}, {3}.
        let g = generators::path(7, Vocabulary::empty());
        let wl = stable_coloring(&g);
        assert_eq!(wl.num_colors, 4);
        assert!(wl.same_class(V(0), V(6)));
        assert!(wl.same_class(V(1), V(5)));
        assert!(wl.same_class(V(2), V(4)));
        assert!(!wl.same_class(V(2), V(3)));
    }

    #[test]
    fn initial_colors_are_respected() {
        let g = generators::periodically_colored(
            &generators::cycle(6, Vocabulary::new(["Red"])),
            ColorId(0),
            2,
        );
        let wl = stable_coloring(&g);
        assert!(wl.num_colors >= 2);
        assert!(!wl.same_class(V(0), V(1))); // red vs plain
    }

    #[test]
    fn rounds_are_bounded_by_diameter_scale() {
        let g = generators::path(32, Vocabulary::empty());
        let wl = stable_coloring(&g);
        assert!(wl.rounds <= 17, "rounds = {}", wl.rounds);
        assert_eq!(wl.num_colors, 16);
    }

    #[test]
    fn classes_partition_the_vertices() {
        let g = generators::random_tree(30, Vocabulary::empty(), 3);
        let wl = stable_coloring(&g);
        let total: usize = wl.classes().iter().map(Vec::len).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn one_round_refines_counting_one_types() {
        // After ≥1 round, the WL partition refines the counting 1-type
        // partition at any cap: same WL colour ⇒ same counting 1-type.
        // (The full cross-check against counting types lives in the
        // workspace-level property tests, which can see folearn-types.)
        let g = generators::random_tree(20, Vocabulary::empty(), 9);
        let wl = color_refinement(&g, 1);
        // Degree is determined after one round on uncoloured graphs.
        for u in g.vertices() {
            for v in g.vertices() {
                if wl.same_class(u, v) {
                    assert_eq!(g.degree(u), g.degree(v), "{u} {v}");
                }
            }
        }
    }
}
