//! Immutable coloured graphs in compressed-sparse-row form.

use std::fmt;
use std::sync::Arc;

use crate::vocab::{ColorId, Vocabulary};

/// A vertex handle. Vertices of an `n`-vertex graph are `V(0) … V(n-1)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct V(pub u32);

impl V {
    /// The vertex's index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for V {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An undirected, simple, vertex-coloured graph, stored in CSR form.
///
/// This is the paper's background structure: a relational structure
/// `(V, E, P_1, …, P_c)` with symmetric irreflexive `E` and unary `P_j`.
/// Graphs are immutable after construction (build them with
/// [`crate::GraphBuilder`]); all derived graphs (induced subgraphs,
/// unions, expansions) are produced by the functions in [`crate::ops`].
#[derive(Clone)]
pub struct Graph {
    vocab: Arc<Vocabulary>,
    /// CSR row offsets, length `n + 1`.
    offsets: Vec<u32>,
    /// CSR column indices (sorted within each row), length `2|E|`.
    targets: Vec<u32>,
    /// Per-vertex colour bitsets, `words_per_vertex` words each.
    colors: Vec<u64>,
    words_per_vertex: usize,
}

impl Graph {
    pub(crate) fn from_parts(
        vocab: Arc<Vocabulary>,
        offsets: Vec<u32>,
        targets: Vec<u32>,
        colors: Vec<u64>,
        words_per_vertex: usize,
    ) -> Self {
        debug_assert_eq!(colors.len(), (offsets.len() - 1) * words_per_vertex);
        Self {
            vocab,
            offsets,
            targets,
            colors,
            words_per_vertex,
        }
    }

    /// The graph's vocabulary.
    #[inline]
    pub fn vocab(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    /// Number of vertices (the *order* of the graph).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Iterate over all vertices.
    pub fn vertices(&self) -> impl ExactSizeIterator<Item = V> + Clone {
        (0..self.num_vertices() as u32).map(V)
    }

    /// The sorted neighbour list of `v`.
    #[inline]
    pub fn neighbors(&self, v: V) -> &[u32] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: V) -> usize {
        self.neighbors(v).len()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.vertices().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Whether `{u, v}` is an edge. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: V, v: V) -> bool {
        u != v && self.neighbors(u).binary_search(&v.0).is_ok()
    }

    /// Whether vertex `v` has colour `c`.
    #[inline]
    pub fn has_color(&self, v: V, c: ColorId) -> bool {
        let w = self.colors[v.index() * self.words_per_vertex + c.index() / 64];
        w >> (c.index() % 64) & 1 == 1
    }

    /// The raw colour bitset of `v` (`words_per_vertex` words).
    #[inline]
    pub fn color_words(&self, v: V) -> &[u64] {
        let s = self.words_per_vertex;
        &self.colors[v.index() * s..(v.index() + 1) * s]
    }

    /// Words per per-vertex colour bitset.
    #[inline]
    pub fn words_per_vertex(&self) -> usize {
        self.words_per_vertex
    }

    /// All vertices carrying colour `c`.
    pub fn vertices_with_color(&self, c: ColorId) -> Vec<V> {
        self.vertices().filter(|&v| self.has_color(v, c)).collect()
    }

    /// All edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (V, V)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&w| w > u.0)
                .map(move |&w| (u, V(w)))
        })
    }

    /// Whether `v` is isolated (degree 0).
    #[inline]
    pub fn is_isolated(&self, v: V) -> bool {
        self.degree(v) == 0
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, colours={})",
            self.num_vertices(),
            self.num_edges(),
            self.vocab.num_colors()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::vocab::Vocabulary;

    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(Vocabulary::new(["Red"]));
        let a = b.add_vertex();
        let c = b.add_vertex();
        let d = b.add_vertex();
        b.add_edge(a, c);
        b.add_edge(c, d);
        b.add_edge(d, a);
        b.set_color(a, ColorId(0));
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.max_degree(), 2);
        assert!(g.has_edge(V(0), V(1)));
        assert!(g.has_edge(V(1), V(0)));
        assert!(!g.has_edge(V(0), V(0)));
        assert!(g.has_color(V(0), ColorId(0)));
        assert!(!g.has_color(V(1), ColorId(0)));
        assert_eq!(g.vertices_with_color(ColorId(0)), vec![V(0)]);
    }

    #[test]
    fn edges_listed_once() {
        let g = triangle();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e.len(), 3);
        for (u, v) in e {
            assert!(u < v);
        }
    }

    #[test]
    fn neighbor_lists_sorted() {
        let g = triangle();
        for v in g.vertices() {
            let ns = g.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
