//! Mutable construction of coloured graphs.

use std::sync::Arc;

use crate::graph::{Graph, V};
use crate::vocab::{ColorId, Vocabulary};

/// A mutable graph under construction.
///
/// The builder accepts edges in any order, ignores duplicates and rejects
/// self-loops (the paper's graphs are simple and irreflexive). [`build`]
/// produces an immutable CSR [`Graph`].
///
/// ```
/// use folearn_graph::{GraphBuilder, Vocabulary, ColorId, V};
///
/// let mut b = GraphBuilder::with_vertices(Vocabulary::new(["Red"]), 3);
/// b.add_edge(V(0), V(1));
/// b.add_edge(V(1), V(2));
/// b.set_color(V(0), ColorId(0));
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// assert!(g.has_color(V(0), ColorId(0)));
/// ```
///
/// [`build`]: GraphBuilder::build
pub struct GraphBuilder {
    vocab: Arc<Vocabulary>,
    n: usize,
    edges: Vec<(u32, u32)>,
    colors: Vec<u64>,
    words_per_vertex: usize,
}

impl GraphBuilder {
    /// Start building a graph over the given vocabulary.
    pub fn new(vocab: Vocabulary) -> Self {
        Self::with_shared_vocab(Arc::new(vocab))
    }

    /// Start building a graph that shares an existing vocabulary.
    pub fn with_shared_vocab(vocab: Arc<Vocabulary>) -> Self {
        let words_per_vertex = vocab.words_per_vertex();
        Self {
            vocab,
            n: 0,
            edges: Vec::new(),
            colors: Vec::new(),
            words_per_vertex,
        }
    }

    /// Convenience: a builder with `n` vertices already added.
    pub fn with_vertices(vocab: Vocabulary, n: usize) -> Self {
        let mut b = Self::new(vocab);
        b.add_vertices(n);
        b
    }

    /// The vocabulary being built against.
    pub fn vocab(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Add a single vertex and return its handle.
    pub fn add_vertex(&mut self) -> V {
        let v = V(u32::try_from(self.n).expect("too many vertices"));
        self.n += 1;
        self.colors.extend(std::iter::repeat_n(0, self.words_per_vertex));
        v
    }

    /// Add `count` vertices; returns the first new handle.
    pub fn add_vertices(&mut self, count: usize) -> V {
        let first = V(u32::try_from(self.n).expect("too many vertices"));
        self.n += count;
        self.colors
            .extend(std::iter::repeat_n(0, self.words_per_vertex * count));
        first
    }

    /// Add the undirected edge `{u, v}`.
    ///
    /// # Panics
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: V, v: V) {
        assert!(u != v, "self-loops are not allowed (E is irreflexive)");
        assert!(
            u.index() < self.n && v.index() < self.n,
            "edge endpoint out of range"
        );
        self.edges.push((u.0, v.0));
    }

    /// Give vertex `v` colour `c`.
    ///
    /// # Panics
    /// Panics if `v` or `c` is out of range.
    pub fn set_color(&mut self, v: V, c: ColorId) {
        assert!(v.index() < self.n, "vertex out of range");
        assert!(c.index() < self.vocab.num_colors(), "colour out of range");
        self.colors[v.index() * self.words_per_vertex + c.index() / 64] |=
            1u64 << (c.index() % 64);
    }

    /// Overwrite the raw colour words of `v` (used by graph surgery in
    /// [`crate::ops`]; word layout must match the vocabulary).
    pub fn set_color_words(&mut self, v: V, words: &[u64]) {
        assert_eq!(words.len(), self.words_per_vertex);
        let s = self.words_per_vertex;
        self.colors[v.index() * s..(v.index() + 1) * s].copy_from_slice(words);
    }

    /// Finish: sort and deduplicate adjacency, produce the CSR graph.
    pub fn build(self) -> Graph {
        let n = self.n;
        let mut deg = vec![0u32; n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut acc = 0u32;
        for &d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut targets = vec![0u32; acc as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(u, v) in &self.edges {
            targets[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Sort and deduplicate each row; rebuild offsets if dedup removed entries.
        let mut new_targets = Vec::with_capacity(targets.len());
        let mut new_offsets = Vec::with_capacity(n + 1);
        new_offsets.push(0u32);
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            let row = &mut targets[lo..hi];
            row.sort_unstable();
            let start = new_targets.len();
            for &t in row.iter() {
                if new_targets.len() == start || *new_targets.last().unwrap() != t {
                    new_targets.push(t);
                }
            }
            new_offsets.push(new_targets.len() as u32);
        }
        Graph::from_parts(
            self.vocab,
            new_offsets,
            new_targets,
            self.colors,
            self.words_per_vertex,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_edges_collapse() {
        let mut b = GraphBuilder::with_vertices(Vocabulary::empty(), 2);
        b.add_edge(V(0), V(1));
        b.add_edge(V(1), V(0));
        b.add_edge(V(0), V(1));
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(V(0)), &[1]);
        assert_eq!(g.neighbors(V(1)), &[0]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut b = GraphBuilder::with_vertices(Vocabulary::empty(), 1);
        b.add_edge(V(0), V(0));
    }

    #[test]
    fn colors_across_word_boundary() {
        let vocab = Vocabulary::new((0..70).map(|i| format!("C{i}")));
        let mut b = GraphBuilder::with_vertices(vocab, 1);
        b.set_color(V(0), ColorId(3));
        b.set_color(V(0), ColorId(69));
        let g = b.build();
        assert!(g.has_color(V(0), ColorId(3)));
        assert!(g.has_color(V(0), ColorId(69)));
        assert!(!g.has_color(V(0), ColorId(68)));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(Vocabulary::empty()).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn add_vertices_bulk() {
        let mut b = GraphBuilder::new(Vocabulary::empty());
        let first = b.add_vertices(5);
        assert_eq!(first, V(0));
        assert_eq!(b.num_vertices(), 5);
        let g = b.build();
        assert_eq!(g.num_vertices(), 5);
    }
}
