//! Graph surgery: induced subgraphs, disjoint unions, colour expansions.
//!
//! These are the graph-level operations the paper's proofs perform:
//!
//! * `G[S]` induced subgraphs (neighbourhood graphs `𝒩_r^G(v̄)`, Lemma 16's
//!   `G^{i+1}`),
//! * disjoint unions (`Ĝ` = `2ℓ` copies of `G` in the generalised Claim 8),
//! * colour expansions `τ ⊆ τ'` (the `P_t, Q_t` relations of Lemma 7, the
//!   `A/B/C/D` colours of Lemma 16),
//! * deletion of edges incident to chosen vertices (step 3 of Lemma 16's
//!   construction, which isolates the Splitter answers `w_j`).

use std::collections::HashMap;
use std::sync::Arc;

use crate::builder::GraphBuilder;
use crate::graph::{Graph, V};
use crate::vocab::Vocabulary;

/// An induced subgraph `G[S]` together with the vertex correspondence.
pub struct InducedSubgraph {
    /// The induced graph; vertex `V(i)` corresponds to `to_old[i]` in the
    /// original graph.
    pub graph: Graph,
    /// New-vertex → old-vertex map.
    pub to_old: Vec<V>,
    /// Old-vertex → new-vertex map (`u32::MAX` = not in `S`).
    from_old: Vec<u32>,
}

impl InducedSubgraph {
    /// Map an original vertex into the subgraph, if present.
    #[inline]
    pub fn to_new(&self, old: V) -> Option<V> {
        let x = self.from_old[old.index()];
        (x != u32::MAX).then_some(V(x))
    }

    /// Map a tuple of original vertices; `None` if any is missing.
    pub fn map_tuple(&self, tuple: &[V]) -> Option<Vec<V>> {
        tuple.iter().map(|&v| self.to_new(v)).collect()
    }
}

/// Build `G[S]`. `S` may be in any order and may contain duplicates
/// (duplicates are ignored); vertex order in the result follows first
/// occurrence in `S`.
pub fn induced_subgraph(g: &Graph, s: &[V]) -> InducedSubgraph {
    let mut from_old = vec![u32::MAX; g.num_vertices()];
    let mut to_old = Vec::with_capacity(s.len());
    for &v in s {
        if from_old[v.index()] == u32::MAX {
            from_old[v.index()] = to_old.len() as u32;
            to_old.push(v);
        }
    }
    let mut b = GraphBuilder::with_shared_vocab(Arc::clone(g.vocab()));
    for &old in &to_old {
        let nv = b.add_vertex();
        b.set_color_words(nv, g.color_words(old));
    }
    for (new_idx, &old) in to_old.iter().enumerate() {
        for &w in g.neighbors(old) {
            let nw = from_old[w as usize];
            if nw != u32::MAX && (nw as usize) > new_idx {
                b.add_edge(V(new_idx as u32), V(nw));
            }
        }
    }
    InducedSubgraph {
        graph: b.build(),
        to_old,
        from_old,
    }
}

/// Disjoint union of `copies` graphs over the same vocabulary.
///
/// Returns the union and the vertex-offset of each part: vertex `v` of part
/// `i` becomes `V(offsets[i] + v.0)`.
///
/// # Panics
/// Panics if the vocabularies differ.
pub fn disjoint_union(parts: &[&Graph]) -> (Graph, Vec<u32>) {
    assert!(!parts.is_empty(), "disjoint union of zero graphs");
    let vocab = Arc::clone(parts[0].vocab());
    for p in parts {
        assert_eq!(
            p.vocab().as_ref(),
            vocab.as_ref(),
            "disjoint union requires identical vocabularies"
        );
    }
    let mut b = GraphBuilder::with_shared_vocab(vocab);
    let mut offsets = Vec::with_capacity(parts.len());
    for p in parts {
        let off = b.num_vertices() as u32;
        offsets.push(off);
        for v in p.vertices() {
            let nv = b.add_vertex();
            b.set_color_words(nv, p.color_words(v));
        }
        for (u, v) in p.edges() {
            b.add_edge(V(off + u.0), V(off + v.0));
        }
    }
    (b.build(), offsets)
}

/// `n` disjoint copies of `g`; returns the union and per-copy offsets.
pub fn disjoint_copies(g: &Graph, n: usize) -> (Graph, Vec<u32>) {
    let parts: Vec<&Graph> = std::iter::repeat_n(g, n).collect();
    disjoint_union(&parts)
}

/// A colour expansion: the same graph over `τ' ⊇ τ`, where each entry of
/// `new_colors` is a fresh colour name together with the vertices carrying
/// it.
///
/// # Panics
/// Panics if a name already exists in the vocabulary.
pub fn expand_colors(g: &Graph, new_colors: &[(&str, Vec<V>)]) -> Graph {
    let mut vocab = g.vocab().as_ref().clone();
    let ids: Vec<_> = new_colors
        .iter()
        .map(|(name, _)| vocab.add_color(name))
        .collect();
    let vocab = Arc::new(vocab);
    let mut b = GraphBuilder::with_shared_vocab(Arc::clone(&vocab));
    let new_words = vocab.words_per_vertex();
    let old_words = g.words_per_vertex();
    for v in g.vertices() {
        let nv = b.add_vertex();
        let mut words = vec![0u64; new_words];
        words[..old_words].copy_from_slice(g.color_words(v));
        b.set_color_words(nv, &words);
    }
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    for ((_, verts), &id) in new_colors.iter().zip(&ids) {
        for &v in verts {
            b.set_color(v, id);
        }
    }
    b.build()
}

/// Reinterpret `g` over an extended vocabulary `target ⊇ g.vocab()`, with
/// the new colours empty. Needed to compare graphs built at different
/// expansion stages.
///
/// # Panics
/// Panics if `g.vocab()` is not a prefix of `target`.
pub fn pad_vocabulary(g: &Graph, target: &Arc<Vocabulary>) -> Graph {
    assert!(
        g.vocab().is_prefix_of(target),
        "target vocabulary must extend the graph's vocabulary"
    );
    let mut b = GraphBuilder::with_shared_vocab(Arc::clone(target));
    let new_words = target.words_per_vertex();
    let old_words = g.words_per_vertex();
    for v in g.vertices() {
        let nv = b.add_vertex();
        let mut words = vec![0u64; new_words];
        words[..old_words].copy_from_slice(g.color_words(v));
        b.set_color_words(nv, &words);
    }
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    b.build()
}

/// A copy of `g` with every edge incident to a vertex of `isolate` removed
/// (the vertices stay, now isolated) — step 3 of Lemma 16's construction.
pub fn delete_incident_edges(g: &Graph, isolate: &[V]) -> Graph {
    let mut is_cut = vec![false; g.num_vertices()];
    for &v in isolate {
        is_cut[v.index()] = true;
    }
    let mut b = GraphBuilder::with_shared_vocab(Arc::clone(g.vocab()));
    for v in g.vertices() {
        let nv = b.add_vertex();
        b.set_color_words(nv, g.color_words(v));
    }
    for (u, v) in g.edges() {
        if !is_cut[u.index()] && !is_cut[v.index()] {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Append `count` fresh isolated colourless vertices; returns the new graph
/// and the handle of the first appended vertex.
pub fn add_isolated_vertices(g: &Graph, count: usize) -> (Graph, V) {
    let mut b = GraphBuilder::with_shared_vocab(Arc::clone(g.vocab()));
    for v in g.vertices() {
        let nv = b.add_vertex();
        b.set_color_words(nv, g.color_words(v));
    }
    let first = b.add_vertices(count);
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    (b.build(), first)
}

/// Check structural equality of two graphs over the same vocabulary
/// (identical vertex sets, edges and colours — not isomorphism).
pub fn graphs_equal(a: &Graph, b: &Graph) -> bool {
    if a.vocab().as_ref() != b.vocab().as_ref() || a.num_vertices() != b.num_vertices() {
        return false;
    }
    a.vertices().all(|v| {
        a.neighbors(v) == b.neighbors(v) && a.color_words(v) == b.color_words(v)
    })
}

/// A renaming of vertices given by an explicit bijection; used by
/// isomorphism-invariance property tests.
pub fn permute(g: &Graph, perm: &[V]) -> Graph {
    assert_eq!(perm.len(), g.num_vertices());
    let mut b = GraphBuilder::with_shared_vocab(Arc::clone(g.vocab()));
    let mut inv: HashMap<V, V> = HashMap::with_capacity(perm.len());
    for (i, &p) in perm.iter().enumerate() {
        inv.insert(p, V(i as u32));
    }
    assert_eq!(inv.len(), perm.len(), "permutation must be a bijection");
    for &p in perm {
        // New vertex i holds the data of old vertex perm[i].
        let nv = b.add_vertex();
        b.set_color_words(nv, g.color_words(p));
    }
    for (u, v) in g.edges() {
        b.add_edge(inv[&u], inv[&v]);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use crate::generators;

    use super::*;

    #[test]
    fn induced_subgraph_keeps_structure() {
        let g = generators::path(5, Vocabulary::new(["A"]));
        let sub = induced_subgraph(&g, &[V(1), V(2), V(4)]);
        assert_eq!(sub.graph.num_vertices(), 3);
        assert_eq!(sub.graph.num_edges(), 1); // only 1-2 survives
        assert_eq!(sub.to_new(V(2)), Some(V(1)));
        assert_eq!(sub.to_new(V(0)), None);
        assert_eq!(sub.map_tuple(&[V(1), V(4)]), Some(vec![V(0), V(2)]));
        assert_eq!(sub.map_tuple(&[V(0)]), None);
    }

    #[test]
    fn induced_subgraph_dedups() {
        let g = generators::path(3, Vocabulary::empty());
        let sub = induced_subgraph(&g, &[V(1), V(1), V(0)]);
        assert_eq!(sub.graph.num_vertices(), 2);
        assert_eq!(sub.to_old, vec![V(1), V(0)]);
    }

    #[test]
    fn union_offsets() {
        let g = generators::path(3, Vocabulary::empty());
        let (u, off) = disjoint_copies(&g, 3);
        assert_eq!(u.num_vertices(), 9);
        assert_eq!(u.num_edges(), 6);
        assert_eq!(off, vec![0, 3, 6]);
        assert!(u.has_edge(V(3), V(4)));
        assert!(!u.has_edge(V(2), V(3)));
    }

    #[test]
    fn expansion_adds_colors() {
        let g = generators::path(3, Vocabulary::empty());
        let g2 = expand_colors(&g, &[("Mark", vec![V(1)])]);
        let c = g2.vocab().color_by_name("Mark").unwrap();
        assert!(g2.has_color(V(1), c));
        assert!(!g2.has_color(V(0), c));
        assert_eq!(g2.num_edges(), g.num_edges());
    }

    #[test]
    fn pad_keeps_old_colors() {
        let g = generators::path(2, Vocabulary::new(["A"]));
        let g1 = expand_colors(&g, &[("B", vec![])]);
        let padded = pad_vocabulary(&g, g1.vocab());
        assert!(graphs_equal(&padded, &g1));
    }

    #[test]
    fn isolation_removes_edges() {
        let g = generators::path(4, Vocabulary::empty());
        let g2 = delete_incident_edges(&g, &[V(1)]);
        assert_eq!(g2.num_vertices(), 4);
        assert_eq!(g2.num_edges(), 1); // only 2-3 survives
        assert!(g2.is_isolated(V(1)));
    }

    #[test]
    fn add_isolated() {
        let g = generators::path(2, Vocabulary::empty());
        let (g2, first) = add_isolated_vertices(&g, 3);
        assert_eq!(first, V(2));
        assert_eq!(g2.num_vertices(), 5);
        assert!(g2.is_isolated(V(4)));
        assert!(g2.has_edge(V(0), V(1)));
    }

    #[test]
    fn permutation_preserves_counts() {
        let g = generators::cycle(5, Vocabulary::empty());
        let p = permute(&g, &[V(4), V(3), V(2), V(1), V(0)]);
        assert_eq!(p.num_edges(), g.num_edges());
        assert!(p.has_edge(V(0), V(1)));
    }
}
