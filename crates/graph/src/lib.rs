//! Coloured-graph substrate for the `folearn` workspace.
//!
//! The paper ("On the Parameterized Complexity of Learning First-Order
//! Logic", van Bergerem–Grohe–Ritzert, PODS 2022) states all results for
//! undirected, simple, vertex-coloured graphs, viewed as relational
//! structures `G = (V(G), E(G), P_1(G), …, P_c(G))` over a vocabulary
//! `τ = {E, P_1, …, P_c}` with `E` binary (symmetric, irreflexive) and the
//! `P_j` unary. This crate provides exactly that structure, together with
//! every graph-level operation the paper's constructions need:
//!
//! * immutable CSR-backed [`Graph`]s with per-vertex colour bitsets and a
//!   shared [`Vocabulary`] ([`graph`], [`vocab`]);
//! * a mutable [`GraphBuilder`] ([`builder`]);
//! * induced subgraphs, disjoint unions (Lemma 7's `2ℓ` copies trick),
//!   colour expansions, and edge surgery (Lemma 16's construction)
//!   ([`ops`]);
//! * BFS distances, `r`-balls of vertices / tuples / sets, and connected
//!   components ([`bfs`]);
//! * deterministic and seeded workload generators ([`generators`]);
//! * the splitter game of Grohe–Kreutzer–Siebertz (the paper's Fact 4),
//!   including the modified radius-shrinking variant, with provably winning
//!   Splitter strategies for forests, bounded treedepth and bounded degree,
//!   plus adversarial Connector strategies ([`splitter`]);
//! * weak colouring numbers, the order-based certificate of
//!   nowhere-denseness ([`wcol`]);
//! * 1-WL colour refinement, the near-linear proxy for counting types
//!   ([`wl`]).

pub mod bfs;
pub mod builder;
pub mod generators;
pub mod io;
pub mod graph;
pub mod ops;
pub mod splitter;
pub mod vocab;
pub mod wcol;
pub mod wl;

pub use builder::GraphBuilder;
pub use graph::{Graph, V};
pub use vocab::{ColorId, Vocabulary};
