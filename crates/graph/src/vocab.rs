//! Vocabularies of coloured graphs.
//!
//! A vocabulary `τ = {E, P_1, …, P_c}` is identified with its ordered list
//! of unary colour symbols; the binary edge symbol `E` is implicit. The
//! paper's constructions repeatedly *expand* vocabularies with fresh colours
//! (the `P_t, Q_t` relations of Lemma 7, the `A/B/C/D` colours of Lemma 16),
//! so vocabularies support cheap extension while keeping colour identities
//! stable: a [`ColorId`] minted for a colour of `τ` denotes the same colour
//! in every `τ' ⊇ τ` expansion.

use std::fmt;
use std::sync::Arc;

/// Index of a unary colour symbol within a [`Vocabulary`].
///
/// Colour ids are stable under vocabulary expansion: expansions only append.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ColorId(pub u16);

impl ColorId {
    /// The colour's position in the vocabulary's colour list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ColorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// An ordered set of unary colour symbols (the vocabulary `τ` minus the
/// implicit edge relation).
///
/// Vocabularies are cheaply clonable and shared between graphs, formulas and
/// type arenas via [`Arc`]; two graphs are *compatible* (comparable by
/// formulas and types) when their vocabularies agree as lists.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Vocabulary {
    names: Vec<Arc<str>>,
}

impl Vocabulary {
    /// The empty vocabulary (plain graphs, no colours).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A vocabulary with the given colour names, in order.
    ///
    /// # Panics
    /// Panics if two names coincide or more than `u16::MAX` colours are given.
    pub fn new<S: AsRef<str>>(names: impl IntoIterator<Item = S>) -> Self {
        let mut v = Self::empty();
        for n in names {
            v.add_color(n.as_ref());
        }
        v
    }

    /// Number of colour symbols.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.names.len()
    }

    /// Number of 64-bit words needed for a per-vertex colour bitset.
    #[inline]
    pub fn words_per_vertex(&self) -> usize {
        self.names.len().div_ceil(64).max(1)
    }

    /// Name of a colour.
    ///
    /// # Panics
    /// Panics if `c` is out of range.
    pub fn color_name(&self, c: ColorId) -> &str {
        &self.names[c.index()]
    }

    /// Look up a colour by name.
    pub fn color_by_name(&self, name: &str) -> Option<ColorId> {
        self.names
            .iter()
            .position(|n| &**n == name)
            .map(|i| ColorId(i as u16))
    }

    /// Append a fresh colour and return its id.
    ///
    /// # Panics
    /// Panics on a duplicate name or on overflowing the `u16` id space.
    pub fn add_color(&mut self, name: &str) -> ColorId {
        assert!(
            self.color_by_name(name).is_none(),
            "duplicate colour name {name:?}"
        );
        let id = u16::try_from(self.names.len()).expect("too many colours");
        self.names.push(Arc::from(name));
        ColorId(id)
    }

    /// Iterate over `(id, name)` pairs.
    pub fn colors(&self) -> impl Iterator<Item = (ColorId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ColorId(i as u16), &**n))
    }

    /// Whether `self` is a prefix of `other`, i.e. `other` is a colour
    /// expansion of `self` in the paper's sense (same colours, possibly
    /// more appended).
    pub fn is_prefix_of(&self, other: &Vocabulary) -> bool {
        self.names.len() <= other.names.len()
            && self.names.iter().zip(&other.names).all(|(a, b)| a == b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut v = Vocabulary::empty();
        let red = v.add_color("Red");
        let blue = v.add_color("Blue");
        assert_eq!(v.num_colors(), 2);
        assert_eq!(v.color_name(red), "Red");
        assert_eq!(v.color_by_name("Blue"), Some(blue));
        assert_eq!(v.color_by_name("Green"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate colour")]
    fn duplicate_name_panics() {
        let mut v = Vocabulary::empty();
        v.add_color("Red");
        v.add_color("Red");
    }

    #[test]
    fn prefix_expansion() {
        let base = Vocabulary::new(["A", "B"]);
        let mut ext = base.clone();
        ext.add_color("C");
        assert!(base.is_prefix_of(&ext));
        assert!(!ext.is_prefix_of(&base));
        assert!(base.is_prefix_of(&base));
    }

    #[test]
    fn words_per_vertex_rounds_up() {
        assert_eq!(Vocabulary::empty().words_per_vertex(), 1);
        let v = Vocabulary::new((0..65).map(|i| format!("C{i}")));
        assert_eq!(v.words_per_vertex(), 2);
    }

    #[test]
    fn colors_iterates_in_order() {
        let v = Vocabulary::new(["X", "Y"]);
        let got: Vec<_> = v.colors().map(|(c, n)| (c.0, n.to_string())).collect();
        assert_eq!(got, vec![(0, "X".into()), (1, "Y".into())]);
    }
}
