//! Plain-text graph I/O: a line-oriented exchange format and Graphviz DOT
//! export.
//!
//! The exchange format (one directive per line, `#` comments):
//!
//! ```text
//! colors Red Blue        # vocabulary, in order (optional)
//! vertices 5
//! edge 0 1
//! edge 1 2
//! color 0 Red
//! ```

use std::fmt::Write as _;

use crate::builder::GraphBuilder;
use crate::graph::{Graph, V};
use crate::vocab::Vocabulary;

/// Errors from [`parse_graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphParseError {
    /// 1-based line number.
    pub line: usize,
    /// Message.
    pub message: String,
}

impl std::fmt::Display for GraphParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for GraphParseError {}

/// Parse the exchange format.
pub fn parse_graph(text: &str) -> Result<Graph, GraphParseError> {
    let mut vocab = Vocabulary::empty();
    let mut builder: Option<GraphBuilder> = None;
    let mut pending: Vec<(usize, String)> = Vec::new();
    let err = |line: usize, message: &str| GraphParseError {
        line,
        message: message.to_string(),
    };
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let directive = parts.next().unwrap();
        match directive {
            "colors" => {
                if builder.is_some() {
                    return Err(err(line_no, "'colors' must precede 'vertices'"));
                }
                for name in parts {
                    vocab.add_color(name);
                }
            }
            "vertices" => {
                if builder.is_some() {
                    return Err(err(line_no, "duplicate 'vertices' directive"));
                }
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "expected a vertex count"))?;
                builder = Some(GraphBuilder::with_vertices(vocab.clone(), n));
            }
            "edge" | "color" => {
                pending.push((line_no, line.to_string()));
            }
            other => {
                return Err(err(line_no, &format!("unknown directive {other:?}")));
            }
        }
    }
    let mut b = builder.ok_or_else(|| err(0, "missing 'vertices' directive"))?;
    let n = b.num_vertices();
    for (line_no, line) in pending {
        let mut parts = line.split_whitespace();
        let directive = parts.next().unwrap();
        if directive == "edge" {
            let u: u32 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(line_no, "bad edge endpoint"))?;
            let v: u32 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(line_no, "bad edge endpoint"))?;
            if u as usize >= n || v as usize >= n || u == v {
                return Err(err(line_no, "edge endpoint out of range or a loop"));
            }
            b.add_edge(V(u), V(v));
        } else {
            let v: u32 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(line_no, "bad vertex in colour directive"))?;
            let name = parts
                .next()
                .ok_or_else(|| err(line_no, "missing colour name"))?;
            let c = b
                .vocab()
                .color_by_name(name)
                .ok_or_else(|| err(line_no, &format!("unknown colour {name:?}")))?;
            if v as usize >= n {
                return Err(err(line_no, "vertex out of range"));
            }
            b.set_color(V(v), c);
        }
    }
    Ok(b.build())
}

/// Serialise to the exchange format (round-trips through [`parse_graph`]).
pub fn to_text(g: &Graph) -> String {
    let mut out = String::new();
    if g.vocab().num_colors() > 0 {
        out.push_str("colors");
        for (_, name) in g.vocab().colors() {
            let _ = write!(out, " {name}");
        }
        out.push('\n');
    }
    let _ = writeln!(out, "vertices {}", g.num_vertices());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "edge {} {}", u.0, v.0);
    }
    for v in g.vertices() {
        for (c, name) in g.vocab().colors() {
            if g.has_color(v, c) {
                let _ = writeln!(out, "color {} {}", v.0, name);
            }
        }
    }
    out
}

/// Graphviz DOT export; colours become node labels.
pub fn to_dot(g: &Graph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    for v in g.vertices() {
        let colors: Vec<&str> = g
            .vocab()
            .colors()
            .filter(|&(c, _)| g.has_color(v, c))
            .map(|(_, n)| n)
            .collect();
        if colors.is_empty() {
            let _ = writeln!(out, "  v{};", v.0);
        } else {
            let _ = writeln!(out, "  v{} [label=\"v{}: {}\"];", v.0, v.0, colors.join(","));
        }
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  v{} -- v{};", u.0, v.0);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use crate::generators;
    use crate::ops::graphs_equal;
    use crate::vocab::ColorId;

    use super::*;

    #[test]
    fn round_trip() {
        let g = generators::periodically_colored(
            &generators::path(6, Vocabulary::new(["Red", "Blue"])),
            ColorId(0),
            2,
        );
        let text = to_text(&g);
        let parsed = parse_graph(&text).unwrap();
        assert!(graphs_equal(&g, &parsed));
    }

    #[test]
    fn parses_hand_written_input() {
        let g = parse_graph(
            "# a toy graph\ncolors Red\nvertices 3\nedge 0 1\nedge 1 2\ncolor 2 Red\n",
        )
        .unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_color(V(2), ColorId(0)));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_graph("vertices 2\nedge 0 5\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_graph("vertices 2\ncolor 0 Green\n").unwrap_err();
        assert!(e.message.contains("Green"));
        assert!(parse_graph("edge 0 1\n").is_err() || parse_graph("").is_err());
    }

    #[test]
    fn dot_mentions_every_vertex_and_edge() {
        let g = generators::cycle(4, Vocabulary::empty());
        let dot = to_dot(&g, "c4");
        assert!(dot.contains("graph c4"));
        assert!(dot.contains("v0 -- v1"));
        assert_eq!(dot.matches("--").count(), 4);
    }

    /// parse(serialize(parse(serialize(g)))) over every generator family:
    /// serialisation must be a faithful and *stable* image of the graph.
    #[test]
    fn generator_zoo_round_trips() {
        let vocab = || Vocabulary::new(["Red", "Blue", "Green"]);
        let zoo: Vec<(&str, Graph)> = vec![
            ("path", generators::path(9, vocab())),
            ("cycle", generators::cycle(7, vocab())),
            ("clique", generators::clique(5, vocab())),
            ("star", generators::star(6, vocab())),
            ("grid", generators::grid(3, 4, vocab())),
            ("binary_tree", generators::binary_tree(3, vocab())),
            ("random_tree", generators::random_tree(12, vocab(), 5)),
            ("caterpillar", generators::caterpillar(4, 2, vocab())),
            (
                "bounded_degree_random",
                generators::bounded_degree_random(14, 3, 0.7, vocab(), 9),
            ),
            ("gnp", generators::gnp(10, 0.4, vocab(), 3)),
            (
                "randomly_colored",
                generators::randomly_colored(&generators::gnp(10, 0.3, vocab(), 4), 0.5, 8),
            ),
            (
                "periodically_colored",
                generators::periodically_colored(
                    &generators::cycle(9, vocab()),
                    ColorId(2),
                    3,
                ),
            ),
            ("empty_vocab", generators::path(5, Vocabulary::empty())),
            ("single_vertex", generators::path(1, vocab())),
        ];
        for (name, g) in zoo {
            let text = to_text(&g);
            let parsed = parse_graph(&text)
                .unwrap_or_else(|e| panic!("{name}: serialized text rejected: {e}"));
            assert!(graphs_equal(&g, &parsed), "{name}: parse∘serialize ≠ id");
            // Serialisation is canonical: a second trip is textually stable.
            assert_eq!(text, to_text(&parsed), "{name}: serialisation unstable");
        }
    }
}
