//! Formula surgeries used inside the paper's proofs.
//!
//! * [`specialize_var`] — Lemma 7's `ψ_t` construction: eliminate a free
//!   variable `x` in favour of fresh unary relations `P_t` (marking `t`)
//!   and `Q_t` (marking `N(t)`), replacing `x = y ↦ P_t(y)` and
//!   `E(x, y) ↦ Q_t(y)`.
//! * [`erase_colors`] — the final step of the generalised Claim 8:
//!   replace colour atoms `P_i(z)` by `⊥` to return to the original
//!   vocabulary.
//! * [`dist_at_most`] — `dist(x, y) ≤ r` as a formula of quantifier rank
//!   `⌈log₂ r⌉` via the doubling trick, the reason Theorem 13's output
//!   quantifier rank is `q* + log R`.
//! * [`localize`] — relativise every quantifier to the `r`-ball of a free
//!   variable, producing an `r`-local formula (quantifier rank grows by
//!   `O(log r)`), as in the generalised Claim 8.
//! * [`bind_params_with_colors`] — Algorithm 2's `φ_i`: existentially
//!   re-bind designated parameter variables, guarded by singleton colours.
//! * [`simplify`] — bottom-up boolean simplification.

use std::collections::BTreeSet;

use folearn_graph::ColorId;

use crate::formula::{Formula, Var};

/// Eliminate the free variable `x`, given that it denotes a fixed vertex
/// `t` marked by colour `p_t` with neighbourhood marked by `q_t`
/// (Lemma 7's construction of `ψ_t` from `ψ(x)`).
///
/// Replacements on *free* occurrences of `x`:
/// `x = x ↦ ⊤`, `x = y / y = x ↦ P_t(y)`, `E(x, x) ↦ ⊥`,
/// `E(x, y) / E(y, x) ↦ Q_t(y)`, and `C(x) ↦ colors_at_t(C)` (the paper
/// assumes w.l.o.g. no atoms `x = x` / `E(x, x)`; we handle them anyway).
pub fn specialize_var(
    phi: &Formula,
    x: Var,
    p_t: ColorId,
    q_t: ColorId,
    colors_at_t: &dyn Fn(ColorId) -> bool,
) -> Formula {
    fn go(
        phi: &Formula,
        x: Var,
        p_t: ColorId,
        q_t: ColorId,
        colors_at_t: &dyn Fn(ColorId) -> bool,
        shadowed: bool,
    ) -> Formula {
        if shadowed {
            return phi.clone();
        }
        match phi {
            Formula::Eq(a, b) if *a == x && *b == x => Formula::TRUE,
            Formula::Eq(a, b) if *a == x => Formula::Color(p_t, *b),
            Formula::Eq(a, b) if *b == x => Formula::Color(p_t, *a),
            Formula::Edge(a, b) if *a == x && *b == x => Formula::FALSE,
            Formula::Edge(a, b) if *a == x => Formula::Color(q_t, *b),
            Formula::Edge(a, b) if *b == x => Formula::Color(q_t, *a),
            Formula::Color(c, v) if *v == x => Formula::Bool(colors_at_t(*c)),
            Formula::Bool(_) | Formula::Eq(..) | Formula::Edge(..) | Formula::Color(..) => {
                phi.clone()
            }
            Formula::Not(f) => go(f, x, p_t, q_t, colors_at_t, false).not(),
            Formula::And(fs) => Formula::and(
                fs.iter()
                    .map(|f| go(f, x, p_t, q_t, colors_at_t, false)),
            ),
            Formula::Or(fs) => Formula::or(
                fs.iter()
                    .map(|f| go(f, x, p_t, q_t, colors_at_t, false)),
            ),
            Formula::Exists(v, f) => Formula::exists(
                *v,
                go(f, x, p_t, q_t, colors_at_t, *v == x),
            ),
            Formula::Forall(v, f) => Formula::forall(
                *v,
                go(f, x, p_t, q_t, colors_at_t, *v == x),
            ),
            Formula::CountingExists(t, v, f) => Formula::counting_exists(
                *t,
                *v,
                go(f, x, p_t, q_t, colors_at_t, *v == x),
            ),
        }
    }
    go(phi, x, p_t, q_t, colors_at_t, false)
}

/// Replace every atom `C(z)` with `⊥` for each colour `C` in `colors`
/// (the `φ'''` step of the generalised Claim 8: drop marker colours once
/// locality guarantees they cannot occur).
pub fn erase_colors(phi: &Formula, colors: &BTreeSet<ColorId>) -> Formula {
    match phi {
        Formula::Color(c, _) if colors.contains(c) => Formula::FALSE,
        Formula::Bool(_) | Formula::Eq(..) | Formula::Edge(..) | Formula::Color(..) => {
            phi.clone()
        }
        Formula::Not(f) => erase_colors(f, colors).not(),
        Formula::And(fs) => Formula::and(fs.iter().map(|f| erase_colors(f, colors))),
        Formula::Or(fs) => Formula::or(fs.iter().map(|f| erase_colors(f, colors))),
        Formula::Exists(v, f) => Formula::exists(*v, erase_colors(f, colors)),
        Formula::Forall(v, f) => Formula::forall(*v, erase_colors(f, colors)),
        Formula::CountingExists(t, v, f) => {
            Formula::counting_exists(*t, *v, erase_colors(f, colors))
        }
    }
}

/// `dist(a, b) ≤ r` as a formula of quantifier rank `⌈log₂ r⌉` (0 for
/// `r ≤ 1`), using midpoint doubling. Auxiliary variables are drawn from
/// `fresh_base, fresh_base + 1, …`; the caller must pick `fresh_base`
/// above every variable in scope.
pub fn dist_at_most(a: Var, b: Var, r: usize, fresh_base: Var) -> Formula {
    match r {
        0 => Formula::Eq(a, b),
        1 => Formula::or([Formula::Eq(a, b), Formula::Edge(a, b)]),
        _ => {
            let half = r.div_ceil(2);
            let z = fresh_base;
            Formula::exists(
                z,
                Formula::and([
                    dist_at_most(a, z, half, fresh_base + 1),
                    dist_at_most(z, b, r - half, fresh_base + 1),
                ]),
            )
        }
    }
}

/// Relativise every quantifier of `φ` to the `r`-ball of the free variable
/// `center`: `∃y ψ ↦ ∃y (dist(y, center) ≤ r ∧ ψ)` and
/// `∀y ψ ↦ ∀y (dist(y, center) ≤ r → ψ)`.
///
/// The result is an `r`-local formula around `center` whenever every free
/// variable of `φ` is `center` itself; its quantifier rank is
/// `qr(φ) + ⌈log₂ r⌉`.
///
/// # Panics
/// Panics if `center` is quantified inside `φ` (the ball's centre must
/// stay fixed).
pub fn localize(phi: &Formula, center: Var, r: usize) -> Formula {
    let fresh_base = phi
        .max_var()
        .map_or(center, |m| m.max(center))
        .checked_add(1)
        .expect("variable space exhausted");
    fn go(phi: &Formula, center: Var, r: usize, fresh: Var) -> Formula {
        match phi {
            Formula::Bool(_) | Formula::Eq(..) | Formula::Edge(..) | Formula::Color(..) => {
                phi.clone()
            }
            Formula::Not(f) => go(f, center, r, fresh).not(),
            Formula::And(fs) => Formula::and(fs.iter().map(|f| go(f, center, r, fresh))),
            Formula::Or(fs) => Formula::or(fs.iter().map(|f| go(f, center, r, fresh))),
            Formula::Exists(v, f) => {
                assert!(*v != center, "cannot localize around a bound variable");
                let guard = dist_at_most(*v, center, r, fresh);
                Formula::exists(*v, Formula::and([guard, go(f, center, r, fresh)]))
            }
            Formula::Forall(v, f) => {
                assert!(*v != center, "cannot localize around a bound variable");
                let guard = dist_at_most(*v, center, r, fresh);
                Formula::forall(*v, guard.implies(go(f, center, r, fresh)))
            }
            Formula::CountingExists(t, v, f) => {
                assert!(*v != center, "cannot localize around a bound variable");
                let guard = dist_at_most(*v, center, r, fresh);
                Formula::counting_exists(
                    *t,
                    *v,
                    Formula::and([guard, go(f, center, r, fresh)]),
                )
            }
        }
    }
    go(phi, center, r, fresh_base)
}

/// Relativise every quantifier of `φ` to the union of `r`-balls of several
/// free variables (the neighbourhood `N_r(x̄ȳ)` of a tuple):
/// `∃y ψ ↦ ∃y (⋁_c dist(y, c) ≤ r ∧ ψ)` and dually for `∀`.
///
/// Evaluating the result on `G` equals evaluating `φ` on the induced
/// neighbourhood graph `𝒩_r^G(centers)` — this is how a local-type
/// hypothesis materialises as a formula over the *original* graph.
///
/// # Panics
/// Panics if any centre is quantified inside `φ`.
pub fn localize_multi(phi: &Formula, centers: &[Var], r: usize) -> Formula {
    let fresh_base = phi
        .max_var()
        .into_iter()
        .chain(centers.iter().copied())
        .max()
        .map_or(0, |m| m.checked_add(1).expect("variable space exhausted"));
    fn guard(v: Var, centers: &[Var], r: usize, fresh: Var) -> Formula {
        Formula::or(centers.iter().map(|&c| dist_at_most(v, c, r, fresh)))
    }
    fn go(phi: &Formula, centers: &[Var], r: usize, fresh: Var) -> Formula {
        match phi {
            Formula::Bool(_) | Formula::Eq(..) | Formula::Edge(..) | Formula::Color(..) => {
                phi.clone()
            }
            Formula::Not(f) => go(f, centers, r, fresh).not(),
            Formula::And(fs) => Formula::and(fs.iter().map(|f| go(f, centers, r, fresh))),
            Formula::Or(fs) => Formula::or(fs.iter().map(|f| go(f, centers, r, fresh))),
            Formula::Exists(v, f) => {
                assert!(!centers.contains(v), "cannot localize around a bound variable");
                Formula::exists(
                    *v,
                    Formula::and([guard(*v, centers, r, fresh), go(f, centers, r, fresh)]),
                )
            }
            Formula::Forall(v, f) => {
                assert!(!centers.contains(v), "cannot localize around a bound variable");
                Formula::forall(
                    *v,
                    guard(*v, centers, r, fresh).implies(go(f, centers, r, fresh)),
                )
            }
            Formula::CountingExists(t, v, f) => {
                assert!(!centers.contains(v), "cannot localize around a bound variable");
                Formula::counting_exists(
                    *t,
                    *v,
                    Formula::and([guard(*v, centers, r, fresh), go(f, centers, r, fresh)]),
                )
            }
        }
    }
    go(phi, centers, r, fresh_base)
}

/// Algorithm 2's `φ_i` builder: existentially close the variables in
/// `params`, each guarded by its singleton colour —
/// `∃y_1 … ∃y_j (⋀ S_j(y_j) ∧ φ)`.
pub fn bind_params_with_colors(phi: &Formula, params: &[(Var, ColorId)]) -> Formula {
    let mut body = Formula::and(
        params
            .iter()
            .map(|&(v, c)| Formula::Color(c, v))
            .chain([phi.clone()]),
    );
    for &(v, _) in params.iter().rev() {
        body = Formula::exists(v, body);
    }
    body
}

/// Negation normal form: push negations down to atoms (and counting
/// quantifiers, which stay as negated leaves — FO+C has no dual counting
/// quantifier in this syntax). Preserves semantics and quantifier rank.
pub fn nnf(phi: &Formula) -> Formula {
    fn pos(phi: &Formula) -> Formula {
        match phi {
            Formula::Bool(_) | Formula::Eq(..) | Formula::Edge(..) | Formula::Color(..) => {
                phi.clone()
            }
            Formula::Not(f) => neg(f),
            Formula::And(fs) => Formula::and(fs.iter().map(pos)),
            Formula::Or(fs) => Formula::or(fs.iter().map(pos)),
            Formula::Exists(v, f) => Formula::exists(*v, pos(f)),
            Formula::Forall(v, f) => Formula::forall(*v, pos(f)),
            Formula::CountingExists(t, v, f) => Formula::counting_exists(*t, *v, pos(f)),
        }
    }
    fn neg(phi: &Formula) -> Formula {
        match phi {
            Formula::Bool(b) => Formula::Bool(!b),
            Formula::Eq(..) | Formula::Edge(..) | Formula::Color(..) => phi.clone().not(),
            Formula::Not(f) => pos(f),
            Formula::And(fs) => Formula::or(fs.iter().map(neg)),
            Formula::Or(fs) => Formula::and(fs.iter().map(neg)),
            Formula::Exists(v, f) => Formula::forall(*v, neg(f)),
            Formula::Forall(v, f) => Formula::exists(*v, neg(f)),
            // ¬∃^{≥t}: no dual in the syntax; keep as a negated leaf with
            // an NNF body.
            Formula::CountingExists(t, v, f) => {
                Formula::counting_exists(*t, *v, pos(f)).not()
            }
        }
    }
    pos(phi)
}

/// Bottom-up simplification: constant folding via the smart constructors,
/// `x = x ↦ ⊤`, `E(x, x) ↦ ⊥`, duplicate removal in conjunctions and
/// disjunctions. Preserves logical equivalence and never increases
/// quantifier rank.
pub fn simplify(phi: &Formula) -> Formula {
    match phi {
        Formula::Eq(a, b) if a == b => Formula::TRUE,
        Formula::Edge(a, b) if a == b => Formula::FALSE,
        Formula::Bool(_) | Formula::Eq(..) | Formula::Edge(..) | Formula::Color(..) => {
            phi.clone()
        }
        Formula::Not(f) => simplify(f).not(),
        Formula::And(fs) => {
            let mut seen = Vec::new();
            for f in fs {
                let s = simplify(f);
                if !seen.contains(&s) {
                    seen.push(s);
                }
            }
            Formula::and(seen)
        }
        Formula::Or(fs) => {
            let mut seen = Vec::new();
            for f in fs {
                let s = simplify(f);
                if !seen.contains(&s) {
                    seen.push(s);
                }
            }
            Formula::or(seen)
        }
        Formula::Exists(v, f) => match simplify(f) {
            Formula::Bool(b) => Formula::Bool(b), // nonempty domain assumed
            body => Formula::exists(*v, body),
        },
        Formula::Forall(v, f) => match simplify(f) {
            Formula::Bool(b) => Formula::Bool(b),
            body => Formula::forall(*v, body),
        },
        Formula::CountingExists(t, v, f) => match simplify(f) {
            // ∃^{≥t} x ⊥ is false for t ≥ 1; ∃^{≥t} x ⊤ means "the domain
            // has ≥ t elements", which simplification must not decide.
            Formula::Bool(false) => Formula::FALSE,
            body => Formula::counting_exists(*t, *v, body),
        },
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ops, GraphBuilder, Vocabulary, V};

    use crate::eval::{models, satisfies};
    use crate::parser::parse;

    use super::*;

    #[test]
    fn dist_formula_matches_bfs() {
        let g = generators::path(8, Vocabulary::empty());
        for r in 0..=5 {
            let phi = dist_at_most(0, 1, r, 2);
            assert!(
                phi.quantifier_rank() <= (usize::BITS - r.max(1).leading_zeros()) as usize,
                "qr too large for r={r}"
            );
            for u in g.vertices() {
                for v in g.vertices() {
                    let expected = folearn_graph::bfs::distance(&g, u, v)
                        .is_some_and(|d| d <= r);
                    assert_eq!(
                        satisfies(&g, &phi, &[u, v]),
                        expected,
                        "r={r} u={u} v={v}"
                    );
                }
            }
        }
    }

    #[test]
    fn dist_qr_is_logarithmic() {
        assert_eq!(dist_at_most(0, 1, 1, 2).quantifier_rank(), 0);
        assert_eq!(dist_at_most(0, 1, 2, 2).quantifier_rank(), 1);
        assert_eq!(dist_at_most(0, 1, 4, 2).quantifier_rank(), 2);
        assert_eq!(dist_at_most(0, 1, 8, 2).quantifier_rank(), 3);
        assert!(dist_at_most(0, 1, 100, 2).quantifier_rank() <= 7);
    }

    #[test]
    fn localized_formula_ignores_far_structure() {
        // φ(x0) = ∃x1 Red(x1) localized to radius 1: "a red vertex within
        // distance 1 of x0".
        let vocab = Vocabulary::new(["Red"]);
        let mut b = GraphBuilder::with_vertices(vocab, 4);
        b.add_edge(V(0), V(1));
        b.add_edge(V(1), V(2));
        b.add_edge(V(2), V(3));
        b.set_color(V(3), folearn_graph::ColorId(0));
        let g = b.build();
        let phi = parse("exists x1. Red(x1)", g.vocab()).unwrap();
        let local = localize(&phi, 0, 1);
        assert!(!satisfies(&g, &local, &[V(0)])); // red vertex is 3 away
        assert!(satisfies(&g, &local, &[V(2)]));
        assert!(satisfies(&g, &local, &[V(3)]));
        // Unlocalized: true everywhere.
        assert!(satisfies(&g, &phi, &[V(0)]));
    }

    #[test]
    fn localize_forall_uses_implication() {
        // ∀x1 Red(x1) localized to radius 1 at x0: all of N_1(x0) red.
        let vocab = Vocabulary::new(["Red"]);
        let mut b = GraphBuilder::with_vertices(vocab, 3);
        b.add_edge(V(0), V(1));
        b.add_edge(V(1), V(2));
        b.set_color(V(0), folearn_graph::ColorId(0));
        b.set_color(V(1), folearn_graph::ColorId(0));
        let g = b.build();
        let phi = parse("forall x1. Red(x1)", g.vocab()).unwrap();
        let local = localize(&phi, 0, 1);
        assert!(satisfies(&g, &local, &[V(0)])); // N_1(0) = {0,1}, both red
        assert!(!satisfies(&g, &local, &[V(1)])); // N_1(1) contains 2
        assert!(!models(&g, &Formula::forall(0, phi.clone())));
    }

    #[test]
    fn specialize_matches_direct_binding() {
        // ψ(x0) over a coloured path; t = V(2). The specialised sentence on
        // the expanded graph must agree with ψ(t) on the original graph.
        let vocab = Vocabulary::new(["Red"]);
        let g = generators::periodically_colored(
            &generators::path(6, vocab),
            folearn_graph::ColorId(0),
            2,
        );
        let psi = parse(
            "exists x1. E(x0, x1) & (Red(x1) | x1 = x0)",
            g.vocab(),
        )
        .unwrap();
        for t in g.vertices() {
            let expanded = ops::expand_colors(
                &g,
                &[
                    ("Pt", vec![t]),
                    ("Qt", g.neighbors(t).iter().map(|&w| V(w)).collect()),
                ],
            );
            let p_t = expanded.vocab().color_by_name("Pt").unwrap();
            let q_t = expanded.vocab().color_by_name("Qt").unwrap();
            let sentence = specialize_var(&psi, 0, p_t, q_t, &|c| g.has_color(t, c));
            assert!(sentence.free_vars().is_empty());
            assert!(
                models(&expanded, &Formula::exists(0, Formula::and([
                    Formula::Color(p_t, 0),
                    // sanity: the marker is unique
                ])))
            );
            assert_eq!(
                models(&expanded, &sentence),
                satisfies(&g, &psi, &[t]),
                "t={t}"
            );
        }
    }

    #[test]
    fn erase_colors_replaces_with_false() {
        let vocab = Vocabulary::new(["A", "B"]);
        let phi = parse("A(x0) | B(x0)", &vocab).unwrap();
        let mut set = BTreeSet::new();
        set.insert(vocab.color_by_name("A").unwrap());
        let erased = erase_colors(&phi, &set);
        assert_eq!(erased, parse("B(x0)", &vocab).unwrap());
    }

    #[test]
    fn bind_params_builds_guarded_prefix() {
        let vocab = Vocabulary::new(["S1", "S2"]);
        let phi = parse("E(x0, x1) & E(x1, x2)", &vocab).unwrap();
        let s1 = vocab.color_by_name("S1").unwrap();
        let s2 = vocab.color_by_name("S2").unwrap();
        let bound = bind_params_with_colors(&phi, &[(1, s1), (2, s2)]);
        assert_eq!(bound.free_vars(), vec![0]);
        assert_eq!(bound.quantifier_rank(), 2);
    }

    #[test]
    fn nnf_pushes_negations_to_atoms() {
        fn no_structural_not(phi: &Formula) -> bool {
            match phi {
                Formula::Not(inner) => matches!(
                    **inner,
                    Formula::Eq(..)
                        | Formula::Edge(..)
                        | Formula::Color(..)
                        | Formula::CountingExists(..)
                ),
                Formula::Bool(_)
                | Formula::Eq(..)
                | Formula::Edge(..)
                | Formula::Color(..) => true,
                Formula::And(fs) | Formula::Or(fs) => fs.iter().all(no_structural_not),
                Formula::Exists(_, f)
                | Formula::Forall(_, f)
                | Formula::CountingExists(_, _, f) => no_structural_not(f),
            }
        }
        let g = generators::path(5, Vocabulary::empty());
        let vocab = Vocabulary::empty();
        let samples = [
            "!(exists x1. E(x0, x1) & !(forall x2. x2 = x0))",
            "!(x0 = x1 | !E(x0, x1))",
            "!exists^2 x1. E(x0, x1)",
        ];
        for s in samples {
            let phi = parse(s, &vocab).unwrap();
            let n = nnf(&phi);
            assert!(no_structural_not(&n), "not in NNF: {n}");
            assert_eq!(n.quantifier_rank(), phi.quantifier_rank());
            for u in g.vertices() {
                for v in g.vertices() {
                    assert_eq!(
                        satisfies(&g, &phi, &[u, v]),
                        satisfies(&g, &n, &[u, v]),
                        "{s} at {u},{v}"
                    );
                }
            }
        }
    }

    #[test]
    fn simplify_preserves_semantics() {
        let g = generators::path(5, Vocabulary::empty());
        let vocab = Vocabulary::empty();
        let phi = parse(
            "exists x1. (E(x0, x1) & true & E(x0, x1)) | (x1 = x1 & false)",
            &vocab,
        )
        .unwrap();
        let s = simplify(&phi);
        assert!(s.size() < phi.size());
        for v in g.vertices() {
            assert_eq!(satisfies(&g, &phi, &[v]), satisfies(&g, &s, &[v]));
        }
        assert_eq!(simplify(&parse("x0 = x0", &vocab).unwrap()), Formula::TRUE);
        assert_eq!(simplify(&Formula::Edge(3, 3)), Formula::FALSE);
    }
}
