//! Text syntax for formulas: recursive-descent parser and name-aware
//! renderer.
//!
//! Grammar (quantifiers extend as far right as possible; `&` binds tighter
//! than `|`, which binds tighter than `->`, which binds tighter than
//! `<->`):
//!
//! ```text
//! formula  := iff
//! iff      := impl ( "<->" impl )*
//! impl     := or ( "->" or )*                (right-associative)
//! or       := and ( "|" and )*
//! and      := unary ( "&" unary )*
//! unary    := "!" unary | quantifier | atom | "(" formula ")"
//! quantifier := ("exists" | "forall" | "exists^" digits) var "." formula
//! atom     := "true" | "false"
//!           | var "=" var | var "!=" var
//!           | "E" "(" var "," var ")"
//!           | ident "(" var ")"              (colour atom, by name)
//! var      := "x" digits
//! ```
//!
//! Colour names are resolved against a [`Vocabulary`]; the reserved names
//! `E`, `true`, `false`, `exists`, `forall` cannot be colours.

use std::fmt;

use folearn_graph::Vocabulary;

use crate::formula::{Formula, Var};

/// A parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte position of the error.
    pub at: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a formula, resolving colour names against `vocab`.
///
/// ```
/// use folearn_graph::Vocabulary;
/// use folearn_logic::parse;
///
/// let vocab = Vocabulary::new(["Red"]);
/// let phi = parse("exists x1. E(x0, x1) & Red(x1)", &vocab).unwrap();
/// assert_eq!(phi.quantifier_rank(), 1);
/// assert_eq!(phi.free_vars(), vec![0]);
/// ```
pub fn parse(input: &str, vocab: &Vocabulary) -> Result<Formula, ParseError> {
    let mut p = Parser {
        input,
        pos: 0,
        vocab,
    };
    p.skip_ws();
    let phi = p.formula()?;
    p.skip_ws();
    if p.pos != input.len() {
        return Err(p.err("trailing input"));
    }
    Ok(phi)
}

/// Render a formula using the vocabulary's colour names (round-trips
/// through [`parse`]).
pub fn render(phi: &Formula, vocab: &Vocabulary) -> String {
    struct Renderer<'a>(&'a Formula, &'a Vocabulary);
    impl fmt::Display for Renderer<'_> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.fmt_prec(f, 0, &|c, out| {
                write!(out, "{}", self.1.color_name(c))
            })
        }
    }
    Renderer(phi, vocab).to_string()
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    vocab: &'a Vocabulary,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: msg.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn peek_word(&mut self) -> &'a str {
        self.skip_ws();
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|(_, c)| !c.is_alphanumeric() && *c != '_')
            .map_or(rest.len(), |(i, _)| i);
        &rest[..end]
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.peek_word() == word {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        self.iff()
    }

    fn iff(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.implication()?;
        while self.eat("<->") {
            let rhs = self.implication()?;
            lhs = lhs.iff(rhs);
        }
        Ok(lhs)
    }

    fn implication(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.disjunction()?;
        if self.eat("->") {
            let rhs = self.implication()?; // right-associative
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn disjunction(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.conjunction()?];
        loop {
            self.skip_ws();
            // Don't confuse `|` with nothing else; single char.
            if self.rest().starts_with('|') {
                self.pos += 1;
                parts.push(self.conjunction()?);
            } else {
                break;
            }
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Formula::or(parts)
        })
    }

    fn conjunction(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.unary()?];
        while self.eat("&") {
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Formula::and(parts)
        })
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        self.skip_ws();
        if self.eat("!") {
            return Ok(self.unary()?.not());
        }
        if self.eat_word("exists") {
            // Optional counting threshold: `exists^3 x0. φ`.
            let mut threshold: Option<u32> = None;
            if self.eat("^") {
                let digits: String = self
                    .rest()
                    .chars()
                    .take_while(|c| c.is_ascii_digit())
                    .collect();
                if digits.is_empty() {
                    return Err(self.err("expected digits after 'exists^'"));
                }
                self.pos += digits.len();
                threshold = Some(
                    digits
                        .parse()
                        .map_err(|_| self.err("counting threshold too large"))?,
                );
            }
            let v = self.var()?;
            if !self.eat(".") {
                return Err(self.err("expected '.' after quantified variable"));
            }
            let body = self.formula()?;
            return Ok(match threshold {
                Some(t) => Formula::counting_exists(t, v, body),
                None => Formula::exists(v, body),
            });
        }
        if self.eat_word("forall") {
            let v = self.var()?;
            if !self.eat(".") {
                return Err(self.err("expected '.' after quantified variable"));
            }
            return Ok(Formula::forall(v, self.formula()?));
        }
        if self.eat("(") {
            let inner = self.formula()?;
            if !self.eat(")") {
                return Err(self.err("expected ')'"));
            }
            return Ok(inner);
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Formula, ParseError> {
        self.skip_ws();
        if self.eat_word("true") {
            return Ok(Formula::TRUE);
        }
        if self.eat_word("false") {
            return Ok(Formula::FALSE);
        }
        let word = self.peek_word();
        if word.is_empty() {
            return Err(self.err("expected an atom"));
        }
        // Variable-led atoms: x{i} = x{j} or x{i} != x{j}.
        if word.starts_with('x') && word[1..].chars().all(|c| c.is_ascii_digit()) && word.len() > 1
        {
            let a = self.var()?;
            self.skip_ws();
            if self.eat("!=") {
                let b = self.var()?;
                return Ok(Formula::Eq(a, b).not());
            }
            if self.eat("=") {
                let b = self.var()?;
                return Ok(Formula::Eq(a, b));
            }
            return Err(self.err("expected '=' or '!=' after variable"));
        }
        // Edge atom.
        if word == "E" {
            self.pos += 1;
            if !self.eat("(") {
                return Err(self.err("expected '(' after E"));
            }
            let a = self.var()?;
            if !self.eat(",") {
                return Err(self.err("expected ',' in edge atom"));
            }
            let b = self.var()?;
            if !self.eat(")") {
                return Err(self.err("expected ')' in edge atom"));
            }
            return Ok(Formula::Edge(a, b));
        }
        // Colour atom by name.
        let Some(color) = self.vocab.color_by_name(word) else {
            return Err(self.err(format!("unknown colour {word:?}")));
        };
        self.pos += word.len();
        if !self.eat("(") {
            return Err(self.err("expected '(' after colour name"));
        }
        let v = self.var()?;
        if !self.eat(")") {
            return Err(self.err("expected ')' in colour atom"));
        }
        Ok(Formula::Color(color, v))
    }

    fn var(&mut self) -> Result<Var, ParseError> {
        self.skip_ws();
        let rest = self.rest();
        if !rest.starts_with('x') {
            return Err(self.err("expected a variable 'x<digits>'"));
        }
        let digits: String = rest[1..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if digits.is_empty() {
            return Err(self.err("expected digits after 'x'"));
        }
        let n: u32 = digits
            .parse()
            .map_err(|_| self.err("variable index too large"))?;
        if n > u32::from(Var::MAX) {
            return Err(self.err("variable index too large"));
        }
        self.pos += 1 + digits.len();
        Ok(n as Var)
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::ColorId;

    use super::*;

    fn vocab() -> Vocabulary {
        Vocabulary::new(["Red", "Blue"])
    }

    #[test]
    fn parses_atoms() {
        let v = vocab();
        assert_eq!(parse("x0 = x1", &v).unwrap(), Formula::Eq(0, 1));
        assert_eq!(
            parse("x0 != x1", &v).unwrap(),
            Formula::Eq(0, 1).not()
        );
        assert_eq!(parse("E(x0, x1)", &v).unwrap(), Formula::Edge(0, 1));
        assert_eq!(
            parse("Red(x2)", &v).unwrap(),
            Formula::Color(ColorId(0), 2)
        );
        assert_eq!(parse("true", &v).unwrap(), Formula::TRUE);
    }

    #[test]
    fn precedence() {
        let v = vocab();
        // & over |
        let phi = parse("Red(x0) | Blue(x0) & Red(x1)", &v).unwrap();
        assert_eq!(
            phi,
            Formula::or([
                Formula::Color(ColorId(0), 0),
                Formula::and([
                    Formula::Color(ColorId(1), 0),
                    Formula::Color(ColorId(0), 1)
                ]),
            ])
        );
    }

    #[test]
    fn quantifier_extends_right() {
        let v = vocab();
        let phi = parse("exists x1. E(x0, x1) & Red(x1)", &v).unwrap();
        assert_eq!(
            phi,
            Formula::exists(
                1,
                Formula::and([Formula::Edge(0, 1), Formula::Color(ColorId(0), 1)])
            )
        );
    }

    #[test]
    fn implication_and_iff() {
        let v = vocab();
        let phi = parse("Red(x0) -> Blue(x0)", &v).unwrap();
        assert_eq!(
            phi,
            Formula::Color(ColorId(0), 0).implies(Formula::Color(ColorId(1), 0))
        );
        let psi = parse("Red(x0) <-> Blue(x0)", &v).unwrap();
        assert_eq!(psi.quantifier_rank(), 0);
    }

    #[test]
    fn round_trip_render_parse() {
        let v = vocab();
        let samples = [
            "exists x0. forall x1. E(x0, x1) | x0 = x1",
            "!(Red(x0) & Blue(x1))",
            "forall x0. exists x1. E(x0, x1) & !x1 = x0 & Red(x1)",
            "true",
            "x3 = x3",
        ];
        for s in samples {
            let phi = parse(s, &v).unwrap();
            let printed = render(&phi, &v);
            let reparsed = parse(&printed, &v).unwrap();
            assert_eq!(phi, reparsed, "round-trip failed for {s}: {printed}");
        }
    }

    #[test]
    fn errors_are_located() {
        let v = vocab();
        let e = parse("Red(x0) & Green(x1)", &v).unwrap_err();
        assert!(e.message.contains("unknown colour"));
        assert_eq!(e.at, 10);
        assert!(parse("exists x0 E(x0, x0)", &v).is_err()); // missing '.'
        assert!(parse("x0 =", &v).is_err());
        assert!(parse("E(x0 x1)", &v).is_err());
        assert!(parse("Red(x0) extra", &v).is_err());
    }

    #[test]
    fn counting_quantifier_syntax() {
        let v = vocab();
        let phi = parse("exists^3 x1. E(x0, x1) & Red(x1)", &v).unwrap();
        assert_eq!(
            phi,
            Formula::counting_exists(
                3,
                1,
                Formula::and([Formula::Edge(0, 1), Formula::Color(ColorId(0), 1)])
            )
        );
        assert_eq!(phi.quantifier_rank(), 1);
        // Round-trip.
        let printed = render(&phi, &v);
        assert_eq!(parse(&printed, &v).unwrap(), phi);
        // t = 1 collapses to plain exists.
        assert_eq!(
            parse("exists^1 x0. Red(x0)", &v).unwrap(),
            parse("exists x0. Red(x0)", &v).unwrap()
        );
        // Errors.
        assert!(parse("exists^ x0. Red(x0)", &v).is_err());
    }

    #[test]
    fn nested_parens() {
        let v = vocab();
        let phi = parse("((Red(x0)))", &v).unwrap();
        assert_eq!(phi, Formula::Color(ColorId(0), 0));
    }
}
