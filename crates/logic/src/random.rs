//! Seeded random formula generation, for tests and benchmarks.
//!
//! The generator produces syntactically well-formed formulas with a target
//! quantifier rank and a bounded set of free variables; it is biased
//! towards "interesting" formulas (quantifiers near the root, a mix of
//! atom kinds) so that evaluator cross-checks exercise real structure.

use folearn_graph::{ColorId, Vocabulary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::formula::{Formula, Var};

/// Configuration for [`random_formula`].
#[derive(Clone, Debug)]
pub struct RandomFormulaConfig {
    /// Free variables are drawn from `x0 … x{free_vars−1}`.
    pub free_vars: Var,
    /// Exact quantifier rank budget (the result has rank ≤ this, usually =).
    pub quantifier_rank: usize,
    /// Maximum boolean fan-in at each node.
    pub max_fanout: usize,
    /// Recursion depth budget for boolean structure.
    pub bool_depth: usize,
    /// When set, counting quantifiers `∃^{≥t}` with `2 ≤ t ≤ cap` are
    /// generated alongside plain quantifiers (FO+C formulas).
    pub counting_cap: Option<u32>,
}

impl Default for RandomFormulaConfig {
    fn default() -> Self {
        Self {
            free_vars: 1,
            quantifier_rank: 2,
            max_fanout: 3,
            bool_depth: 2,
            counting_cap: None,
        }
    }
}

/// Generate a pseudo-random formula over `vocab` from a seed.
pub fn random_formula(vocab: &Vocabulary, config: &RandomFormulaConfig, seed: u64) -> Formula {
    let mut rng = StdRng::seed_from_u64(seed);
    gen(
        vocab,
        &mut rng,
        config.free_vars,
        config.quantifier_rank,
        config.bool_depth,
        config.max_fanout,
        config.counting_cap,
    )
}

fn gen(
    vocab: &Vocabulary,
    rng: &mut StdRng,
    in_scope: Var,
    qr: usize,
    depth: usize,
    fanout: usize,
    counting_cap: Option<u32>,
) -> Formula {
    if qr == 0 && depth == 0 {
        return atom(vocab, rng, in_scope);
    }
    let choice = rng.random_range(0..10);
    match choice {
        0..=3 if qr > 0 => {
            // Quantify a fresh variable.
            let v = in_scope;
            let body = gen(vocab, rng, in_scope + 1, qr - 1, depth, fanout, counting_cap);
            match counting_cap {
                Some(cap) if rng.random_bool(0.4) => {
                    Formula::counting_exists(rng.random_range(2..=cap.max(2)), v, body)
                }
                _ if rng.random_bool(0.5) => Formula::exists(v, body),
                _ => Formula::forall(v, body),
            }
        }
        4..=6 if depth > 0 => {
            let n = rng.random_range(2..=fanout.max(2));
            // Spend the qr budget on one random child so the target rank is hit.
            let lucky = rng.random_range(0..n);
            let parts: Vec<Formula> = (0..n)
                .map(|i| {
                    let child_qr = if i == lucky { qr } else { rng.random_range(0..=qr) };
                    gen(vocab, rng, in_scope, child_qr, depth - 1, fanout, counting_cap)
                })
                .collect();
            if rng.random_bool(0.5) {
                Formula::and(parts)
            } else {
                Formula::or(parts)
            }
        }
        7 => gen(vocab, rng, in_scope, qr, depth.saturating_sub(1), fanout, counting_cap)
            .not(),
        _ if qr > 0 => {
            let v = in_scope;
            let body = gen(vocab, rng, in_scope + 1, qr - 1, depth, fanout, counting_cap);
            Formula::exists(v, body)
        }
        _ => atom(vocab, rng, in_scope),
    }
}

fn atom(vocab: &Vocabulary, rng: &mut StdRng, in_scope: Var) -> Formula {
    let scope = in_scope.max(1);
    let v1 = rng.random_range(0..scope);
    let v2 = rng.random_range(0..scope);
    let kinds = if vocab.num_colors() > 0 { 3 } else { 2 };
    match rng.random_range(0..kinds) {
        0 => Formula::Edge(v1, v2),
        1 => Formula::Eq(v1, v2),
        _ => {
            let c = ColorId(rng.random_range(0..vocab.num_colors() as u16));
            Formula::Color(c, v1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_free_variable_scope() {
        let vocab = Vocabulary::new(["A"]);
        for seed in 0..50 {
            let cfg = RandomFormulaConfig {
                free_vars: 2,
                quantifier_rank: 2,
                ..Default::default()
            };
            let phi = random_formula(&vocab, &cfg, seed);
            assert!(phi.quantifier_rank() <= 2, "seed={seed}");
            for v in phi.free_vars() {
                assert!(v < 2, "seed={seed} leaked free variable x{v} in {phi}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let vocab = Vocabulary::new(["A", "B"]);
        let cfg = RandomFormulaConfig::default();
        assert_eq!(
            random_formula(&vocab, &cfg, 9),
            random_formula(&vocab, &cfg, 9)
        );
    }

    #[test]
    fn counting_mode_emits_counting_quantifiers() {
        let vocab = Vocabulary::new(["A"]);
        let cfg = RandomFormulaConfig {
            free_vars: 1,
            quantifier_rank: 2,
            counting_cap: Some(3),
            ..Default::default()
        };
        let any_counting = (0..60).any(|s| {
            let phi = random_formula(&vocab, &cfg, s);
            phi.to_string().contains("exists^")
        });
        assert!(any_counting);
    }

    #[test]
    fn produces_varied_shapes() {
        let vocab = Vocabulary::new(["A"]);
        let cfg = RandomFormulaConfig {
            free_vars: 1,
            quantifier_rank: 2,
            max_fanout: 3,
            bool_depth: 2,
            counting_cap: None,
        };
        let shapes: std::collections::HashSet<String> = (0..30)
            .map(|s| random_formula(&vocab, &cfg, s).to_string())
            .collect();
        assert!(shapes.len() > 10, "only {} distinct shapes", shapes.len());
    }
}
