//! Naive recursive model checking.
//!
//! This is the `O(|φ| · n^{qr})`-time evaluator — polynomial for fixed
//! formula, i.e. the `XP` algorithm that witnesses `FO-MC ∈ XP`. It is the
//! subroutine Propositions 11 and 12 reduce learning to, the target of the
//! Theorem 1 reduction, and the ground truth the type-based evaluator in
//! `folearn-types` is cross-checked against.

use folearn_graph::{Graph, V};

use crate::formula::{Formula, Var};

/// A partial assignment of variables to vertices.
#[derive(Clone, Debug, Default)]
pub struct Assignment {
    slots: Vec<Option<V>>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assign variables `x0 … x{k-1}` to the tuple, in order.
    pub fn from_tuple(tuple: &[V]) -> Self {
        Self {
            slots: tuple.iter().map(|&v| Some(v)).collect(),
        }
    }

    /// Rebind the assignment to exactly `x0 … x{k-1} ↦ tuple`, dropping
    /// every other binding. Reuses the slot buffer, so a single scratch
    /// assignment can serve a whole tuple loop without reallocating.
    pub fn reset_to_tuple(&mut self, tuple: &[V]) {
        self.slots.clear();
        self.slots.extend(tuple.iter().map(|&v| Some(v)));
    }

    /// The value of a variable, if assigned.
    #[inline]
    pub fn get(&self, var: Var) -> Option<V> {
        self.slots.get(var as usize).copied().flatten()
    }

    /// Bind `var` to `v`, returning the previous binding.
    pub fn set(&mut self, var: Var, v: V) -> Option<V> {
        let idx = var as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        self.slots[idx].replace(v)
    }

    /// Remove a binding.
    pub fn unset(&mut self, var: Var) -> Option<V> {
        self.slots
            .get_mut(var as usize)
            .and_then(std::option::Option::take)
    }

    fn require(&self, var: Var) -> V {
        self.get(var)
            .unwrap_or_else(|| panic!("free variable x{var} is unassigned"))
    }
}

/// Evaluate `φ` under a (total-on-free-variables) assignment.
///
/// # Panics
/// Panics if a free variable of `φ` is unassigned or a colour atom refers
/// to a colour outside the graph's vocabulary.
pub fn eval(g: &Graph, phi: &Formula, assignment: &mut Assignment) -> bool {
    match phi {
        Formula::Bool(b) => *b,
        Formula::Eq(a, b) => assignment.require(*a) == assignment.require(*b),
        Formula::Edge(a, b) => g.has_edge(assignment.require(*a), assignment.require(*b)),
        Formula::Color(c, v) => {
            assert!(
                c.index() < g.vocab().num_colors(),
                "colour {c} outside the graph's vocabulary"
            );
            g.has_color(assignment.require(*v), *c)
        }
        Formula::Not(f) => !eval(g, f, assignment),
        Formula::And(fs) => fs.iter().all(|f| eval(g, f, assignment)),
        Formula::Or(fs) => fs.iter().any(|f| eval(g, f, assignment)),
        Formula::Exists(var, body) => {
            let saved = assignment.get(*var);
            let mut found = false;
            for v in g.vertices() {
                assignment.set(*var, v);
                if eval(g, body, assignment) {
                    found = true;
                    break;
                }
            }
            restore(assignment, *var, saved);
            found
        }
        Formula::Forall(var, body) => {
            let saved = assignment.get(*var);
            let mut holds = true;
            for v in g.vertices() {
                assignment.set(*var, v);
                if !eval(g, body, assignment) {
                    holds = false;
                    break;
                }
            }
            restore(assignment, *var, saved);
            holds
        }
        Formula::CountingExists(t, var, body) => {
            let saved = assignment.get(*var);
            let mut count = 0u32;
            for v in g.vertices() {
                assignment.set(*var, v);
                if eval(g, body, assignment) {
                    count += 1;
                    if count >= *t {
                        break;
                    }
                }
            }
            restore(assignment, *var, saved);
            count >= *t
        }
    }
}

fn restore(assignment: &mut Assignment, var: Var, saved: Option<V>) {
    match saved {
        Some(v) => {
            assignment.set(var, v);
        }
        None => {
            assignment.unset(var);
        }
    }
}

/// `G ⊨ φ(v̄)`: evaluate with `x0 … x{k−1}` bound to `tuple`.
///
/// ```
/// use folearn_graph::{generators, Vocabulary, V};
/// use folearn_logic::{parse, eval};
///
/// let g = generators::path(4, Vocabulary::empty());
/// let phi = parse("exists x1. E(x0, x1) & exists x2. E(x1, x2) & x2 != x0",
///                 g.vocab()).unwrap();
/// assert!(eval::satisfies(&g, &phi, &[V(0)]));
/// ```
pub fn satisfies(g: &Graph, phi: &Formula, tuple: &[V]) -> bool {
    eval(g, phi, &mut Assignment::from_tuple(tuple))
}

/// [`satisfies`] with a caller-held scratch assignment: callers that
/// evaluate `φ` over many tuples reuse one allocation for the whole loop.
pub fn satisfies_with_scratch(
    g: &Graph,
    phi: &Formula,
    tuple: &[V],
    scratch: &mut Assignment,
) -> bool {
    scratch.reset_to_tuple(tuple);
    eval(g, phi, scratch)
}

/// `G ⊨ φ` for a sentence.
///
/// # Panics
/// Panics if `φ` has free variables.
pub fn models(g: &Graph, phi: &Formula) -> bool {
    assert!(phi.is_sentence(), "models() requires a sentence");
    eval(g, phi, &mut Assignment::new())
}

/// All `k`-tuples satisfying `φ(x0, …, x{k−1})` — the query answer.
/// Exponential in `k`; intended for small `k` and tests.
pub fn query_answer(g: &Graph, phi: &Formula, k: usize) -> Vec<Vec<V>> {
    let mut out = Vec::new();
    let mut tuple = vec![V(0); k];
    let mut scratch = Assignment::new();
    fill(g, phi, &mut tuple, 0, &mut out, &mut scratch);
    out
}

fn fill(
    g: &Graph,
    phi: &Formula,
    tuple: &mut Vec<V>,
    pos: usize,
    out: &mut Vec<Vec<V>>,
    scratch: &mut Assignment,
) {
    if pos == tuple.len() {
        if satisfies_with_scratch(g, phi, tuple, scratch) {
            out.push(tuple.clone());
        }
        return;
    }
    for v in g.vertices() {
        tuple[pos] = v;
        fill(g, phi, tuple, pos + 1, out, scratch);
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ColorId, Vocabulary};

    use crate::parser::parse;

    use super::*;

    fn colored_path() -> Graph {
        // Path of 6 vertices, every 3rd is Red (v0, v3).
        let g = generators::path(6, Vocabulary::new(["Red"]));
        generators::periodically_colored(&g, ColorId(0), 3)
    }

    #[test]
    fn atoms_eval() {
        let g = colored_path();
        assert!(satisfies(&g, &Formula::Edge(0, 1), &[V(0), V(1)]));
        assert!(!satisfies(&g, &Formula::Edge(0, 1), &[V(0), V(2)]));
        assert!(satisfies(&g, &Formula::Eq(0, 1), &[V(2), V(2)]));
        assert!(satisfies(&g, &Formula::Color(ColorId(0), 0), &[V(3)]));
        assert!(!satisfies(&g, &Formula::Color(ColorId(0), 0), &[V(1)]));
    }

    #[test]
    fn sentences() {
        let g = colored_path();
        let v = g.vocab().as_ref().clone();
        // "Some vertex is red" holds.
        assert!(models(&g, &parse("exists x0. Red(x0)", &v).unwrap()));
        // "Every vertex is red" does not.
        assert!(!models(&g, &parse("forall x0. Red(x0)", &v).unwrap()));
        // "Some red vertex has a red neighbour" fails on this colouring.
        assert!(!models(
            &g,
            &parse("exists x0. Red(x0) & exists x1. E(x0, x1) & Red(x1)", &v).unwrap()
        ));
    }

    #[test]
    fn quantifier_scoping_restores_bindings() {
        let g = colored_path();
        // x0 is free; the inner ∃x0 shadows it and must restore afterwards.
        let phi = Formula::and([
            Formula::exists(0, Formula::Color(ColorId(0), 0)),
            Formula::Color(ColorId(0), 0),
        ]);
        assert!(satisfies(&g, &phi, &[V(3)]));
        assert!(!satisfies(&g, &phi, &[V(1)]));
    }

    #[test]
    fn query_answers() {
        let g = generators::path(4, Vocabulary::empty());
        let phi = Formula::Edge(0, 1);
        let ans = query_answer(&g, &phi, 2);
        assert_eq!(ans.len(), 6); // 3 edges, both orientations
    }

    #[test]
    fn degree_two_query() {
        let g = generators::path(5, Vocabulary::empty());
        let v = Vocabulary::empty();
        // "x0 has two distinct neighbours" = internal path vertices.
        let phi = parse(
            "exists x1. exists x2. E(x0, x1) & E(x0, x2) & x1 != x2",
            &v,
        )
        .unwrap();
        let sat: Vec<_> = g.vertices().filter(|&u| satisfies(&g, &phi, &[u])).collect();
        assert_eq!(sat, vec![V(1), V(2), V(3)]);
    }

    #[test]
    fn counting_quantifier_semantics() {
        let g = generators::star(5, Vocabulary::empty());
        let v = Vocabulary::empty();
        // The centre has 4 neighbours, leaves have 1.
        let ge2 = parse("exists^2 x1. E(x0, x1)", &v).unwrap();
        let ge5 = parse("exists^5 x1. E(x0, x1)", &v).unwrap();
        assert!(satisfies(&g, &ge2, &[V(0)]));
        assert!(!satisfies(&g, &ge2, &[V(1)]));
        assert!(!satisfies(&g, &ge5, &[V(0)]));
        // ∃^{≥0} is ⊤ by the smart constructor.
        assert_eq!(Formula::counting_exists(0, 1, Formula::FALSE), Formula::TRUE);
    }

    #[test]
    #[should_panic(expected = "unassigned")]
    fn unassigned_variable_panics() {
        let g = colored_path();
        satisfies(&g, &Formula::Eq(0, 5), &[V(0)]);
    }
}
