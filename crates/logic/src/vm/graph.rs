//! Bitset view of a graph, precomputed once per structure.
//!
//! The VM never touches the CSR graph during interpretation: every atom
//! is answered from these masks. `adj` stores one adjacency row per
//! vertex (bit `v` of row `u` ⇔ `has_edge(u, v)`; rows are irreflexive
//! like the evaluator's edge semantics, and symmetric because graphs are
//! undirected), `colors` one vertex mask per colour of the vocabulary.

use folearn_graph::{ColorId, Graph};

use super::bitset::{full_mask, set_bit, words_for};

/// Per-graph bitset tables for the VM: adjacency rows, colour masks, and
/// the all-vertices mask.
#[derive(Clone, Debug)]
pub struct VmGraph {
    n: usize,
    words: usize,
    /// `n` rows of `words` words each.
    adj: Vec<u64>,
    /// `num_colors` rows of `words` words each.
    colors: Vec<u64>,
    num_colors: usize,
    /// All-ones over the `n` vertex lanes.
    full: Vec<u64>,
}

impl VmGraph {
    /// Precompute the masks for `g`. `O(n²/64 + m + n·c)` time and
    /// `O(n²/64)` space — paid once per structure, amortised over every
    /// batch the VM evaluates against it.
    pub fn new(g: &Graph) -> Self {
        let n = g.num_vertices();
        let words = words_for(n);
        let mut adj = vec![0u64; n * words];
        for u in g.vertices() {
            let row = &mut adj[u.index() * words..][..words];
            for &t in g.neighbors(u) {
                if t != u.0 {
                    set_bit(row, t as usize);
                }
            }
        }
        let num_colors = g.vocab().num_colors();
        let mut colors = vec![0u64; num_colors * words];
        for c in 0..num_colors {
            let row = &mut colors[c * words..][..words];
            for v in g.vertices() {
                if g.has_color(v, ColorId(c as u16)) {
                    set_bit(row, v.index());
                }
            }
        }
        Self {
            n,
            words,
            adj,
            colors,
            num_colors,
            full: full_mask(n),
        }
    }

    /// Number of vertices (lanes of a vertex-domain register).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Words per vertex-domain register.
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Number of colours in the vocabulary.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// The neighbourhood mask of vertex `v`.
    #[inline]
    pub fn adj_row(&self, v: usize) -> &[u64] {
        &self.adj[v * self.words..][..self.words]
    }

    /// The vertex mask of colour `c`.
    #[inline]
    pub fn color_row(&self, c: usize) -> &[u64] {
        &self.colors[c * self.words..][..self.words]
    }

    /// The all-vertices mask.
    #[inline]
    pub fn full(&self) -> &[u64] {
        &self.full
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ColorId, Vocabulary};

    use super::super::bitset::{get_bit, popcount};
    use super::*;

    #[test]
    fn masks_match_the_graph() {
        let g = generators::periodically_colored(
            &generators::path(70, Vocabulary::new(["Red"])),
            ColorId(0),
            3,
        );
        let vg = VmGraph::new(&g);
        assert_eq!(vg.num_vertices(), 70);
        assert_eq!(vg.words(), 2);
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(
                    get_bit(vg.adj_row(u.index()), v.index()),
                    g.has_edge(u, v),
                    "adjacency mismatch at ({u}, {v})"
                );
            }
            assert_eq!(
                get_bit(vg.color_row(0), u.index()),
                g.has_color(u, ColorId(0))
            );
        }
        assert_eq!(popcount(vg.full()), 70);
    }

    #[test]
    fn empty_graph() {
        let g = generators::path(0, Vocabulary::empty());
        let vg = VmGraph::new(&g);
        assert_eq!(vg.num_vertices(), 0);
        assert_eq!(vg.words(), 0);
        assert!(vg.full().is_empty());
    }
}
