//! The batch interpreter.
//!
//! An [`Evaluator`] pins a [`Program`] to a [`VmGraph`] and owns one
//! preallocated register bank per scope (scopes are a tree and never
//! re-entered concurrently, so banks are reused across runs and lanes
//! with zero allocation on the hot path). Boolean connectives and atoms
//! execute word-parallel over the whole lane set. Quantifiers come in
//! two flavours: a semijoin `LinkQuant` evaluates its run-once remainder
//! scope a single time and reduces each lane with adjacency-row
//! intersections, while the fallback `Quant` is the only construct that
//! re-runs a child scope per lane; both reduce with `any` / `all` /
//! `popcount ≥ t`.
//!
//! Work accounting: the evaluator tallies instructions dispatched, lanes
//! covered, and bitset words touched into a [`VmStats`], and flushes the
//! totals into the `folearn-obs` counters (`vm_instructions`,
//! `vm_batch_lanes`, `vm_words_scanned`) when dropped or on
//! [`Evaluator::flush_counters`] — so any enclosing span (e.g. the
//! server's `server.solve`) picks them up automatically.

use folearn_graph::V;
use folearn_obs::{count, Counter};

use crate::formula::Var;

use super::bitset::{get_bit, set_bit};
use super::compile::{Instr, Link, Program, QuantKind};
use super::graph::VmGraph;

/// Work performed by a VM evaluator: the numbers behind the
/// `vm_*` obs counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Instructions dispatched (each covers a whole batch of lanes).
    pub instructions: u64,
    /// Lanes covered across dispatches (instructions × batch width).
    pub batch_lanes: u64,
    /// `u64` bitset words read or written.
    pub words_scanned: u64,
}

impl VmStats {
    /// Accumulate another stats block.
    pub fn merge(&mut self, other: VmStats) {
        self.instructions += other.instructions;
        self.batch_lanes += other.batch_lanes;
        self.words_scanned += other.words_scanned;
    }
}

/// A program pinned to a graph, with preallocated register banks.
pub struct Evaluator<'a> {
    prog: &'a Program,
    g: &'a VmGraph,
    /// One register bank per scope: `num_regs × words` words.
    banks: Vec<Vec<u64>>,
    /// `(lanes, words)` per scope.
    dims: Vec<(usize, usize)>,
    /// Concrete vertex per environment variable.
    env: Vec<u32>,
    /// Scratch row for semijoin reductions (one word per vertex word).
    scratch: Vec<u64>,
    stats: VmStats,
}

impl<'a> Evaluator<'a> {
    /// Allocate the register banks for `prog` over `g`.
    pub fn new(prog: &'a Program, g: &'a VmGraph) -> Self {
        let mut banks = Vec::with_capacity(prog.scopes.len());
        let mut dims = Vec::with_capacity(prog.scopes.len());
        for (i, s) in prog.scopes.iter().enumerate() {
            let (lanes, words) = if i == 0 && !prog.batched {
                (1, 1)
            } else {
                (g.num_vertices(), g.words())
            };
            dims.push((lanes, words));
            banks.push(vec![0u64; s.num_regs * words]);
        }
        Self {
            prog,
            g,
            banks,
            dims,
            env: vec![0u32; prog.env_len],
            scratch: vec![0u64; g.words()],
            stats: VmStats::default(),
        }
    }

    /// Bind the environment variables and evaluate. Returns the root
    /// result register: in batched mode a verdict bitset with one lane
    /// per vertex of the axis variable; in single mode one pseudo-lane
    /// (read it with [`Evaluator::run_bool`]).
    pub fn run(&mut self, bindings: &[(Var, V)]) -> &[u64] {
        for &(var, v) in bindings {
            if (var as usize) < self.env.len() {
                self.env[var as usize] = v.0;
            }
        }
        self.exec_scope(0);
        let (_, w) = self.dims[0];
        let r = self.prog.scopes[0].result as usize;
        &self.banks[0][r * w..][..w]
    }

    /// Evaluate a single-assignment program and return its verdict.
    pub fn run_bool(&mut self, bindings: &[(Var, V)]) -> bool {
        debug_assert!(!self.prog.batched, "run_bool is for compile_single programs");
        self.run(bindings)[0] & 1 == 1
    }

    /// The work tallied so far (since construction or the last flush).
    pub fn stats(&self) -> VmStats {
        self.stats
    }

    /// Flush the tallied work into the obs counters and reset the tally.
    pub fn flush_counters(&mut self) {
        let s = std::mem::take(&mut self.stats);
        if s.instructions > 0 {
            count(Counter::VmInstructions, s.instructions);
            count(Counter::VmBatchLanes, s.batch_lanes);
            count(Counter::VmWordsScanned, s.words_scanned);
        }
    }

    fn exec_scope(&mut self, s: usize) {
        let prog = self.prog;
        let g = self.g;
        let (lanes, w) = self.dims[s];
        let single_lane_full = [1u64];
        let full: &[u64] = if s == 0 && !prog.batched {
            &single_lane_full
        } else {
            g.full()
        };
        // Take the bank out so child scopes can be executed (each scope
        // is referenced by exactly one Quant instruction, so `s` is never
        // re-entered while its bank is out).
        let mut bank = std::mem::take(&mut self.banks[s]);
        for instr in &prog.scopes[s].instrs {
            self.stats.instructions += 1;
            self.stats.batch_lanes += lanes as u64;
            match *instr {
                Instr::Const { dst, val } => {
                    let d = dst as usize * w;
                    if val {
                        bank[d..d + w].copy_from_slice(full);
                    } else {
                        bank[d..d + w].fill(0);
                    }
                    self.stats.words_scanned += w as u64;
                }
                Instr::EqAxisEnv { dst, env } => {
                    let d = dst as usize * w;
                    bank[d..d + w].fill(0);
                    let t = self.env[env as usize] as usize;
                    if t < lanes {
                        set_bit(&mut bank[d..d + w], t);
                    }
                    self.stats.words_scanned += w as u64;
                }
                Instr::EqEnvEnv { dst, a, b } => {
                    let val = self.env[a as usize] == self.env[b as usize];
                    let d = dst as usize * w;
                    if val {
                        bank[d..d + w].copy_from_slice(full);
                    } else {
                        bank[d..d + w].fill(0);
                    }
                    self.stats.words_scanned += w as u64;
                }
                Instr::EdgeAxisEnv { dst, env } => {
                    let d = dst as usize * w;
                    let t = self.env[env as usize] as usize;
                    bank[d..d + w].copy_from_slice(g.adj_row(t));
                    self.stats.words_scanned += 2 * w as u64;
                }
                Instr::EdgeEnvEnv { dst, a, b } => {
                    let (a, b) = (self.env[a as usize], self.env[b as usize]);
                    let val = super::bitset::get_bit(g.adj_row(a as usize), b as usize);
                    let d = dst as usize * w;
                    if val {
                        bank[d..d + w].copy_from_slice(full);
                    } else {
                        bank[d..d + w].fill(0);
                    }
                    self.stats.words_scanned += w as u64;
                }
                Instr::ColorAxis { dst, color } => {
                    assert!(
                        color < g.num_colors(),
                        "colour P{color} outside the graph's vocabulary"
                    );
                    let d = dst as usize * w;
                    bank[d..d + w].copy_from_slice(g.color_row(color));
                    self.stats.words_scanned += 2 * w as u64;
                }
                Instr::ColorEnv { dst, color, env } => {
                    assert!(
                        color < g.num_colors(),
                        "colour P{color} outside the graph's vocabulary"
                    );
                    let t = self.env[env as usize] as usize;
                    let val = super::bitset::get_bit(g.color_row(color), t);
                    let d = dst as usize * w;
                    if val {
                        bank[d..d + w].copy_from_slice(full);
                    } else {
                        bank[d..d + w].fill(0);
                    }
                    self.stats.words_scanned += w as u64;
                }
                Instr::Not { dst, src } => {
                    let (d, sr) = (dst as usize * w, src as usize * w);
                    for i in 0..w {
                        bank[d + i] = !bank[sr + i] & full[i];
                    }
                    self.stats.words_scanned += 2 * w as u64;
                }
                Instr::NaryAnd { dst, ref srcs } => {
                    let d = dst as usize * w;
                    bank[d..d + w].copy_from_slice(full);
                    for &src in srcs {
                        let sr = src as usize * w;
                        for i in 0..w {
                            bank[d + i] &= bank[sr + i];
                        }
                    }
                    self.stats.words_scanned += (srcs.len() as u64 + 1) * w as u64;
                }
                Instr::NaryOr { dst, ref srcs } => {
                    let d = dst as usize * w;
                    bank[d..d + w].fill(0);
                    for &src in srcs {
                        let sr = src as usize * w;
                        for i in 0..w {
                            bank[d + i] |= bank[sr + i];
                        }
                    }
                    self.stats.words_scanned += (srcs.len() as u64 + 1) * w as u64;
                }
                Instr::Quant { kind, scope, dst } => {
                    let d = dst as usize * w;
                    // The child reads this scope's axis: pin the axis
                    // to each lane in turn. Save/restore the slot —
                    // an inner scope may rebind the same variable,
                    // and an outer pin must survive this loop.
                    let axis = prog.scopes[s].axis as usize;
                    let saved = self.env[axis];
                    bank[d..d + w].fill(0);
                    for lane in 0..lanes {
                        self.env[axis] = lane as u32;
                        self.exec_scope(scope);
                        if self.reduce(scope, kind) {
                            set_bit(&mut bank[d..d + w], lane);
                        }
                    }
                    self.env[axis] = saved;
                    self.stats.words_scanned += w as u64;
                }
                Instr::LinkQuant {
                    kind,
                    scope,
                    ref links,
                    ref guards,
                    dst,
                } => {
                    // Evaluate the axis-independent remainder once; every
                    // lane then reduces over `M ∩ links(lane)`, which is
                    // pure word-parallel row work — no child re-runs.
                    if let Some(sc) = scope {
                        self.exec_scope(sc);
                    }
                    let cw = g.words();
                    let cfull = g.full();
                    let mut row = std::mem::take(&mut self.scratch);
                    let m: Option<&[u64]> = scope.map(|sc| {
                        let r = prog.scopes[sc].result as usize;
                        &self.banks[sc][r * cw..][..cw]
                    });
                    let d = dst as usize * w;
                    bank[d..d + w].fill(0);
                    let mut words = 0u64;
                    for lane in 0..lanes {
                        let ok = guards
                            .iter()
                            .all(|&gr| get_bit(&bank[gr as usize * w..][..w], lane));
                        if ok {
                            match m {
                                Some(m) => row[..cw].copy_from_slice(m),
                                None => row[..cw].copy_from_slice(cfull),
                            }
                            for link in links {
                                match link {
                                    Link::Edge => {
                                        let ar = g.adj_row(lane);
                                        for i in 0..cw {
                                            row[i] &= ar[i];
                                        }
                                    }
                                    Link::Eq => {
                                        let keep = get_bit(&row[..cw], lane);
                                        row[..cw].fill(0);
                                        if keep {
                                            set_bit(&mut row[..cw], lane);
                                        }
                                    }
                                }
                            }
                            words += (links.len() as u64 + 2) * cw as u64;
                        } else {
                            row[..cw].fill(0);
                            words += cw as u64;
                        }
                        if reduce_row(&row[..cw], cfull, kind) {
                            set_bit(&mut bank[d..d + w], lane);
                        }
                    }
                    self.stats.words_scanned += words + w as u64;
                    self.scratch = row;
                }
            }
        }
        self.banks[s] = bank;
    }

    /// Reduce a child scope's result bitset to one verdict. Child scopes
    /// always range over the vertex set.
    fn reduce(&mut self, child: usize, kind: QuantKind) -> bool {
        let (_, w) = self.dims[child];
        let r = self.prog.scopes[child].result as usize;
        self.stats.words_scanned += w as u64;
        reduce_row(&self.banks[child][r * w..][..w], self.g.full(), kind)
    }
}

/// Reduce one row over the quantified domain to a verdict bit.
fn reduce_row(res: &[u64], full: &[u64], kind: QuantKind) -> bool {
    match kind {
        QuantKind::Exists => res.iter().any(|&x| x != 0),
        QuantKind::Forall => res == full,
        QuantKind::AtLeast(t) => {
            let t = u64::from(t);
            let mut c = 0u64;
            for &x in res {
                c += u64::from(x.count_ones());
                if c >= t {
                    return true;
                }
            }
            c >= t
        }
    }
}

impl Drop for Evaluator<'_> {
    fn drop(&mut self) {
        self.flush_counters();
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ColorId, Vocabulary};

    use crate::formula::Formula;
    use crate::parser::parse;

    use super::super::bitset::get_bit;
    use super::*;

    #[test]
    fn batched_run_matches_per_vertex_tree_walk() {
        let g = generators::periodically_colored(
            &generators::path(130, Vocabulary::new(["Red"])),
            ColorId(0),
            3,
        );
        let phi = parse(
            "exists x1. E(x0, x1) & Red(x1) & exists x2. E(x1, x2) & !Red(x2)",
            g.vocab(),
        )
        .unwrap();
        let prog = Program::compile(&phi, 0, &[]);
        let vg = VmGraph::new(&g);
        let mut ev = Evaluator::new(&prog, &vg);
        let verdicts = ev.run(&[]).to_vec();
        for v in g.vertices() {
            assert_eq!(
                get_bit(&verdicts, v.index()),
                crate::eval::satisfies(&g, &phi, &[v]),
                "diverged at {v}"
            );
        }
        let stats = ev.stats();
        assert!(stats.instructions > 0);
        assert!(stats.batch_lanes >= stats.instructions);
        assert!(stats.words_scanned > 0);
    }

    #[test]
    fn shadowed_axis_restores_outer_binding() {
        // ∃x1 ((∃x0 ∃x2 E(x0, x2)) ∧ E(x0, x1)): the inner ∃x0 pins
        // env[x0] while iterating; the later E(x0, x1) must read the
        // outer batch lane again.
        let g = generators::path(5, Vocabulary::empty());
        let phi = Formula::exists(
            1,
            Formula::and([
                Formula::exists(0, Formula::exists(2, Formula::Edge(0, 2))),
                Formula::Edge(0, 1),
            ]),
        );
        let prog = Program::compile(&phi, 0, &[]);
        let vg = VmGraph::new(&g);
        let mut ev = Evaluator::new(&prog, &vg);
        let verdicts = ev.run(&[]).to_vec();
        for v in g.vertices() {
            assert_eq!(
                get_bit(&verdicts, v.index()),
                crate::eval::satisfies(&g, &phi, &[v]),
                "diverged at {v}"
            );
        }
    }

    #[test]
    fn empty_graph_quantifiers() {
        let g = generators::path(0, Vocabulary::empty());
        let vg = VmGraph::new(&g);
        for (text, expect) in [
            ("exists x0. x0 = x0", false),
            ("forall x0. E(x0, x0)", true),
            ("exists^3 x0. x0 = x0", false),
        ] {
            let phi = parse(text, &Vocabulary::empty()).unwrap();
            let prog = Program::compile_single(&phi, &[]);
            let mut ev = Evaluator::new(&prog, &vg);
            assert_eq!(ev.run_bool(&[]), expect, "{text}");
        }
    }

    #[test]
    fn counting_quantifier_thresholds() {
        let g = generators::star(5, Vocabulary::empty());
        let v = Vocabulary::empty();
        let prog_ge2 =
            Program::compile(&parse("exists^2 x1. E(x0, x1)", &v).unwrap(), 0, &[]);
        let prog_ge5 =
            Program::compile(&parse("exists^5 x1. E(x0, x1)", &v).unwrap(), 0, &[]);
        let vg = VmGraph::new(&g);
        let ge2 = Evaluator::new(&prog_ge2, &vg).run(&[]).to_vec();
        let ge5 = Evaluator::new(&prog_ge5, &vg).run(&[]).to_vec();
        assert!(get_bit(&ge2, 0)); // the centre has 4 neighbours
        assert!(!get_bit(&ge2, 1)); // leaves have 1
        assert!(!get_bit(&ge5, 0));
    }
}
