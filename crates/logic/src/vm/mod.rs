//! Compiled formula evaluation: a register bytecode VM with batched,
//! bitset-parallel quantifier semantics.
//!
//! The recursive tree-walker in [`crate::eval`] re-traverses the AST for
//! every `(assignment, subformula)` pair. This module compiles a
//! [`Formula`] once into a linear instruction sequence ([`Program`]) and
//! evaluates *batches* of assignments per instruction dispatch: registers
//! are `u64`-word bitsets with one lane per vertex, atoms are answered
//! from per-vertex adjacency and colour masks precomputed in a
//! [`VmGraph`], and boolean connectives become word-parallel `AND`/`OR`/
//! `NOT`. Quantifiers reduce a child scope's lane set with `any`/`all`/
//! `popcount ≥ t` — so the innermost quantifier of a formula costs
//! `O(n/64)` words per assignment instead of `O(n)` recursive calls.
//!
//! The tree-walker remains the differential-testing reference (the same
//! pattern as `brute_force_erm_sequential` for the parallel sweep): the
//! [`EvalEngine`] selector lets every caller switch backends, and the
//! test suite asserts bit-identical verdicts on random formulas × random
//! graphs.
//!
//! ```
//! use folearn_graph::{generators, Vocabulary, V};
//! use folearn_logic::{parse, vm::EvalEngine};
//!
//! let g = generators::path(4, Vocabulary::empty());
//! let phi = parse("exists x1. E(x0, x1) & exists x2. E(x1, x2) & x2 != x0",
//!                 g.vocab()).unwrap();
//! assert!(EvalEngine::Vm.satisfies(&g, &phi, &[V(0)]));
//! assert_eq!(
//!     EvalEngine::Vm.satisfies(&g, &phi, &[V(0)]),
//!     EvalEngine::TreeWalk.satisfies(&g, &phi, &[V(0)]),
//! );
//! ```

mod bitset;
mod compile;
mod graph;
mod interp;

pub use bitset::{full_mask, get_bit, iter_ones, popcount, set_bit, words_for, WORD_BITS};
pub use compile::Program;
pub use graph::VmGraph;
pub use interp::{Evaluator, VmStats};

use std::fmt;
use std::str::FromStr;

use folearn_graph::{Graph, V};

use crate::eval;
use crate::formula::{Formula, Var};

/// Which formula-evaluation backend to use. `TreeWalk` is the reference
/// recursive evaluator; `Vm` is the compiled bitset VM, asserted
/// bit-identical to the reference by the differential test suite.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EvalEngine {
    /// The recursive AST walker in [`crate::eval`].
    #[default]
    TreeWalk,
    /// The compiled bytecode VM in this module.
    Vm,
}

impl EvalEngine {
    /// The stable name used on the wire, in cache keys, and by `--engine`.
    pub fn name(self) -> &'static str {
        match self {
            EvalEngine::TreeWalk => "tree",
            EvalEngine::Vm => "vm",
        }
    }

    /// `G ⊨ φ` for a sentence, via the selected backend.
    ///
    /// # Panics
    /// Panics if `φ` has free variables.
    pub fn models(self, g: &Graph, phi: &Formula) -> bool {
        match self {
            EvalEngine::TreeWalk => eval::models(g, phi),
            EvalEngine::Vm => {
                assert!(phi.is_sentence(), "models() requires a sentence");
                let prog = Program::compile_single(phi, &[]);
                let vg = VmGraph::new(g);
                let mut ev = Evaluator::new(&prog, &vg);
                ev.run_bool(&[])
            }
        }
    }

    /// `G ⊨ φ(v̄)` with `x0 … x{k−1}` bound to `tuple`, via the selected
    /// backend.
    pub fn satisfies(self, g: &Graph, phi: &Formula, tuple: &[V]) -> bool {
        match self {
            EvalEngine::TreeWalk => eval::satisfies(g, phi, tuple),
            EvalEngine::Vm => {
                let assigned: Vec<Var> = (0..tuple.len() as Var).collect();
                let prog = Program::compile_single(phi, &assigned);
                let vg = VmGraph::new(g);
                let bindings: Vec<(Var, V)> = tuple
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (i as Var, v))
                    .collect();
                let mut ev = Evaluator::new(&prog, &vg);
                ev.run_bool(&bindings)
            }
        }
    }

    /// All `k`-tuples satisfying `φ(x0, …, x{k−1})`, in the same
    /// lexicographic order as [`eval::query_answer`].
    pub fn query_answer(self, g: &Graph, phi: &Formula, k: usize) -> Vec<Vec<V>> {
        match self {
            EvalEngine::TreeWalk => eval::query_answer(g, phi, k),
            EvalEngine::Vm => vm_query_answer(g, phi, k),
        }
    }
}

impl fmt::Display for EvalEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for EvalEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tree" | "treewalk" => Ok(EvalEngine::TreeWalk),
            "vm" => Ok(EvalEngine::Vm),
            other => Err(format!("unknown engine {other:?} (expected tree or vm)")),
        }
    }
}

/// Query answering on the VM: compile once with the *innermost* tuple
/// position as the batch axis, then run once per `(k−1)`-prefix — each
/// run yields the verdicts for all `n` completions at once, and tuples
/// come out in the tree-walker's lexicographic order.
fn vm_query_answer(g: &Graph, phi: &Formula, k: usize) -> Vec<Vec<V>> {
    if k == 0 {
        return if EvalEngine::Vm.models(g, phi) {
            vec![Vec::new()]
        } else {
            Vec::new()
        };
    }
    let n = g.num_vertices();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    let axis = (k - 1) as Var;
    let assigned: Vec<Var> = (0..axis).collect();
    let prog = Program::compile(phi, axis, &assigned);
    let vg = VmGraph::new(g);
    let mut ev = Evaluator::new(&prog, &vg);
    let mut prefix = vec![0u32; k - 1];
    loop {
        let bindings: Vec<(Var, V)> = prefix
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as Var, V(x)))
            .collect();
        let verdicts = ev.run(&bindings).to_vec();
        for lane in iter_ones(&verdicts) {
            let mut t: Vec<V> = prefix.iter().map(|&x| V(x)).collect();
            t.push(V(lane as u32));
            out.push(t);
        }
        // Advance the prefix odometer (most-significant position first).
        let mut done = true;
        for p in (0..prefix.len()).rev() {
            prefix[p] += 1;
            if (prefix[p] as usize) < n {
                done = false;
                break;
            }
            prefix[p] = 0;
        }
        if done {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ColorId, Vocabulary};

    use crate::parser::parse;

    use super::*;

    fn colored_path() -> Graph {
        let g = generators::path(6, Vocabulary::new(["Red"]));
        generators::periodically_colored(&g, ColorId(0), 3)
    }

    #[test]
    fn engine_names_round_trip() {
        for e in [EvalEngine::TreeWalk, EvalEngine::Vm] {
            assert_eq!(e.name().parse::<EvalEngine>().unwrap(), e);
        }
        assert!("warp".parse::<EvalEngine>().is_err());
        assert_eq!(EvalEngine::default(), EvalEngine::TreeWalk);
    }

    #[test]
    fn engines_agree_on_models_and_satisfies() {
        let g = colored_path();
        let v = g.vocab().as_ref().clone();
        for text in [
            "exists x0. Red(x0)",
            "forall x0. Red(x0)",
            "exists x0. Red(x0) & exists x1. E(x0, x1) & Red(x1)",
            "exists^2 x0. exists x1. E(x0, x1)",
        ] {
            let phi = parse(text, &v).unwrap();
            assert_eq!(
                EvalEngine::Vm.models(&g, &phi),
                EvalEngine::TreeWalk.models(&g, &phi),
                "{text}"
            );
        }
        let open = parse("exists x1. E(x0, x1) & Red(x1)", &v).unwrap();
        for u in g.vertices() {
            assert_eq!(
                EvalEngine::Vm.satisfies(&g, &open, &[u]),
                EvalEngine::TreeWalk.satisfies(&g, &open, &[u]),
                "at {u}"
            );
        }
    }

    #[test]
    fn query_answers_agree_in_order() {
        let g = generators::path(5, Vocabulary::empty());
        let v = Vocabulary::empty();
        let phi = parse("E(x0, x1) & x0 != x1", &v).unwrap();
        assert_eq!(
            EvalEngine::Vm.query_answer(&g, &phi, 2),
            EvalEngine::TreeWalk.query_answer(&g, &phi, 2)
        );
        // k = 0 (sentence), k exceeding the mentioned variables, and an
        // empty graph all take distinct paths.
        let sentence = parse("exists x0. E(x0, x0)", &v).unwrap();
        assert_eq!(
            EvalEngine::Vm.query_answer(&g, &sentence, 0),
            EvalEngine::TreeWalk.query_answer(&g, &sentence, 0)
        );
        let empty = generators::path(0, Vocabulary::empty());
        assert_eq!(
            EvalEngine::Vm.query_answer(&empty, &phi, 2),
            EvalEngine::TreeWalk.query_answer(&empty, &phi, 2)
        );
    }

    #[test]
    fn repeated_variables_in_atoms() {
        let g = generators::path(4, Vocabulary::empty());
        let v = Vocabulary::empty();
        for text in ["E(x0, x0)", "x0 = x0", "exists x1. E(x1, x1)"] {
            let phi = parse(text, &v).unwrap();
            for u in g.vertices() {
                assert_eq!(
                    EvalEngine::Vm.satisfies(&g, &phi, &[u]),
                    EvalEngine::TreeWalk.satisfies(&g, &phi, &[u]),
                    "{text} at {u}"
                );
            }
        }
    }
}
