//! The formula → bytecode compiler.
//!
//! A [`Program`] is a tree of *scopes*. Every scope owns a flat register
//! file whose registers are bitsets over the scope's **axis** — one lane
//! per candidate value of a single distinguished variable. The root
//! scope's axis is the batch variable (one lane per vertex in batched
//! mode, a single pseudo-lane otherwise); each quantifier opens a child
//! scope whose axis is the quantified variable.
//!
//! Operand resolution happens entirely at compile time. Inside a scope,
//! a variable occurrence is either
//!
//! * the scope's own axis — the atom becomes a word-parallel mask op
//!   (adjacency row, colour mask, singleton, …), or
//! * bound by an *enclosing* scope (or supplied by the caller) — the
//!   atom reads the concrete vertex from the environment at run time and
//!   broadcasts,
//!
//! so the interpreter never inspects the AST. Quantifiers compile down
//! one of two paths:
//!
//! * **Semijoin** ([`Instr::LinkQuant`]): when the body is a conjunction
//!   whose only axis-crossing conjuncts are `E(axis, var)` / `axis = var`
//!   atoms, the axis-independent remainder is evaluated **once** as a
//!   mask over the quantified variable's domain, and each lane reduces
//!   with a single adjacency-row (or singleton) intersection. Conjuncts
//!   that never mention the quantified variable are hoisted into the
//!   enclosing scope as per-lane guards. This covers loop-invariant
//!   bodies (no links, no guards) as the degenerate case and is what
//!   makes batched evaluation beat a short-circuiting tree walk.
//! * **Per-lane fallback** ([`Instr::Quant`]): anything else — the axis
//!   occurs under a disjunction, a negation, or a nested quantifier —
//!   re-runs the child scope once per enclosing lane.

use crate::formula::{Formula, Var};

/// A register index within one scope's register file.
pub(crate) type Reg = u16;

/// The reduction a quantifier applies to its child scope's result.
#[derive(Clone, Copy, Debug)]
pub(crate) enum QuantKind {
    /// `∃`: any lane set.
    Exists,
    /// `∀`: all lanes set.
    Forall,
    /// `∃^{≥t}`: at least `t` lanes set.
    AtLeast(u32),
}

/// An axis-crossing atom a semijoin quantifier absorbs: per enclosing
/// lane `u`, the atom's truth over the quantified domain is a
/// precomputed row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Link {
    /// `E(axis, var)`: the adjacency row of `u`.
    Edge,
    /// `axis = var`: the singleton `{u}`.
    Eq,
}

/// One VM instruction. `Axis` operands were resolved to the enclosing
/// scope's axis at compile time; `Env`/`env` operands name a variable
/// whose concrete vertex the interpreter reads from the environment.
#[derive(Clone, Debug)]
pub(crate) enum Instr {
    /// `dst := ⊤/⊥` on every lane.
    Const { dst: Reg, val: bool },
    /// `dst[v] := (v == env[e])` — a singleton mask.
    EqAxisEnv { dst: Reg, env: Var },
    /// `dst := broadcast(env[a] == env[b])`.
    EqEnvEnv { dst: Reg, a: Var, b: Var },
    /// `dst[v] := E(v, env[e])` — copy an adjacency row.
    EdgeAxisEnv { dst: Reg, env: Var },
    /// `dst := broadcast(E(env[a], env[b]))`.
    EdgeEnvEnv { dst: Reg, a: Var, b: Var },
    /// `dst[v] := P_c(v)` — copy a colour mask.
    ColorAxis { dst: Reg, color: usize },
    /// `dst := broadcast(P_c(env[e]))`.
    ColorEnv { dst: Reg, color: usize, env: Var },
    /// `dst := ¬src` (masked to the live lanes).
    Not { dst: Reg, src: Reg },
    /// `dst := src₁ ∧ … ∧ srcₙ` (empty = ⊤).
    NaryAnd { dst: Reg, srcs: Vec<Reg> },
    /// `dst := src₁ ∨ … ∨ srcₙ` (empty = ⊥).
    NaryOr { dst: Reg, srcs: Vec<Reg> },
    /// Per-lane fallback quantifier: run `scope` once per lane with the
    /// enclosing axis pinned to that lane, reduce each child result by
    /// `kind`, and write one verdict bit per lane into `dst`.
    Quant {
        kind: QuantKind,
        scope: usize,
        dst: Reg,
    },
    /// Semijoin quantifier. `scope` (if any) evaluates the
    /// axis-independent remainder **once**, yielding a mask `M` over the
    /// quantified domain (no scope means `M = ⊤`). Then, per lane `u`:
    /// if any `guards` bit is clear at `u` the row is `∅`, otherwise the
    /// row is `M` intersected with each link's row for `u`; `kind`
    /// reduces the row to the verdict bit `dst[u]`.
    LinkQuant {
        kind: QuantKind,
        scope: Option<usize>,
        links: Vec<Link>,
        guards: Vec<Reg>,
        dst: Reg,
    },
}

/// One scope: a straight-line instruction sequence over a register file
/// of `num_regs` bitsets, each a lane per value of `axis`.
#[derive(Debug)]
pub(crate) struct Scope {
    pub axis: Var,
    pub instrs: Vec<Instr>,
    pub num_regs: usize,
    pub result: Reg,
}

/// A compiled formula. Compile once, evaluate many times (on any graph)
/// via [`super::Evaluator`].
#[derive(Debug)]
pub struct Program {
    pub(crate) scopes: Vec<Scope>,
    /// Whether the root axis ranges over the vertex set (batched) or a
    /// single pseudo-lane (one assignment at a time).
    pub(crate) batched: bool,
    /// Environment slots (`max referenced variable + 1`).
    pub(crate) env_len: usize,
}

impl Program {
    /// Compile `φ` for batched evaluation: the root register file has
    /// one lane per vertex, all bound to `axis`, so a single run yields
    /// `φ`'s verdict for every value of `axis` at once. Every other free
    /// variable of `φ` must be listed in `assigned` and is bound per run
    /// through the environment.
    ///
    /// # Panics
    /// Panics if `φ` mentions a variable that is neither `axis`, nor in
    /// `assigned`, nor bound by an enclosing quantifier.
    pub fn compile(phi: &Formula, axis: Var, assigned: &[Var]) -> Program {
        Self::build(phi, axis, assigned, true)
    }

    /// Compile `φ` for one assignment at a time: the root register file
    /// is a single pseudo-lane bound to a variable that cannot occur in
    /// `φ`, and every free variable must be in `assigned`.
    pub fn compile_single(phi: &Formula, assigned: &[Var]) -> Program {
        let past_phi = phi.max_var().map_or(0, |m| m + 1);
        let past_assigned = assigned.iter().copied().max().map_or(0, |m| m + 1);
        Self::build(phi, past_phi.max(past_assigned), assigned, false)
    }

    fn build(phi: &Formula, axis: Var, assigned: &[Var], batched: bool) -> Program {
        let mut c = Compiler {
            scopes: Vec::new(),
            assigned,
        };
        let root = c.new_scope(axis, phi, &mut Vec::new());
        debug_assert_eq!(root, 0);
        let env_len = usize::from(
            phi.max_var()
                .unwrap_or(0)
                .max(axis)
                .max(assigned.iter().copied().max().unwrap_or(0)),
        ) + 1;
        Program {
            scopes: c.scopes,
            batched,
            env_len,
        }
    }

    /// Total instructions across all scopes — the static code size.
    pub fn num_instructions(&self) -> usize {
        self.scopes.iter().map(|s| s.instrs.len()).sum()
    }

    /// Number of scopes (1 + number of quantifiers).
    pub fn num_scopes(&self) -> usize {
        self.scopes.len()
    }
}

struct Compiler<'a> {
    scopes: Vec<Scope>,
    assigned: &'a [Var],
}

impl Compiler<'_> {
    /// Compile `body` as a new scope with the given axis. `outer` is the
    /// chain of enclosing axes, innermost last.
    fn new_scope(&mut self, axis: Var, body: &Formula, outer: &mut Vec<Var>) -> usize {
        let id = self.scopes.len();
        self.scopes.push(Scope {
            axis,
            instrs: Vec::new(),
            num_regs: 0,
            result: 0,
        });
        outer.push(axis);
        let mut instrs = Vec::new();
        let mut next: Reg = 0;
        let result = self.emit(body, &mut instrs, &mut next, outer);
        outer.pop();
        self.scopes[id] = Scope {
            axis,
            instrs,
            num_regs: next as usize,
            result,
        };
        id
    }

    fn emit(
        &mut self,
        phi: &Formula,
        instrs: &mut Vec<Instr>,
        next: &mut Reg,
        outer: &mut Vec<Var>,
    ) -> Reg {
        match phi {
            Formula::Bool(b) => {
                let dst = alloc(next);
                instrs.push(Instr::Const { dst, val: *b });
                dst
            }
            Formula::Eq(a, b) => {
                let dst = alloc(next);
                let axis = *outer.last().expect("scope chain is never empty");
                if a == b {
                    instrs.push(Instr::Const { dst, val: true });
                } else if *a == axis {
                    let env = self.resolve(*b, outer);
                    instrs.push(Instr::EqAxisEnv { dst, env });
                } else if *b == axis {
                    let env = self.resolve(*a, outer);
                    instrs.push(Instr::EqAxisEnv { dst, env });
                } else {
                    let (a, b) = (self.resolve(*a, outer), self.resolve(*b, outer));
                    instrs.push(Instr::EqEnvEnv { dst, a, b });
                }
                dst
            }
            Formula::Edge(a, b) => {
                let dst = alloc(next);
                let axis = *outer.last().expect("scope chain is never empty");
                if a == b {
                    // E is irreflexive: E(x, x) is ⊥ on every lane.
                    instrs.push(Instr::Const { dst, val: false });
                } else if *a == axis {
                    let env = self.resolve(*b, outer);
                    instrs.push(Instr::EdgeAxisEnv { dst, env });
                } else if *b == axis {
                    // E is symmetric, so the same adjacency row serves
                    // both operand orders.
                    let env = self.resolve(*a, outer);
                    instrs.push(Instr::EdgeAxisEnv { dst, env });
                } else {
                    let (a, b) = (self.resolve(*a, outer), self.resolve(*b, outer));
                    instrs.push(Instr::EdgeEnvEnv { dst, a, b });
                }
                dst
            }
            Formula::Color(c, v) => {
                let dst = alloc(next);
                let axis = *outer.last().expect("scope chain is never empty");
                if *v == axis {
                    instrs.push(Instr::ColorAxis {
                        dst,
                        color: c.index(),
                    });
                } else {
                    let env = self.resolve(*v, outer);
                    instrs.push(Instr::ColorEnv {
                        dst,
                        color: c.index(),
                        env,
                    });
                }
                dst
            }
            Formula::Not(f) => {
                let src = self.emit(f, instrs, next, outer);
                let dst = alloc(next);
                instrs.push(Instr::Not { dst, src });
                dst
            }
            Formula::And(fs) => {
                let srcs: Vec<Reg> = fs.iter().map(|f| self.emit(f, instrs, next, outer)).collect();
                let dst = alloc(next);
                instrs.push(Instr::NaryAnd { dst, srcs });
                dst
            }
            Formula::Or(fs) => {
                let srcs: Vec<Reg> = fs.iter().map(|f| self.emit(f, instrs, next, outer)).collect();
                let dst = alloc(next);
                instrs.push(Instr::NaryOr { dst, srcs });
                dst
            }
            Formula::Exists(v, body) => {
                self.quant(QuantKind::Exists, *v, body, phi, instrs, next, outer)
            }
            Formula::Forall(v, body) => {
                self.quant(QuantKind::Forall, *v, body, phi, instrs, next, outer)
            }
            Formula::CountingExists(t, v, body) => {
                self.quant(QuantKind::AtLeast(*t), *v, body, phi, instrs, next, outer)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn quant(
        &mut self,
        kind: QuantKind,
        var: Var,
        body: &Formula,
        node: &Formula,
        instrs: &mut Vec<Instr>,
        next: &mut Reg,
        outer: &mut Vec<Var>,
    ) -> Reg {
        let axis = *outer.last().expect("scope chain is never empty");
        if let Some(d) = decompose(body, axis, var) {
            // Guards are conjuncts that never mention `var`: they hold or
            // fail uniformly across the quantified domain, so they factor
            // out of ∃/∀/∃^{≥t} alike (over the empty domain the verdict
            // is decided by the reduction and the guards are irrelevant,
            // which the zero-length row reproduces exactly).
            let guards: Vec<Reg> = d
                .guards
                .iter()
                .map(|f| self.emit(f, instrs, next, outer))
                .collect();
            let scope = if d.rest.is_empty() {
                None
            } else {
                Some(self.new_scope_conj(var, &d.rest, outer))
            };
            let dst = alloc(next);
            instrs.push(Instr::LinkQuant {
                kind,
                scope,
                links: d.links,
                guards,
                dst,
            });
            return dst;
        }
        // The axis occurs in a shape the semijoin cannot absorb: re-run
        // the child scope once per enclosing lane.
        debug_assert!(node.free_vars().contains(&axis));
        let scope = self.new_scope(var, body, outer);
        let dst = alloc(next);
        instrs.push(Instr::Quant { kind, scope, dst });
        dst
    }

    /// Compile `parts` (a conjunction, split for the semijoin) as a new
    /// scope over `axis`.
    fn new_scope_conj(&mut self, axis: Var, parts: &[&Formula], outer: &mut Vec<Var>) -> usize {
        if let [only] = parts {
            return self.new_scope(axis, only, outer);
        }
        let id = self.scopes.len();
        self.scopes.push(Scope {
            axis,
            instrs: Vec::new(),
            num_regs: 0,
            result: 0,
        });
        outer.push(axis);
        let mut instrs = Vec::new();
        let mut next: Reg = 0;
        let srcs: Vec<Reg> = parts
            .iter()
            .map(|f| self.emit(f, &mut instrs, &mut next, outer))
            .collect();
        let result = alloc(&mut next);
        instrs.push(Instr::NaryAnd { dst: result, srcs });
        outer.pop();
        self.scopes[id] = Scope {
            axis,
            instrs,
            num_regs: next as usize,
            result,
        };
        id
    }

    /// Resolve a non-axis operand: it must be bound by a strictly
    /// enclosing scope or supplied by the caller.
    fn resolve(&self, v: Var, outer: &[Var]) -> Var {
        let enclosing = &outer[..outer.len() - 1];
        assert!(
            enclosing.contains(&v) || self.assigned.contains(&v),
            "free variable x{v} is unassigned"
        );
        v
    }
}

/// The semijoin split of a quantifier body over `var` inside a scope on
/// `axis`.
#[derive(Default)]
struct Decomposed<'a> {
    /// Axis-crossing atoms absorbed into per-lane row intersections.
    links: Vec<Link>,
    /// Conjuncts not mentioning `var`: hoisted into the enclosing scope.
    guards: Vec<&'a Formula>,
    /// Conjuncts mentioning `var` but not `axis`: the run-once remainder.
    rest: Vec<&'a Formula>,
}

/// Split a quantifier body for [`Instr::LinkQuant`], or `None` if some
/// conjunct couples the axis and the quantified variable in a shape the
/// semijoin cannot absorb (under ∨, ¬, or a nested quantifier).
fn decompose(body: &Formula, axis: Var, var: Var) -> Option<Decomposed<'_>> {
    if var == axis {
        // The quantifier shadows the axis, so the body cannot read it:
        // one run-once scope covers every lane.
        return Some(Decomposed {
            rest: vec![body],
            ..Decomposed::default()
        });
    }
    let conjuncts: Vec<&Formula> = match body {
        Formula::And(fs) => fs.iter().collect(),
        f => vec![f],
    };
    let mut d = Decomposed::default();
    for f in conjuncts {
        let fv = f.free_vars();
        if !fv.contains(&var) {
            d.guards.push(f);
        } else if !fv.contains(&axis) {
            d.rest.push(f);
        } else {
            match f {
                Formula::Edge(a, b) if (*a == axis && *b == var) || (*a == var && *b == axis) => {
                    d.links.push(Link::Edge);
                }
                Formula::Eq(a, b) if (*a == axis && *b == var) || (*a == var && *b == axis) => {
                    d.links.push(Link::Eq);
                }
                _ => return None,
            }
        }
    }
    Some(d)
}

fn alloc(next: &mut Reg) -> Reg {
    let r = *next;
    *next = next
        .checked_add(1)
        .expect("formula exceeds the VM's 65536-register scope limit");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_mirror_quantifier_nesting() {
        // ∃x1 (E(x0,x1) ∧ ∀x2 (E(x1,x2) → x2 = x0))
        let phi = Formula::exists(
            1,
            Formula::and([
                Formula::Edge(0, 1),
                Formula::forall(2, Formula::Edge(1, 2).implies(Formula::Eq(2, 0))),
            ]),
        );
        let p = Program::compile(&phi, 0, &[]);
        assert_eq!(p.num_scopes(), 3);
        assert!(p.batched);
        assert_eq!(p.env_len, 3);
        assert!(p.num_instructions() >= 6);
    }

    #[test]
    fn quantifiers_compile_to_semijoins_where_possible() {
        // ∃x1 ∃x2 E(x1, x2): loop-invariant — a linkless, guardless
        // semijoin whose run-once scope serves every lane.
        let indep = Formula::exists(1, Formula::exists(2, Formula::Edge(1, 2)));
        let p = Program::compile(&indep, 0, &[]);
        let Instr::LinkQuant {
            ref links,
            ref guards,
            scope,
            ..
        } = p.scopes[0].instrs[0]
        else {
            panic!("expected a semijoin quantifier");
        };
        assert!(links.is_empty());
        assert!(guards.is_empty());
        assert!(scope.is_some());

        // ∃x1 E(x0, x1): a pure edge link — no child scope at all.
        let dep = Formula::exists(1, Formula::Edge(0, 1));
        let p = Program::compile(&dep, 0, &[]);
        let Instr::LinkQuant {
            ref links, scope, ..
        } = p.scopes[0].instrs[0]
        else {
            panic!("expected a semijoin quantifier");
        };
        assert_eq!(links.as_slice(), [Link::Edge]);
        assert!(scope.is_none());

        // ∃x1 (E(x0, x1) ∧ Red(x0) ∧ Red(x1)): link + hoisted guard +
        // run-once remainder.
        let mixed = Formula::exists(
            1,
            Formula::and([
                Formula::Edge(0, 1),
                Formula::Color(folearn_graph::ColorId(0), 0),
                Formula::Color(folearn_graph::ColorId(0), 1),
            ]),
        );
        let p = Program::compile(&mixed, 0, &[]);
        let quant = p.scopes[0]
            .instrs
            .iter()
            .find_map(|i| match i {
                Instr::LinkQuant {
                    links,
                    guards,
                    scope,
                    ..
                } => Some((links.clone(), guards.len(), *scope)),
                _ => None,
            })
            .expect("expected a semijoin quantifier");
        assert_eq!(quant.0, [Link::Edge]);
        assert_eq!(quant.1, 1);
        assert!(quant.2.is_some());

        // ∃x1 (E(x0, x1) ∨ x0 = x1): the axis under ∨ defeats the
        // semijoin — per-lane fallback.
        let hard = Formula::exists(1, Formula::or([Formula::Edge(0, 1), Formula::Eq(0, 1)]));
        let p = Program::compile(&hard, 0, &[]);
        assert!(matches!(p.scopes[0].instrs[0], Instr::Quant { .. }));
    }

    #[test]
    fn single_mode_uses_a_fresh_axis() {
        let phi = Formula::exists(1, Formula::Edge(0, 1));
        let p = Program::compile_single(&phi, &[0]);
        assert!(!p.batched);
        assert_eq!(p.scopes[0].axis, 2); // past max_var = 1
    }

    #[test]
    #[should_panic(expected = "unassigned")]
    fn unassigned_variable_is_a_compile_error() {
        let phi = Formula::Eq(0, 5);
        let _ = Program::compile_single(&phi, &[0]);
    }
}
