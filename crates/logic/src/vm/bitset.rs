//! Word-level bitset primitives shared by the VM's register file and the
//! precomputed graph masks.
//!
//! A bitset over `lanes` elements is a `&[u64]` of `words_for(lanes)`
//! words, little-endian within and across words (lane `i` is bit
//! `i % 64` of word `i / 64`). All operations keep the invariant that
//! bits at positions `≥ lanes` are zero, so whole-slice comparisons and
//! popcounts are exact.

/// Bits per register word.
pub const WORD_BITS: usize = 64;

/// Number of words needed for `lanes` bits.
#[inline]
pub fn words_for(lanes: usize) -> usize {
    lanes.div_ceil(WORD_BITS)
}

/// Set bit `i`.
#[inline]
pub fn set_bit(words: &mut [u64], i: usize) {
    words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
}

/// Read bit `i`.
#[inline]
pub fn get_bit(words: &[u64], i: usize) -> bool {
    words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
}

/// Zero the bits at positions `≥ lanes` (the partial last word).
#[inline]
pub fn mask_tail(words: &mut [u64], lanes: usize) {
    let rem = lanes % WORD_BITS;
    if rem != 0 {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << rem) - 1;
        }
    }
}

/// The all-ones mask over `lanes` bits.
pub fn full_mask(lanes: usize) -> Vec<u64> {
    let mut words = vec![!0u64; words_for(lanes)];
    mask_tail(&mut words, lanes);
    words
}

/// Total number of set bits.
#[inline]
pub fn popcount(words: &[u64]) -> u64 {
    words.iter().map(|w| u64::from(w.count_ones())).sum()
}

/// Indices of set bits, ascending.
pub fn iter_ones(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(i, &word)| {
        let mut w = word;
        std::iter::from_fn(move || {
            if w == 0 {
                None
            } else {
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(i * WORD_BITS + b)
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_and_tail_masking() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(full_mask(0), Vec::<u64>::new());
        assert_eq!(full_mask(64), vec![!0u64]);
        assert_eq!(full_mask(65), vec![!0u64, 1]);
        assert_eq!(popcount(&full_mask(130)), 130);
    }

    #[test]
    fn bits_round_trip() {
        let mut w = vec![0u64; 2];
        for i in [0usize, 63, 64, 100] {
            assert!(!get_bit(&w, i));
            set_bit(&mut w, i);
            assert!(get_bit(&w, i));
        }
        assert_eq!(iter_ones(&w).collect::<Vec<_>>(), vec![0, 63, 64, 100]);
        assert_eq!(popcount(&w), 4);
    }
}
