//! First-order logic over coloured graphs.
//!
//! The hypothesis language of the paper is first-order logic `FO[τ]` over
//! vocabularies `τ = {E, P_1, …, P_c}` of coloured graphs. This crate
//! provides:
//!
//! * the formula AST with quantifier rank, free variables and smart
//!   constructors ([`formula`]);
//! * a text syntax with a recursive-descent parser and a round-tripping
//!   pretty-printer ([`parser`]);
//! * the naive recursive model-checking evaluator — the `XP` algorithm
//!   that both the reduction of Theorem 1 targets and the learners use as
//!   a subroutine ([`eval`]);
//! * the formula surgeries performed inside the paper's proofs:
//!   specialising a free variable to a marked vertex (`P_t`/`Q_t`
//!   relativisation from Lemma 7), erasing colour atoms (`P_i(z) ↦ ⊥`),
//!   bounded-distance formulas via doubling, `r`-localisation of
//!   quantifiers, and boolean simplification ([`transform`]);
//! * seeded random formula generation for tests and benchmarks
//!   ([`random`]);
//! * a compiled evaluator: a register bytecode VM with batched,
//!   bitset-parallel quantifier semantics, differentially tested against
//!   the tree-walker and selectable via [`vm::EvalEngine`] ([`vm`]).

pub mod eval;
pub mod formula;
pub mod parser;
pub mod random;
pub mod transform;
pub mod vm;

pub use formula::{Formula, Var};
pub use parser::{parse, ParseError};
pub use vm::EvalEngine;
