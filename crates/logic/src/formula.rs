//! The first-order formula AST.
//!
//! Formulas are over the vocabulary of coloured graphs: the binary edge
//! relation `E`, equality, and unary colour predicates. Variables are
//! plain indices `x0, x1, …`; the paper's split `φ(x̄; ȳ)` into instance
//! variables `x̄` and parameter variables `ȳ` is a convention on indices
//! (instance variables come first), enforced by the learner crate rather
//! than the AST.

use std::collections::BTreeSet;
use std::fmt;

use folearn_graph::ColorId;

/// A variable, identified by index (`x{n}` in the text syntax).
pub type Var = u16;

/// A first-order formula over coloured graphs.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula {
    /// `⊤` / `⊥`.
    Bool(bool),
    /// `x = y`.
    Eq(Var, Var),
    /// `E(x, y)`.
    Edge(Var, Var),
    /// `P(x)` for colour `P`.
    Color(ColorId, Var),
    /// Negation.
    Not(Box<Formula>),
    /// n-ary conjunction (empty = `⊤`).
    And(Vec<Formula>),
    /// n-ary disjunction (empty = `⊥`).
    Or(Vec<Formula>),
    /// `∃x φ`.
    Exists(Var, Box<Formula>),
    /// `∀x φ`.
    Forall(Var, Box<Formula>),
    /// `∃^{≥t} x φ` — the counting quantifier of FO+C ("at least `t`
    /// witnesses"), the extension named in the paper's conclusion
    /// (van Bergerem, LICS 2019). `t = 1` is plain `∃`.
    CountingExists(u32, Var, Box<Formula>),
}

impl Formula {
    /// `⊤`.
    pub const TRUE: Formula = Formula::Bool(true);
    /// `⊥`.
    pub const FALSE: Formula = Formula::Bool(false);

    /// Smart negation: collapses double negation and constants.
    /// (Deliberately named like `std::ops::Not::not`; it is the DSL's
    /// negation and behaves identically to a `Not` impl would.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        match self {
            Formula::Bool(b) => Formula::Bool(!b),
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Smart conjunction: flattens nested `And`s, drops `⊤`, shortcuts `⊥`.
    pub fn and(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::Bool(true) => {}
                Formula::Bool(false) => return Formula::FALSE,
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::TRUE,
            1 => out.pop().unwrap(),
            _ => Formula::And(out),
        }
    }

    /// Smart disjunction: flattens nested `Or`s, drops `⊥`, shortcuts `⊤`.
    pub fn or(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::Bool(false) => {}
                Formula::Bool(true) => return Formula::TRUE,
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::FALSE,
            1 => out.pop().unwrap(),
            _ => Formula::Or(out),
        }
    }

    /// `φ → ψ` as `¬φ ∨ ψ`.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::or([self.not(), other])
    }

    /// `φ ↔ ψ`.
    pub fn iff(self, other: Formula) -> Formula {
        Formula::and([
            self.clone().implies(other.clone()),
            other.implies(self),
        ])
    }

    /// `∃x φ`.
    pub fn exists(v: Var, body: Formula) -> Formula {
        Formula::Exists(v, Box::new(body))
    }

    /// `∀x φ`.
    pub fn forall(v: Var, body: Formula) -> Formula {
        Formula::Forall(v, Box::new(body))
    }

    /// `∃^{≥t} x φ`; `t = 0` is `⊤`, `t = 1` collapses to plain `∃`.
    pub fn counting_exists(t: u32, v: Var, body: Formula) -> Formula {
        match t {
            0 => Formula::TRUE,
            1 => Formula::exists(v, body),
            _ => Formula::CountingExists(t, v, Box::new(body)),
        }
    }

    /// The quantifier rank (maximum quantifier nesting depth).
    pub fn quantifier_rank(&self) -> usize {
        match self {
            Formula::Bool(_) | Formula::Eq(..) | Formula::Edge(..) | Formula::Color(..) => 0,
            Formula::Not(f) => f.quantifier_rank(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(Formula::quantifier_rank).max().unwrap_or(0)
            }
            Formula::Exists(_, f)
            | Formula::Forall(_, f)
            | Formula::CountingExists(_, _, f) => 1 + f.quantifier_rank(),
        }
    }

    /// The set of free variables, sorted.
    pub fn free_vars(&self) -> Vec<Var> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut BTreeSet::new(), &mut out);
        out.into_iter().collect()
    }

    fn collect_free(&self, bound: &mut BTreeSet<Var>, out: &mut BTreeSet<Var>) {
        match self {
            Formula::Bool(_) => {}
            Formula::Eq(a, b) | Formula::Edge(a, b) => {
                for v in [a, b] {
                    if !bound.contains(v) {
                        out.insert(*v);
                    }
                }
            }
            Formula::Color(_, v) => {
                if !bound.contains(v) {
                    out.insert(*v);
                }
            }
            Formula::Not(f) => f.collect_free(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            Formula::Exists(v, f)
            | Formula::Forall(v, f)
            | Formula::CountingExists(_, v, f) => {
                let fresh = bound.insert(*v);
                f.collect_free(bound, out);
                if fresh {
                    bound.remove(v);
                }
            }
        }
    }

    /// Whether the formula is a sentence (no free variables).
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// The largest variable index mentioned anywhere (free or bound);
    /// `None` for variable-free formulas. Useful when minting fresh
    /// variables during transforms.
    pub fn max_var(&self) -> Option<Var> {
        match self {
            Formula::Bool(_) => None,
            Formula::Eq(a, b) | Formula::Edge(a, b) => Some(*a.max(b)),
            Formula::Color(_, v) => Some(*v),
            Formula::Not(f) => f.max_var(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().filter_map(Formula::max_var).max(),
            Formula::Exists(v, f)
            | Formula::Forall(v, f)
            | Formula::CountingExists(_, v, f) => {
                Some(f.max_var().map_or(*v, |m| m.max(*v)))
            }
        }
    }

    /// Total number of AST nodes — the `|φ|` of the parameterization.
    pub fn size(&self) -> usize {
        match self {
            Formula::Bool(_) | Formula::Eq(..) | Formula::Edge(..) | Formula::Color(..) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => {
                1 + fs.iter().map(Formula::size).sum::<usize>()
            }
            Formula::Exists(_, f)
            | Formula::Forall(_, f)
            | Formula::CountingExists(_, _, f) => 1 + f.size(),
        }
    }

    /// Rename every occurrence (free and bound) of variables via the map.
    /// The map must be injective on the variables that occur.
    pub fn rename_vars(&self, map: &dyn Fn(Var) -> Var) -> Formula {
        match self {
            Formula::Bool(b) => Formula::Bool(*b),
            Formula::Eq(a, b) => Formula::Eq(map(*a), map(*b)),
            Formula::Edge(a, b) => Formula::Edge(map(*a), map(*b)),
            Formula::Color(c, v) => Formula::Color(*c, map(*v)),
            Formula::Not(f) => Formula::Not(Box::new(f.rename_vars(map))),
            Formula::And(fs) => Formula::And(fs.iter().map(|f| f.rename_vars(map)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|f| f.rename_vars(map)).collect()),
            Formula::Exists(v, f) => Formula::Exists(map(*v), Box::new(f.rename_vars(map))),
            Formula::Forall(v, f) => Formula::Forall(map(*v), Box::new(f.rename_vars(map))),
            Formula::CountingExists(t, v, f) => {
                Formula::CountingExists(*t, map(*v), Box::new(f.rename_vars(map)))
            }
        }
    }
}

/// Display renders the round-trippable text syntax (colours printed as
/// `P{index}`; use [`crate::parser::render`] to print with colour names).
impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0, &|c, out| write!(out, "P{}", c.0))
    }
}

impl Formula {
    /// Precedence-aware printer; `color_name` renders colour atoms.
    pub(crate) fn fmt_prec(
        &self,
        f: &mut fmt::Formatter<'_>,
        prec: u8,
        color_name: &dyn Fn(ColorId, &mut fmt::Formatter<'_>) -> fmt::Result,
    ) -> fmt::Result {
        // Precedence levels: 0 = quantifier body, 1 = or, 2 = and, 3 = unary.
        match self {
            Formula::Bool(true) => write!(f, "true"),
            Formula::Bool(false) => write!(f, "false"),
            Formula::Eq(a, b) => write!(f, "x{a} = x{b}"),
            Formula::Edge(a, b) => write!(f, "E(x{a}, x{b})"),
            Formula::Color(c, v) => {
                color_name(*c, f)?;
                write!(f, "(x{v})")
            }
            Formula::Not(inner) => {
                write!(f, "!")?;
                inner.fmt_prec(f, 3, color_name)
            }
            Formula::And(fs) => {
                let need_parens = prec > 2;
                if need_parens {
                    write!(f, "(")?;
                }
                for (i, p) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    p.fmt_prec(f, 3, color_name)?;
                }
                if need_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Formula::Or(fs) => {
                let need_parens = prec > 1;
                if need_parens {
                    write!(f, "(")?;
                }
                for (i, p) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    p.fmt_prec(f, 2, color_name)?;
                }
                if need_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Formula::Exists(v, body) => {
                let need_parens = prec > 0;
                if need_parens {
                    write!(f, "(")?;
                }
                write!(f, "exists x{v}. ")?;
                body.fmt_prec(f, 0, color_name)?;
                if need_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Formula::Forall(v, body) => {
                let need_parens = prec > 0;
                if need_parens {
                    write!(f, "(")?;
                }
                write!(f, "forall x{v}. ")?;
                body.fmt_prec(f, 0, color_name)?;
                if need_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Formula::CountingExists(t, v, body) => {
                let need_parens = prec > 0;
                if need_parens {
                    write!(f, "(")?;
                }
                write!(f, "exists^{t} x{v}. ")?;
                body.fmt_prec(f, 0, color_name)?;
                if need_parens {
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantifier_rank_nested() {
        // ∃x0 ((∀x1 E(x0,x1)) ∧ ∃x1 ∃x2 x1 = x2) has rank 3.
        let phi = Formula::exists(
            0,
            Formula::and([
                Formula::forall(1, Formula::Edge(0, 1)),
                Formula::exists(1, Formula::exists(2, Formula::Eq(1, 2))),
            ]),
        );
        assert_eq!(phi.quantifier_rank(), 3);
    }

    #[test]
    fn free_vars_respect_binding() {
        // ∃x1 (E(x0, x1) ∧ x2 = x1): free = {x0, x2}.
        let phi = Formula::exists(
            1,
            Formula::and([Formula::Edge(0, 1), Formula::Eq(2, 1)]),
        );
        assert_eq!(phi.free_vars(), vec![0, 2]);
        assert!(!phi.is_sentence());
    }

    #[test]
    fn rebinding_shadows() {
        // E(x0, x1) ∧ ∃x0 E(x0, x0'): the outer x0 is free in the left
        // conjunct only.
        let phi = Formula::and([
            Formula::Edge(0, 1),
            Formula::exists(0, Formula::Color(ColorId(0), 0)),
        ]);
        assert_eq!(phi.free_vars(), vec![0, 1]);
    }

    #[test]
    fn smart_constructors_fold_constants() {
        assert_eq!(
            Formula::and([Formula::TRUE, Formula::Eq(0, 1)]),
            Formula::Eq(0, 1)
        );
        assert_eq!(
            Formula::and([Formula::FALSE, Formula::Eq(0, 1)]),
            Formula::FALSE
        );
        assert_eq!(Formula::or([]), Formula::FALSE);
        assert_eq!(Formula::and([]), Formula::TRUE);
        assert_eq!(Formula::TRUE.not(), Formula::FALSE);
        assert_eq!(Formula::Eq(0, 1).not().not(), Formula::Eq(0, 1));
    }

    #[test]
    fn flattening() {
        let phi = Formula::and([
            Formula::and([Formula::Eq(0, 1), Formula::Eq(1, 2)]),
            Formula::Eq(2, 3),
        ]);
        assert_eq!(
            phi,
            Formula::And(vec![
                Formula::Eq(0, 1),
                Formula::Eq(1, 2),
                Formula::Eq(2, 3)
            ])
        );
    }

    #[test]
    fn display_round_structure() {
        let phi = Formula::exists(
            0,
            Formula::or([
                Formula::and([Formula::Edge(0, 1), Formula::Eq(0, 1).not()]),
                Formula::Color(ColorId(2), 0),
            ]),
        );
        assert_eq!(
            phi.to_string(),
            "exists x0. E(x0, x1) & !x0 = x1 | P2(x0)"
        );
    }

    #[test]
    fn size_and_max_var() {
        let phi = Formula::exists(5, Formula::Edge(5, 2));
        assert_eq!(phi.size(), 2);
        assert_eq!(phi.max_var(), Some(5));
        assert_eq!(Formula::TRUE.max_var(), None);
    }

    #[test]
    fn rename() {
        let phi = Formula::exists(1, Formula::Edge(0, 1));
        let renamed = phi.rename_vars(&|v| v + 10);
        assert_eq!(renamed, Formula::exists(11, Formula::Edge(10, 11)));
    }
}
