//! Differential proptests for the bytecode VM: on random formulas ×
//! random graphs, every VM verdict must be bit-identical to the
//! recursive tree-walker — for every assignment, in single-shot mode,
//! in batched mode, and for whole query answers. Edge cases covered by
//! the strategies: empty graphs, quantifier rank 0, counting
//! quantifiers, and repeated variables in `Eq`/`Edge` atoms (the random
//! generator emits them freely).

use proptest::prelude::*;

use folearn_graph::{ColorId, Graph, GraphBuilder, Vocabulary, V};
use folearn_logic::random::{random_formula, RandomFormulaConfig};
use folearn_logic::vm::{get_bit, EvalEngine, Evaluator, Program, VmGraph};
use folearn_logic::{eval, Formula};

/// Random coloured graphs, *including* the empty graph.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (
        0usize..9,
        proptest::collection::vec((0u32..9, 0u32..9), 0..16),
        0u64..(1 << 18),
    )
        .prop_map(|(n, edges, mask)| {
            let vocab = Vocabulary::new(["Red", "Blue"]);
            let mut b = GraphBuilder::with_vertices(vocab, n);
            for (u, v) in edges {
                if n > 0 {
                    let (u, v) = (u % n as u32, v % n as u32);
                    if u != v {
                        b.add_edge(V(u), V(v));
                    }
                }
            }
            for i in 0..n {
                if mask >> i & 1 == 1 {
                    b.set_color(V(i as u32), ColorId(0));
                }
                if mask >> (i + 9) & 1 == 1 {
                    b.set_color(V(i as u32), ColorId(1));
                }
            }
            b.build()
        })
}

fn cfg(free_vars: u16, qr: usize, cap: Option<u32>) -> RandomFormulaConfig {
    RandomFormulaConfig {
        free_vars,
        quantifier_rank: qr,
        max_fanout: 3,
        bool_depth: 2,
        counting_cap: cap,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn single_shot_bit_identical_on_every_assignment(
        g in arb_graph(), seed in 0u64..1000, qr in 0usize..3
    ) {
        // qr = 0 exercises the quantifier-free (pure word-op) path.
        let phi = random_formula(g.vocab(), &cfg(2, qr, None), seed);
        let prog = Program::compile_single(&phi, &[0, 1]);
        let vg = VmGraph::new(&g);
        let mut ev = Evaluator::new(&prog, &vg);
        for u in g.vertices() {
            for v in g.vertices() {
                prop_assert_eq!(
                    ev.run_bool(&[(0, u), (1, v)]),
                    eval::satisfies(&g, &phi, &[u, v]),
                    "formula {} at ({}, {})", phi, u, v
                );
            }
        }
    }

    #[test]
    fn batched_lanes_bit_identical(g in arb_graph(), seed in 0u64..1000) {
        // One batch run per parameter value: lane v of the result must
        // equal the tree-walker's verdict on (v, param).
        let phi = random_formula(g.vocab(), &cfg(2, 2, None), seed);
        let prog = Program::compile(&phi, 0, &[1]);
        let vg = VmGraph::new(&g);
        let mut ev = Evaluator::new(&prog, &vg);
        for param in g.vertices() {
            let verdicts = ev.run(&[(1, param)]).to_vec();
            for u in g.vertices() {
                prop_assert_eq!(
                    get_bit(&verdicts, u.index()),
                    eval::satisfies(&g, &phi, &[u, param]),
                    "formula {} lane {} param {}", phi, u, param
                );
            }
        }
    }

    #[test]
    fn sentences_agree_including_empty_graphs(
        g in arb_graph(), seed in 0u64..1000
    ) {
        // The generator may emit x0 atoms even with no free-variable
        // budget, so close the formula explicitly to get a sentence.
        let phi = Formula::exists(0, random_formula(g.vocab(), &cfg(1, 2, None), seed));
        prop_assert_eq!(
            EvalEngine::Vm.models(&g, &phi),
            EvalEngine::TreeWalk.models(&g, &phi),
            "sentence {}", phi
        );
    }

    #[test]
    fn counting_quantifiers_bit_identical(
        g in arb_graph(), seed in 0u64..1000
    ) {
        let phi = random_formula(g.vocab(), &cfg(1, 2, Some(3)), seed);
        let prog = Program::compile(&phi, 0, &[]);
        let vg = VmGraph::new(&g);
        let mut ev = Evaluator::new(&prog, &vg);
        let verdicts = ev.run(&[]).to_vec();
        for u in g.vertices() {
            prop_assert_eq!(
                get_bit(&verdicts, u.index()),
                eval::satisfies(&g, &phi, &[u]),
                "formula {} at {}", phi, u
            );
        }
    }

    #[test]
    fn query_answers_identical_with_order(g in arb_graph(), seed in 0u64..500) {
        let phi = random_formula(g.vocab(), &cfg(2, 1, None), seed);
        prop_assert_eq!(
            EvalEngine::Vm.query_answer(&g, &phi, 2),
            EvalEngine::TreeWalk.query_answer(&g, &phi, 2),
            "formula {}", phi
        );
    }
}

#[test]
fn repeated_variable_atoms_under_quantifiers() {
    // Handwritten shapes the compiler special-cases: Eq/Edge on one
    // variable, free and bound, plus shadowed rebinding of the axis.
    let g = {
        let mut b = GraphBuilder::with_vertices(Vocabulary::new(["Red"]), 5);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)] {
            b.add_edge(V(u), V(v));
        }
        b.set_color(V(2), ColorId(0));
        b.build()
    };
    let cases = [
        Formula::Edge(0, 0),
        Formula::Eq(0, 0),
        Formula::exists(1, Formula::and([Formula::Edge(1, 1), Formula::Eq(0, 1)])),
        Formula::forall(1, Formula::or([Formula::Eq(1, 1), Formula::Edge(0, 1)])),
        // The inner ∃x0 shadows the batch axis and must restore it.
        Formula::exists(
            1,
            Formula::and([
                Formula::exists(0, Formula::Color(ColorId(0), 0)),
                Formula::Edge(0, 1),
            ]),
        ),
        Formula::counting_exists(2, 1, Formula::Edge(0, 1)),
    ];
    for phi in &cases {
        for u in g.vertices() {
            assert_eq!(
                EvalEngine::Vm.satisfies(&g, phi, &[u]),
                EvalEngine::TreeWalk.satisfies(&g, phi, &[u]),
                "{phi} at {u}"
            );
        }
    }
}
