//! Crash-recovery loopback tests: a daemon with `--data-dir` must come
//! back from a restart with bit-identical state — same structure
//! registry, same hypothesis ids and predictions — without any client
//! re-registering, including after a torn WAL tail and across snapshot
//! compactions.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use folearn_server::proto::Json;
use folearn_server::{
    start, Client, ClientApi, ServerConfig, SolverSpec, WireExample,
};

const GRAPH: &str = "colors Red Blue\nvertices 6\nedge 0 1\nedge 1 2\nedge 2 3\nedge 3 4\nedge 4 5\ncolor 0 Red\ncolor 2 Red\ncolor 4 Red\ncolor 1 Blue\ncolor 3 Blue\ncolor 5 Blue\n";

static CASE: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "folearn-recovery-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample() -> Vec<WireExample> {
    (0..6u32)
        .map(|v| WireExample {
            tuple: vec![v],
            label: v % 2 == 0,
        })
        .collect()
}

fn durable_config(dir: &std::path::Path, snapshot_every: usize) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.to_path_buf()),
        snapshot_every,
        ..ServerConfig::default()
    }
}

fn stat_num(stats: &Json, key: &str) -> f64 {
    stats
        .get(key)
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("stats key {key} missing or non-numeric"))
}

#[test]
fn restart_replays_registry_and_hypotheses_bit_identically() {
    let dir = fresh_dir("replay");

    // Session 1: register, learn under two configs, remember everything
    // a client could later depend on.
    let (structure, pre_inventory, outcome_a, outcome_b, predictions) = {
        let handle = start(&durable_config(&dir, 0)).expect("durable server starts");
        let mut client = Client::connect(handle.addr()).expect("connect");
        let structure = client.register(GRAPH).expect("register");
        let outcome_a = client
            .solve(structure, sample(), 1, 1, 0.0, SolverSpec::default_brute())
            .expect("solve brute");
        let outcome_b = client
            .solve(structure, sample(), 1, 1, 0.0, SolverSpec::Nd)
            .expect("solve nd");
        assert_ne!(outcome_a.hypothesis.id, outcome_b.hypothesis.id);
        let tuples: Vec<Vec<u32>> = (0..6u32).map(|v| vec![v]).collect();
        let (predictions, _) = client
            .evaluate(structure, outcome_a.hypothesis.id, tuples, None)
            .expect("evaluate");
        let inventory = client.inventory().expect("inventory");
        let stats = client.stats().expect("stats");
        assert_eq!(stats.get("durable").and_then(Json::as_bool), Some(true));
        assert_eq!(stat_num(&stats, "wal_records_replayed"), 0.0);
        assert!(
            stat_num(&stats, "wal_records_written") >= 3.0,
            "register + two solves hit the WAL"
        );
        handle.shutdown();
        (structure, inventory, outcome_a, outcome_b, predictions)
    };

    // Session 2: same data dir, nobody re-registers anything.
    let handle = start(&durable_config(&dir, 0)).expect("restart replays");
    let mut client = Client::connect(handle.addr()).expect("reconnect");

    let post_inventory = client.inventory().expect("inventory after restart");
    assert_eq!(
        post_inventory, pre_inventory,
        "registry and hypothesis store survive the restart as-is"
    );

    // The pre-crash hypothesis id answers evaluate directly…
    let tuples: Vec<Vec<u32>> = (0..6u32).map(|v| vec![v]).collect();
    let (replayed_predictions, _) = client
        .evaluate(structure, outcome_a.hypothesis.id, tuples, None)
        .expect("evaluate pre-crash id after restart");
    assert_eq!(replayed_predictions, predictions, "bit-identical answers");

    // …and a repeated solve reconstructs the same hypothesis under the
    // same id, for both solver configs.
    for (spec, pre) in [
        (SolverSpec::default_brute(), &outcome_a),
        (SolverSpec::Nd, &outcome_b),
    ] {
        let again = client
            .solve(structure, sample(), 1, 1, 0.0, spec)
            .expect("re-solve after restart");
        assert_eq!(again.hypothesis.id, pre.hypothesis.id, "id survives");
        assert_eq!(again.hypothesis.params, pre.hypothesis.params);
        assert_eq!(again.hypothesis.types, pre.hypothesis.types);
        assert_eq!(again.hypothesis.type_keys, pre.hypothesis.type_keys);
        assert_eq!(again.error, pre.error);
    }

    // Fresh ids allocated after the restart never collide with replayed
    // ones.
    let fresh = client
        .solve(structure, sample(), 1, 2, 0.0, SolverSpec::default_brute())
        .expect("fresh solve after restart");
    assert!(
        fresh.hypothesis.id > outcome_b.hypothesis.id,
        "id allocation resumes past the replayed maximum"
    );

    let stats = client.stats().expect("stats after restart");
    assert_eq!(stats.get("durable").and_then(Json::as_bool), Some(true));
    assert!(
        stat_num(&stats, "wal_records_replayed") >= 3.0,
        "register + two solves replayed"
    );
    assert_eq!(stat_num(&stats, "torn_tail_truncations"), 0.0);
    assert!(stats.get("recovery_ms").and_then(Json::as_num).is_some());
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_truncated_and_counted() {
    let dir = fresh_dir("torn");
    let pre_inventory = {
        let handle = start(&durable_config(&dir, 0)).expect("durable server starts");
        let mut client = Client::connect(handle.addr()).expect("connect");
        let structure = client.register(GRAPH).expect("register");
        client
            .solve(structure, sample(), 1, 1, 0.0, SolverSpec::default_brute())
            .expect("solve");
        let inventory = client.inventory().expect("inventory");
        handle.shutdown();
        inventory
    };

    // A crash mid-append: garbage half-frame at the WAL tail.
    let wal_path = dir.join("wal.log");
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&wal_path)
            .expect("open wal");
        f.write_all(&[0x99, 0x12, 0x34]).expect("append torn tail");
    }
    let torn_len = std::fs::metadata(&wal_path).unwrap().len();

    let handle = start(&durable_config(&dir, 0)).expect("restart tolerates the tear");
    let mut client = Client::connect(handle.addr()).expect("reconnect");
    assert_eq!(client.inventory().expect("inventory"), pre_inventory);
    let stats = client.stats().expect("stats");
    assert_eq!(stat_num(&stats, "torn_tail_truncations"), 1.0);
    assert!(stat_num(&stats, "wal_records_replayed") >= 2.0);
    assert!(
        std::fs::metadata(&wal_path).unwrap().len() < torn_len,
        "the tear was physically truncated"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_compaction_survives_restart_and_empties_the_wal() {
    let dir = fresh_dir("compact");
    let pre_inventory = {
        // snapshot_every = 2: the register + first solve trigger a
        // compaction, the second solve lands in the fresh WAL.
        let handle = start(&durable_config(&dir, 2)).expect("durable server starts");
        let mut client = Client::connect(handle.addr()).expect("connect");
        let structure = client.register(GRAPH).expect("register");
        client
            .solve(structure, sample(), 1, 1, 0.0, SolverSpec::default_brute())
            .expect("solve 1");
        client
            .solve(structure, sample(), 1, 1, 0.0, SolverSpec::Nd)
            .expect("solve 2");
        let inventory = client.inventory().expect("inventory");
        handle.shutdown();
        inventory
    };
    assert!(
        std::fs::metadata(dir.join("snapshot.log")).unwrap().len() > 0,
        "compaction produced a snapshot"
    );

    let handle = start(&durable_config(&dir, 2)).expect("restart loads the snapshot");
    let mut client = Client::connect(handle.addr()).expect("reconnect");
    assert_eq!(client.inventory().expect("inventory"), pre_inventory);
    let stats = client.stats().expect("stats");
    assert_eq!(stat_num(&stats, "snapshot_loads"), 1.0);
    assert!(stat_num(&stats, "wal_records_replayed") >= 3.0);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn data_dir_less_serving_stays_volatile() {
    // No data dir: nothing is written anywhere, and stats say so.
    let handle = start(&ServerConfig::default()).expect("volatile server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let structure = client.register(GRAPH).expect("register");
    client
        .solve(structure, sample(), 1, 1, 0.0, SolverSpec::default_brute())
        .expect("solve");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("durable").and_then(Json::as_bool), Some(false));
    assert_eq!(stat_num(&stats, "wal_records_written"), 0.0);
    assert_eq!(stat_num(&stats, "wal_records_replayed"), 0.0);
    handle.shutdown();
}
