//! Property tests for the durability layer: arbitrary mutation
//! sequences logged through [`Durability`] and replayed must equal
//! direct application (modulo compaction, which is exactly dedup of
//! registers plus last-write-wins per solve id), and recovery must
//! succeed — yielding a clean record prefix — at *every* byte-length
//! prefix of a valid log (crash-at-any-point tolerance).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use folearn::TypeMode;
use folearn_logic::vm::EvalEngine;
use folearn_server::proto::{Request, SolverSpec, WireExample};
use folearn_server::snapshot::{DurableRecord, Durability, WAL_FILE};
use folearn_server::wal::HEADER_LEN;
use proptest::collection;
use proptest::prelude::*;

static CASE: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch data dir per proptest case (cases run in sequence
/// but must never see each other's files).
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "folearn-walprop-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::SeqCst)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The reference semantics of the durable state: registers dedup'd in
/// first-seen order, solves keyed by id with last write winning.
#[derive(Debug, Default, PartialEq)]
struct Model {
    registers: Vec<String>,
    solves: BTreeMap<u64, DurableRecord>,
}

impl Model {
    fn apply(&mut self, r: &DurableRecord) {
        match r {
            DurableRecord::Register { graph_text } => {
                if !self.registers.iter().any(|g| g == graph_text) {
                    self.registers.push(graph_text.clone());
                }
            }
            DurableRecord::Solve { id, .. } => {
                self.solves.insert(*id, r.clone());
            }
        }
    }

    fn applied(records: &[DurableRecord]) -> Self {
        let mut m = Self::default();
        for r in records {
            m.apply(r);
        }
        m
    }
}

fn record_strategy() -> impl Strategy<Value = DurableRecord> {
    // Mutation mix via a discriminant (the vendored proptest has no
    // `prop_oneof!`): roughly 1/3 registers from a small text pool so
    // duplicates (the dedup path) actually occur — newlines and
    // non-ASCII stress the codec — and 2/3 solves with clashing ids.
    (0u32..3, 0usize..6, 1u64..12, 0u64..4, 0usize..3, 0u32..1000).prop_map(
        |(kind, pool, id, structure, ell, eps_mil)| {
            if kind == 0 {
                return DurableRecord::Register {
                    graph_text: format!("graph-{pool}: å∀\n{}", "v ".repeat(pool)),
                };
            }
            DurableRecord::Solve {
                id,
                request: Request::Solve {
                    structure,
                    examples: vec![
                        WireExample {
                            tuple: vec![structure as u32, 1],
                            label: true,
                        },
                        WireExample {
                            tuple: vec![2],
                            label: false,
                        },
                    ],
                    ell,
                    q: ell + 1,
                    epsilon: f64::from(eps_mil) / 1000.0,
                    solver: if kind == 1 {
                        SolverSpec::Nd
                    } else {
                        SolverSpec::Brute {
                            mode: TypeMode::Local { r: 2 },
                            threads: Some(1),
                            prune: true,
                            engine: EvalEngine::Vm,
                        }
                    },
                    trace: None,
                },
            }
        },
    )
}

proptest! {
    // Every append fsyncs twice, so keep the case count modest; the
    // interesting coverage is the record mix and the compaction cadence,
    // not raw volume.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Log → replay ≡ direct application, across compaction boundaries:
    /// `snapshot_every` as low as 1 forces a compaction on almost every
    /// append.
    #[test]
    fn replay_equals_direct_application(
        records in collection::vec(record_strategy(), 0..24),
        snapshot_every in 1usize..8,
    ) {
        let dir = fresh_dir("replay");
        {
            let (mut durable, replayed, stats) = Durability::open(&dir, snapshot_every).unwrap();
            prop_assert!(replayed.is_empty(), "fresh dir replays nothing");
            prop_assert_eq!(stats.records_replayed(), 0);
            for r in &records {
                durable.append(r).unwrap();
            }
        }
        let (_durable, replayed, stats) = Durability::open(&dir, snapshot_every).unwrap();
        prop_assert_eq!(Model::applied(&replayed), Model::applied(&records));
        prop_assert_eq!(stats.records_replayed() as usize, replayed.len());
        prop_assert_eq!(stats.torn_tail_truncations, 0, "a clean log has no tear");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Cut the WAL at an arbitrary byte offset: recovery must succeed
    /// and yield an exact record *prefix* of what was appended, and the
    /// recovered dir must reopen clean (the tear is truncated away, not
    /// rediscovered forever).
    #[test]
    fn arbitrary_truncation_recovers_a_clean_prefix(
        records in collection::vec(record_strategy(), 1..12),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = fresh_dir("cut");
        {
            // No compaction: every record stays in the WAL, so the
            // appended sequence is byte-addressable for the cut.
            let (mut durable, _, _) = Durability::open(&dir, usize::MAX).unwrap();
            for r in &records {
                durable.append(r).unwrap();
            }
        }
        let wal_path = dir.join(WAL_FILE);
        let full = std::fs::read(&wal_path).unwrap();
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((full.len() as f64) * cut_frac) as usize;
        std::fs::write(&wal_path, &full[..cut]).unwrap();

        let (durable, replayed, stats) = Durability::open(&dir, usize::MAX).unwrap();
        drop(durable);
        prop_assert!(replayed.len() <= records.len());
        prop_assert_eq!(&replayed[..], &records[..replayed.len()], "recovered an exact prefix");
        let intact_bytes: usize = records[..replayed.len()]
            .iter()
            .map(|r| HEADER_LEN + r.to_bytes().len())
            .sum();
        prop_assert_eq!(
            stats.torn_tail_truncations,
            u64::from(cut > intact_bytes),
            "tear counted iff the cut landed mid-frame"
        );

        let (_durable, again, stats) = Durability::open(&dir, usize::MAX).unwrap();
        prop_assert_eq!(&again[..], &replayed[..], "recovery is idempotent");
        prop_assert_eq!(stats.torn_tail_truncations, 0, "the tear was physically removed");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn register(text: &str) -> DurableRecord {
    DurableRecord::Register {
        graph_text: text.to_string(),
    }
}

fn solve(id: u64) -> DurableRecord {
    DurableRecord::Solve {
        id,
        request: Request::Solve {
            structure: 0xfeed,
            examples: vec![WireExample {
                tuple: vec![1, 2],
                label: true,
            }],
            ell: 1,
            q: 1,
            epsilon: 0.25,
            solver: SolverSpec::Nd,
            trace: None,
        },
    }
}

/// The exhaustive sweep the WAL's crash contract promises: with a
/// compacted snapshot in place and a live WAL tail, recovery succeeds
/// at *every* byte-length prefix of the WAL — snapshot records always
/// survive, the WAL contributes exactly its intact frames, and the torn
/// remainder is counted once and truncated physically.
#[test]
fn recovery_succeeds_at_every_wal_byte_prefix() {
    let dir = fresh_dir("sweep");
    let base = [register("alpha"), solve(1), register("beta")];
    let tail = [solve(2), register("gamma"), solve(3)];
    {
        let (mut durable, _, _) = Durability::open(&dir, usize::MAX).unwrap();
        for r in &base {
            durable.append(r).unwrap();
        }
        durable.compact().unwrap();
        for r in &tail {
            durable.append(r).unwrap();
        }
    }
    // The snapshot rewrites `base` in compacted order: registers in
    // first-seen order, then solves in id order.
    let snapshot_records = [register("alpha"), register("beta"), solve(1)];
    let wal_path = dir.join(WAL_FILE);
    let full = std::fs::read(&wal_path).unwrap();
    let frame_ends: Vec<usize> = tail
        .iter()
        .scan(0usize, |at, r| {
            *at += HEADER_LEN + r.to_bytes().len();
            Some(*at)
        })
        .collect();
    assert_eq!(*frame_ends.last().unwrap(), full.len());

    for cut in 0..=full.len() {
        std::fs::write(&wal_path, &full[..cut]).unwrap();
        let (durable, replayed, stats) = Durability::open(&dir, usize::MAX).unwrap();
        drop(durable);
        let intact = frame_ends.iter().filter(|&&e| e <= cut).count();
        let valid = if intact == 0 { 0 } else { frame_ends[intact - 1] };
        let expected: Vec<DurableRecord> = snapshot_records
            .iter()
            .chain(&tail[..intact])
            .cloned()
            .collect();
        assert_eq!(replayed, expected, "cut at {cut}");
        assert_eq!(stats.snapshot_records, 3, "cut at {cut}");
        assert_eq!(stats.wal_records as usize, intact, "cut at {cut}");
        assert_eq!(stats.snapshot_loads, 1, "cut at {cut}");
        assert_eq!(
            stats.torn_tail_truncations,
            u64::from(cut > valid),
            "cut at {cut}"
        );
        assert_eq!(
            std::fs::metadata(&wal_path).unwrap().len(),
            valid as u64,
            "the torn tail is physically gone after recovery (cut at {cut})"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
