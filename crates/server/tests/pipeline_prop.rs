//! Property test for the event core's pipelining: a burst of valid
//! requests written as one pipelined blob must yield byte-identical
//! replies, in order, to the same requests issued strictly
//! request/reply — and the baseline runs on the *threaded* core, so
//! each case also proves the two service cores agree on the wire.
//!
//! Determinism notes baked into the harness: both daemons run one pool
//! worker (so compute jobs execute in submission order and hypothesis
//! ids are assigned deterministically) and traces are off (span timings
//! are the only nondeterministic reply bytes). Duplicate solves inside
//! one burst are fair game either way: a pipelined duplicate planned
//! before its twin's result reaches the cache coalesces onto the
//! in-flight job and is replayed as a cache hit — exactly what the
//! sequential schedule sees. Warm solves pin the pre-cached path too.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use folearn_logic::vm::EvalEngine;
use folearn_server::proto::{Request, SolverSpec, WireExample};
use folearn_server::{start, Client, ClientApi, CoreMode, ServerConfig, ServerHandle};
use proptest::collection;
use proptest::prelude::*;

const GRAPH: &str = "colors Red Blue\nvertices 6\nedge 0 1\nedge 1 2\nedge 2 3\nedge 3 4\nedge 4 5\ncolor 0 Red\ncolor 2 Red\ncolor 4 Red\ncolor 1 Blue\ncolor 3 Blue\ncolor 5 Blue\n";

/// The warm-solve pool: realisable "is it Red?" plus two other
/// labelings, all arity 1 on the 6-vertex path.
fn sample_pool() -> Vec<Vec<WireExample>> {
    (0..3u32)
        .map(|variant| {
            (0..6u32)
                .map(|v| WireExample {
                    tuple: vec![v],
                    label: (v + variant) % 2 == 0,
                })
                .collect()
        })
        .collect()
}

fn brute(engine: EvalEngine) -> SolverSpec {
    SolverSpec::Brute {
        mode: folearn::fit::TypeMode::Global,
        threads: None,
        prune: true,
        engine,
    }
}

fn engine_of(bit: bool) -> EvalEngine {
    if bit {
        EvalEngine::Vm
    } else {
        EvalEngine::TreeWalk
    }
}

/// One burst item, independent of schedule position.
#[derive(Clone, Debug)]
enum Item {
    Ping,
    /// A solve from the warmed pool: a cache hit in both schedules.
    WarmSolve { sample: usize, vm: bool },
    /// A solve outside the warmed pool (nonzero epsilon keyed by
    /// `slot`): fresh on first appearance, and free to repeat within a
    /// burst — a repeat is a coalesced or cached hit in the pipelined
    /// schedule and a plain cache hit in the sequential one.
    FreshSolve { sample: usize, slot: usize, vm: bool },
    ModelCheck { formula: usize, vm: bool },
}

const FORMULAS: &[&str] = &[
    "exists x0. exists x1. E(x0, x1)",
    "forall x0. exists x1. E(x0, x1)",
    "exists x0. Red(x0)",
];

fn item_strategy() -> impl Strategy<Value = Item> {
    (0usize..4, 0usize..3, 0usize..2, 0u32..2).prop_map(|(kind, choice, slot, vm)| {
        let vm = vm == 1;
        match kind {
            0 => Item::Ping,
            1 => Item::WarmSolve { sample: choice, vm },
            2 => Item::FreshSolve {
                sample: choice,
                slot,
                vm,
            },
            _ => Item::ModelCheck {
                formula: choice % FORMULAS.len(),
                vm,
            },
        }
    })
}

/// Encode the burst. `structure` is the registered content hash; a
/// fresh solve's `slot` picks its epsilon (epsilon is part of the cache
/// key and any non-negative finite value is valid), keeping fresh
/// solves distinct from the warmed epsilon-0 pool while letting equal
/// `(sample, slot, vm)` items collide on purpose.
fn encode_burst(items: &[Item], structure: u64) -> Vec<String> {
    let pool = sample_pool();
    items
        .iter()
        .map(|item| match item {
            Item::Ping => Request::Ping.encode(),
            Item::WarmSolve { sample, vm } => Request::Solve {
                structure,
                examples: pool[*sample].clone(),
                ell: 1,
                q: 1,
                epsilon: 0.0,
                solver: brute(engine_of(*vm)),
                trace: None,
            }
            .encode(),
            Item::FreshSolve { sample, slot, vm } => Request::Solve {
                structure,
                examples: pool[*sample].clone(),
                ell: 1,
                q: 1,
                epsilon: (*slot as f64 + 1.0) * 1e-9,
                solver: brute(engine_of(*vm)),
                trace: None,
            }
            .encode(),
            Item::ModelCheck { formula, vm } => Request::ModelCheck {
                structure,
                formula: FORMULAS[*formula].to_string(),
                engine: engine_of(*vm),
                trace: None,
            }
            .encode(),
        })
        .collect()
}

/// Start a daemon, register the graph, and warm every (sample, engine)
/// solve the burst can repeat. Returns the handle and structure hash.
fn prepared_daemon(core: CoreMode) -> (ServerHandle, u64) {
    let handle = start(&ServerConfig {
        workers: 1,
        trace: false,
        core,
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let structure = client.register(GRAPH).expect("register");
    for sample in sample_pool() {
        for vm in [false, true] {
            client
                .solve(structure, sample.clone(), 1, 1, 0.0, brute(engine_of(vm)))
                .expect("warm solve");
        }
    }
    (handle, structure)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn pipelined_burst_replies_match_sequential_request_reply(
        items in collection::vec(item_strategy(), 1..12)
    ) {
        // Pipelined schedule on the event core: one write, N ordered
        // replies.
        let (event, structure) = prepared_daemon(CoreMode::EventLoop);
        let lines = encode_burst(&items, structure);
        let mut stream = TcpStream::connect(event.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let blob: String = lines.iter().map(|l| format!("{l}\n")).collect();
        stream.write_all(blob.as_bytes()).expect("burst write");
        let mut reader = BufReader::new(stream);
        let mut pipelined = Vec::with_capacity(lines.len());
        for _ in 0..lines.len() {
            let mut line = String::new();
            reader.read_line(&mut line).expect("reply");
            pipelined.push(line);
        }
        drop(reader);
        event.shutdown();

        // Sequential schedule on the threaded core: same requests, one
        // at a time.
        let (threaded, structure2) = prepared_daemon(CoreMode::Threaded);
        prop_assert_eq!(structure, structure2, "content hash is canonical");
        let mut stream = TcpStream::connect(threaded.addr()).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut sequential = Vec::with_capacity(lines.len());
        for line in &lines {
            stream.write_all(format!("{line}\n").as_bytes()).expect("write");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("reply");
            sequential.push(reply);
        }
        drop(reader);
        drop(stream);
        threaded.shutdown();

        for (i, (p, s)) in pipelined.iter().zip(&sequential).enumerate() {
            prop_assert_eq!(p, s, "reply {} diverged for {:?}", i, items[i]);
        }
    }
}
