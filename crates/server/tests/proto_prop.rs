//! Property tests for the wire protocol: every request/response variant
//! round-trips through encode → decode on adversarial payloads —
//! embedded newlines, quotes, backslashes, control characters, and
//! non-ASCII text — and every encoded message stays a single line (the
//! framing invariant).

use folearn::TypeMode;
use folearn_logic::vm::EvalEngine;
use folearn_server::proto::{
    Json, Request, Response, SolveOutcome, SolverSpec, TraceContext, WireExample,
    WireHypothesis, WireProvenance,
};
use proptest::collection;
use proptest::prelude::*;

/// Characters chosen to stress the codec: framing characters, escape
/// characters, ASCII/Unicode controls, multi-byte and astral symbols.
const PALETTE: &[char] = &[
    'a', 'Z', '7', ' ', '_', '\n', '\r', '\t', '"', '\\', '/', '{', '}', '[', ']', ':', ',',
    '\u{0}', '\u{8}', '\u{c}', '\u{1f}', '\u{7f}', 'é', 'λ', '中', '\u{2028}', '\u{2029}',
    '🦀', '𝔽',
];

fn nasty_string() -> impl Strategy<Value = String> {
    collection::vec(0usize..PALETTE.len(), 0..16)
        .prop_map(|idx| idx.into_iter().map(|i| PALETTE[i]).collect())
}

fn examples_strategy() -> impl Strategy<Value = Vec<WireExample>> {
    collection::vec(
        (collection::vec(0u32..50, 1..4), 0u32..2),
        1..6,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(tuple, l)| WireExample {
                tuple,
                label: l == 1,
            })
            .collect()
    })
}

fn solver_strategy() -> impl Strategy<Value = SolverSpec> {
    (0usize..5, 1usize..4, 1u32..4, 0u32..4).prop_map(|(kind, r, cap, p)| {
        let engine = if p & 2 == 2 {
            EvalEngine::Vm
        } else {
            EvalEngine::TreeWalk
        };
        match kind {
            0 => SolverSpec::Nd,
            1 => SolverSpec::Brute {
                mode: TypeMode::Global,
                threads: None,
                prune: p & 1 == 1,
                engine,
            },
            2 => SolverSpec::Brute {
                mode: TypeMode::Local { r },
                threads: Some(r),
                prune: p & 1 == 1,
                engine,
            },
            3 => SolverSpec::Brute {
                mode: TypeMode::GlobalCounting { cap },
                threads: Some(0),
                prune: p & 1 == 1,
                engine,
            },
            _ => SolverSpec::Brute {
                mode: TypeMode::LocalCounting { r, cap },
                threads: Some(17),
                prune: p & 1 == 1,
                engine,
            },
        }
    })
}

/// Optional provenance (the router-attached "who answered" field):
/// absent, or a backend string from the nasty palette with a replica
/// rank and hedged flag.
fn provenance_strategy() -> impl Strategy<Value = Option<WireProvenance>> {
    (0u32..2, nasty_string(), 0usize..4, 0u32..2).prop_map(|(some, backend, replica, hedged)| {
        (some == 1).then_some(WireProvenance {
            backend,
            replica,
            hedged: hedged == 1,
        })
    })
}

/// Optional trace context (the distributed-tracing parent pointer):
/// absent, or a `(trace_id, parent)` pair over the full u64 range.
fn trace_strategy() -> impl Strategy<Value = Option<TraceContext>> {
    (0u32..2, 0u64..=u64::MAX, 0u64..=u64::MAX).prop_map(|(some, trace_id, parent)| {
        (some == 1).then_some(TraceContext { trace_id, parent })
    })
}

fn assert_request_round_trip(req: &Request) -> Result<(), TestCaseError> {
    let line = req.encode();
    prop_assert!(
        !line.contains('\n') && !line.contains('\r'),
        "framing: encoded request must be one line, got {line:?}"
    );
    let back = Request::decode(&line)
        .map_err(|e| TestCaseError::fail(format!("decode failed on {line:?}: {e}")))?;
    prop_assert_eq!(&back, req);
    Ok(())
}

fn assert_response_round_trip(resp: &Response) -> Result<(), TestCaseError> {
    let line = resp.encode();
    prop_assert!(
        !line.contains('\n') && !line.contains('\r'),
        "framing: encoded response must be one line, got {line:?}"
    );
    let back = Response::decode(&line)
        .map_err(|e| TestCaseError::fail(format!("decode failed on {line:?}: {e}")))?;
    prop_assert_eq!(&back, resp);
    Ok(())
}

proptest! {
    #[test]
    fn register_round_trips_any_text(text in nasty_string()) {
        assert_request_round_trip(&Request::Register { graph_text: text })?;
    }

    #[test]
    fn solve_round_trips(
        structure in 0u64..=u64::MAX,
        examples in examples_strategy(),
        ell in 0usize..5,
        q in 0usize..5,
        eps_mil in 0u32..=1000,
        solver in solver_strategy(),
        trace in trace_strategy(),
    ) {
        assert_request_round_trip(&Request::Solve {
            structure,
            examples,
            ell,
            q,
            epsilon: f64::from(eps_mil) / 1000.0,
            solver,
            trace,
        })?;
    }

    #[test]
    fn evaluate_round_trips(
        structure in 0u64..=u64::MAX,
        hypothesis in 0u64..=u64::MAX,
        tuples in collection::vec(collection::vec(0u32..100, 0..4), 0..5),
        labelled in 0u32..2,
        labels in collection::vec(0u32..2, 0..5),
    ) {
        let labels = (labelled == 1)
            .then(|| labels.into_iter().map(|l| l == 1).collect());
        assert_request_round_trip(&Request::Evaluate {
            structure,
            hypothesis,
            tuples,
            labels,
        })?;
    }

    #[test]
    fn modelcheck_round_trips_any_formula(
        structure in 0u64..=u64::MAX,
        formula in nasty_string(),
        vm in 0u32..2,
        trace in trace_strategy(),
    ) {
        let engine = if vm == 1 { EvalEngine::Vm } else { EvalEngine::TreeWalk };
        assert_request_round_trip(&Request::ModelCheck { structure, formula, engine, trace })?;
    }

    #[test]
    fn bare_requests_round_trip(kind in 0usize..4) {
        let req = match kind {
            0 => Request::Ping,
            1 => Request::Stats,
            2 => Request::Inventory,
            _ => Request::Shutdown,
        };
        assert_request_round_trip(&req)?;
    }

    #[test]
    fn inventory_round_trips(
        structures in collection::vec(0u64..=u64::MAX, 0..8),
        bindings in collection::vec((0u64..=u64::MAX, 0u64..=u64::MAX), 0..8),
    ) {
        assert_response_round_trip(&Response::Inventory {
            structures,
            hypotheses: bindings
                .into_iter()
                .map(|(id, structure)| folearn_server::proto::WireBinding { id, structure })
                .collect(),
        })?;
    }

    #[test]
    fn solved_round_trips(
        cached in 0u32..2,
        err_mil in 0u32..=1000,
        work in 0usize..100000,
        evaluated in 0usize..100000,
        pruned in 0usize..100000,
        solver in nasty_string(),
        id in 0u64..=u64::MAX,
        params in collection::vec(0u32..100, 0..4),
        q in 0usize..5,
        mode in nasty_string(),
        types in collection::vec(0u32..10000, 0..6),
        type_keys in collection::vec(0u64..=u64::MAX, 0..6),
        describe in nasty_string(),
        with_trace in 0u32..2,
        trace_name in nasty_string(),
        trace_ns in 0u64..(1u64 << 53),
        provenance in provenance_strategy(),
    ) {
        // The trace field carries an arbitrary JSON span tree; exercise
        // both its absence and a representative stitched value: a router
        // root with provenance meta over a replayed backend subtree.
        let trace = (with_trace == 1).then(|| {
            Json::obj([
                ("span", Json::Str(trace_name)),
                ("ns", Json::Num(trace_ns as f64)),
                ("meta", Json::obj([
                    ("backend", Json::str("127.0.0.1:7070")),
                    ("kind", Json::str("hedge")),
                    ("outcome", Json::str("won")),
                ])),
                ("children", Json::Arr(vec![Json::obj([
                    ("span", Json::str("server.solve")),
                    ("ns", Json::int(7)),
                    ("meta", Json::obj([
                        ("replayed", Json::Bool(true)),
                        ("replay_age_ms", Json::int(12)),
                    ])),
                ])])),
            ])
        });
        assert_response_round_trip(&Response::Solved(SolveOutcome {
            cached: cached == 1,
            error: f64::from(err_mil) / 1000.0,
            work,
            evaluated,
            pruned,
            solver,
            hypothesis: WireHypothesis { id, params, q, mode, types, type_keys, describe },
            trace,
            provenance,
        }))?;
    }

    #[test]
    fn registered_and_scalar_responses_round_trip(
        structure in 0u64..=u64::MAX,
        vertices in 0usize..100000,
        edges in 0usize..100000,
        flag in 0u32..2,
        text in nasty_string(),
        with_replicas in 0u32..2,
        replicas in collection::vec(nasty_string(), 0..4),
        with_code in 0u32..2,
        code in nasty_string(),
        provenance in provenance_strategy(),
    ) {
        assert_response_round_trip(&Response::Pong)?;
        // The register-with-replicas ack: a plain server sends None, the
        // router acks with the backend list (possibly empty on total
        // registration failure of the tail replicas).
        assert_response_round_trip(&Response::Registered {
            structure,
            vertices,
            edges,
            fresh: flag == 1,
            replicas: (with_replicas == 1).then_some(replicas),
        })?;
        assert_response_round_trip(&Response::Truth {
            holds: flag == 1,
            provenance,
        })?;
        assert_response_round_trip(&Response::Error {
            message: text.clone(),
            code: (with_code == 1).then_some(code),
        })?;
        assert_response_round_trip(&Response::Bye { reason: text })?;
    }

    #[test]
    fn predictions_round_trip(
        labels in collection::vec(0u32..2, 0..8),
        with_error in 0u32..2,
        err_mil in 0u32..=1000,
        provenance in provenance_strategy(),
    ) {
        assert_response_round_trip(&Response::Predictions {
            labels: labels.into_iter().map(|l| l == 1).collect(),
            error: (with_error == 1).then(|| f64::from(err_mil) / 1000.0),
            provenance,
        })?;
    }

    #[test]
    fn stats_round_trips_nested_json(
        keys in collection::vec(0usize..PALETTE.len(), 0..6),
        nums in collection::vec(0u32..1000000, 0..6),
        text in nasty_string(),
    ) {
        // A stats payload with nasty keys, nested objects, and arrays.
        let pairs: Vec<(String, Json)> = keys
            .iter()
            .zip(&nums)
            .map(|(&k, &n)| (PALETTE[k].to_string(), Json::int(n as usize)))
            .collect();
        let data = Json::Obj(vec![
            ("inner".to_string(), Json::Obj(pairs)),
            (
                "arr".to_string(),
                Json::Arr(nums.iter().map(|&n| Json::int(n as usize)).collect()),
            ),
            ("text".to_string(), Json::str(text.clone())),
            ("null".to_string(), Json::Null),
        ]);
        assert_response_round_trip(&Response::Stats { data })?;

        // The router's aggregated-stats envelope: identity fields, a
        // wire-form histogram (hex-string counters), and per-backend
        // rows including an unreachable node's error row.
        let aggregated = Json::obj([
            ("role", Json::str("router")),
            ("uptime_ms", Json::int(nums.first().copied().unwrap_or(0) as usize)),
            ("cluster", Json::obj([
                ("backends_total", Json::int(3)),
                ("backends_live", Json::int(2)),
                ("hist", Json::obj([
                    ("count", Json::str("0000000000000003")),
                    ("total", Json::str("00000000000000ff")),
                    ("max", Json::str("0000000000000080")),
                    ("buckets", Json::Arr(vec![Json::int(1), Json::int(2)])),
                ])),
                ("nodes", Json::Arr(vec![
                    Json::obj([
                        ("addr", Json::str("127.0.0.1:1")),
                        ("live", Json::Bool(true)),
                    ]),
                    Json::obj([
                        ("addr", Json::str("127.0.0.1:2")),
                        ("live", Json::Bool(false)),
                        ("error", Json::str(text)),
                    ]),
                ])),
            ])),
        ]);
        assert_response_round_trip(&Response::Stats { data: aggregated })?;
    }
}
