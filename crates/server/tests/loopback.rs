//! End-to-end daemon tests over a real loopback socket: register, solve
//! (cold and cached), evaluate, model-check, stats, bad requests, the
//! request limit, connection-lifecycle limits (oversized frames,
//! truncated frames, idle timeout, connection cap), and graceful
//! shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use folearn_logic::vm::EvalEngine;
use folearn_server::proto::{hex64, Json, Request, Response};
use folearn_server::{
    start, Client, ClientApi, ClientError, LoadgenConfig, ServerConfig, SolverSpec,
    WireExample,
};

const GRAPH: &str = "colors Red Blue\nvertices 6\nedge 0 1\nedge 1 2\nedge 2 3\nedge 3 4\nedge 4 5\ncolor 0 Red\ncolor 2 Red\ncolor 4 Red\ncolor 1 Blue\ncolor 3 Blue\ncolor 5 Blue\n";

fn sample() -> Vec<WireExample> {
    // "Is the vertex Red?" on the coloured path: realisable at q = 1.
    (0..6u32)
        .map(|v| WireExample {
            tuple: vec![v],
            label: v % 2 == 0,
        })
        .collect()
}

#[test]
fn full_session_register_solve_cache_evaluate_modelcheck() {
    let handle = start(&ServerConfig::default()).expect("server starts");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("client connects");

    client.ping().expect("ping");

    let structure = client.register(GRAPH).expect("register");
    // Registering a textual variant (extra comments/whitespace) dedupes
    // to the same content hash.
    let variant = format!("# same graph\n{GRAPH}\n\n");
    let again = client.register(&variant).expect("register variant");
    assert_eq!(structure, again, "canonicalised content hash dedupes");

    let cold = client
        .solve(structure, sample(), 1, 1, 0.0, SolverSpec::default_brute())
        .expect("cold solve");
    assert!(!cold.cached);
    assert_eq!(cold.error, 0.0, "Red(x0) realises the sample");
    assert!(cold.evaluated > 0);

    let warm = client
        .solve(structure, sample(), 1, 1, 0.0, SolverSpec::default_brute())
        .expect("warm solve");
    assert!(warm.cached, "identical solve is served from cache");
    // The cached outcome is the stored one, bit for bit.
    assert_eq!(warm.error, cold.error);
    assert_eq!(warm.work, cold.work);
    assert_eq!(warm.hypothesis.id, cold.hypothesis.id);
    assert_eq!(warm.hypothesis.params, cold.hypothesis.params);
    assert_eq!(warm.hypothesis.types, cold.hypothesis.types);

    // The unified trace rides on the wire: a `server.solve` span wrapping
    // the learner's own `solve` span, end to end.
    let trace = cold.trace.as_ref().expect("a fresh solve carries a trace");
    assert_eq!(trace.get("span").and_then(|s| s.as_str()), Some("server.solve"));
    let children = trace.get("children").and_then(|c| c.as_arr()).unwrap_or(&[]);
    assert!(
        children
            .iter()
            .any(|c| c.get("span").and_then(|s| s.as_str()) == Some("solve")),
        "learner-level span nests under the server span: {trace:?}"
    );
    // Cache hits replay the populating run's trace, stamped as a
    // replay: `replayed: true` plus the original capture's age.
    let replayed = warm.trace.as_ref().expect("replayed solve keeps its trace");
    assert_eq!(
        replayed.get("span").and_then(|s| s.as_str()),
        Some("server.solve")
    );
    let meta = replayed.get("meta").expect("replay stamps meta");
    assert_eq!(meta.get("replayed").and_then(Json::as_bool), Some(true));
    assert!(
        meta.get("replay_age_ms").and_then(Json::as_num).is_some(),
        "replay age rides along: {meta:?}"
    );
    // Underneath the stamp, the span tree is the populating run's.
    assert_eq!(replayed.get("children"), trace.get("children"));

    // A different solver config is a different cache key.
    let other = client
        .solve(
            structure,
            sample(),
            1,
            1,
            0.0,
            SolverSpec::Brute {
                mode: folearn::TypeMode::Global,
                threads: Some(1),
                prune: false,
                engine: folearn_logic::vm::EvalEngine::TreeWalk,
            },
        )
        .expect("different-config solve");
    assert!(!other.cached);
    // ... but the deterministic engine finds the same answer.
    assert_eq!(other.error, cold.error);

    // Evaluate the learned hypothesis on every vertex: it must realise
    // the training labels exactly (error 0 above).
    let tuples: Vec<Vec<u32>> = (0..6u32).map(|v| vec![v]).collect();
    let labels: Vec<bool> = (0..6u32).map(|v| v % 2 == 0).collect();
    let (predictions, error) = client
        .evaluate(structure, cold.hypothesis.id, tuples, Some(labels.clone()))
        .expect("evaluate");
    assert_eq!(predictions, labels);
    assert_eq!(error, Some(0.0));

    assert!(client
        .modelcheck(structure, "exists x0. Red(x0)")
        .expect("modelcheck sat"));
    assert!(!client
        .modelcheck(structure, "forall x0. Red(x0)")
        .expect("modelcheck unsat"));

    // The VM engine is part of the cache key, answers identically, and
    // its work counters surface in the stats snapshot below.
    let mut vm_spec = SolverSpec::default_brute();
    if let SolverSpec::Brute { engine, .. } = &mut vm_spec {
        *engine = EvalEngine::Vm;
    }
    let vm_solve = client
        .solve(structure, sample(), 1, 1, 0.0, vm_spec)
        .expect("vm solve");
    assert!(!vm_solve.cached, "engine selection is a distinct cache key");
    assert_eq!(vm_solve.error, cold.error);
    assert_eq!(vm_solve.hypothesis.types, cold.hypothesis.types);
    assert!(client
        .modelcheck_with_engine(structure, "exists x0. Red(x0)", EvalEngine::Vm)
        .expect("vm modelcheck"));

    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("cache block");
    assert!(
        cache.get("hit_rate").unwrap().as_num().unwrap() > 0.0,
        "warm solve shows up in the hit rate"
    );
    assert!(stats.get("requests").unwrap().as_usize().unwrap() >= 8);
    let endpoints = stats.get("endpoints").expect("endpoints block");
    assert!(endpoints.get("solve").is_some());
    assert!(
        endpoints
            .get("solve")
            .unwrap()
            .get("p50_us")
            .unwrap()
            .as_num()
            .unwrap()
            > 0.0
    );
    // The unified metrics snapshot aggregates learner spans by name.
    let spans = stats.get("spans").expect("spans block");
    assert!(spans.get("server.solve").is_some());
    let solve_spans = spans.get("solve").expect("learner-level span in stats");
    assert!(solve_spans.get("count").unwrap().as_num().unwrap() >= 2.0);
    assert!(spans.get("erm.sweep").is_some());
    // Sweep counters ride on the per-worker records the sweep adopts.
    assert!(
        spans
            .get("erm.worker")
            .and_then(|s| s.get("evaluated_params"))
            .and_then(Json::as_num)
            .unwrap_or(0.0)
            > 0.0,
        "sweep work counters aggregate into the snapshot"
    );
    // VM cross-validation and VM model checks flush vm_* counters into
    // their enclosing spans.
    assert!(
        spans
            .get("solve")
            .and_then(|s| s.get("vm_instructions"))
            .and_then(Json::as_num)
            .unwrap_or(0.0)
            > 0.0,
        "VM counters aggregate under the solve span: {spans:?}"
    );
    assert!(
        spans
            .get("server.modelcheck")
            .and_then(|s| s.get("vm_instructions"))
            .and_then(Json::as_num)
            .unwrap_or(0.0)
            > 0.0,
        "VM counters aggregate under the modelcheck span: {spans:?}"
    );

    client.shutdown().expect("shutdown");
    handle.wait();
}

#[test]
fn errors_are_protocol_replies_not_disconnects() {
    let handle = start(&ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Unknown structure.
    let err = client
        .solve(7, sample(), 1, 1, 0.0, SolverSpec::default_brute())
        .expect_err("unknown structure");
    assert!(matches!(err, ClientError::Server { message: ref m, .. } if m.contains("unknown structure")));

    let structure = client.register(GRAPH).expect("register");

    // Bad graph text.
    let err = client.register("vertices 2\nedge 0 9\n").expect_err("bad graph");
    assert!(matches!(err, ClientError::Server { message: ref m, .. } if m.contains("register")));

    // Mixed arities.
    let bad = vec![
        WireExample {
            tuple: vec![0],
            label: true,
        },
        WireExample {
            tuple: vec![0, 1],
            label: false,
        },
    ];
    let err = client
        .solve(structure, bad, 1, 1, 0.0, SolverSpec::default_brute())
        .expect_err("mixed arity");
    assert!(matches!(err, ClientError::Server { message: ref m, .. } if m.contains("arity")));

    // Out-of-range vertex.
    let oob = vec![WireExample {
        tuple: vec![99],
        label: true,
    }];
    let err = client
        .solve(structure, oob, 1, 1, 0.0, SolverSpec::default_brute())
        .expect_err("out of range");
    assert!(matches!(err, ClientError::Server { message: ref m, .. } if m.contains("out of range")));

    // Absurd thread count fails with a clear message, no panic.
    let err = client
        .solve(
            structure,
            sample(),
            1,
            1,
            0.0,
            SolverSpec::Brute {
                mode: folearn::TypeMode::Global,
                threads: Some(100_000),
                prune: true,
                engine: folearn_logic::vm::EvalEngine::TreeWalk,
            },
        )
        .expect_err("too many threads");
    assert!(matches!(err, ClientError::Server { message: ref m, .. } if m.contains("threads")));

    // Unknown hypothesis id.
    let err = client
        .evaluate(structure, 0xdead, vec![vec![0]], None)
        .expect_err("unknown hypothesis");
    assert!(matches!(err, ClientError::Server { message: ref m, .. } if m.contains(&hex64(0xdead))));

    // Open formula rejected by modelcheck.
    let err = client
        .modelcheck(structure, "Red(x0)")
        .expect_err("open formula");
    assert!(matches!(err, ClientError::Server { message: ref m, .. } if m.contains("sentence")));

    // Malformed line: raw garbage gets an error reply, connection lives.
    match client.call(&Request::Ping).expect("still alive") {
        Response::Pong => {}
        other => panic!("expected pong, got {other:?}"),
    }

    handle.shutdown();
}

#[test]
fn request_limit_closes_the_connection() {
    let config = ServerConfig {
        max_requests_per_conn: 3,
        ..ServerConfig::default()
    };
    let handle = start(&config).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    for _ in 0..3 {
        client.ping().expect("within budget");
    }
    match client.call(&Request::Ping) {
        Ok(Response::Bye { reason }) => assert_eq!(reason, "request limit"),
        other => panic!("expected bye, got {other:?}"),
    }
    // A fresh connection still works.
    let mut c2 = Client::connect(handle.addr()).expect("reconnect");
    c2.ping().expect("fresh budget");
    handle.shutdown();
}

#[test]
fn shutdown_request_stops_the_daemon() {
    let handle = start(&ServerConfig::default()).expect("server starts");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    client.register(GRAPH).expect("register");
    client.shutdown().expect("bye");
    handle.wait(); // returns: acceptor, connections, and workers joined
    assert!(
        Client::connect(addr).map(|mut c| c.ping()).is_err()
            || Client::connect(addr).is_err(),
        "daemon no longer serves"
    );
}

#[test]
fn loadgen_smoke_hits_the_cache() {
    let handle = start(&ServerConfig::default()).expect("server starts");
    let config = LoadgenConfig {
        connections: 2,
        requests_per_conn: 25,
        seed: 5,
        sample_pool: 3,
        ell: 1,
        q: 1,
        ..LoadgenConfig::default()
    };
    let report = folearn_server::loadgen::run_load(handle.addr(), GRAPH, &config);
    assert_eq!(report.requests, 2 * (25 + 1)); // +1 register per worker
    assert_eq!(report.errors, 0);
    assert!(report.worker_errors.is_empty(), "{:?}", report.worker_errors);
    assert!(
        report.cached_solves > 0,
        "small sample pool must produce repeat solves"
    );
    assert!(report.fresh_solves > 0);
    assert!(report.throughput() > 0.0);
    let solve = report
        .ops
        .iter()
        .find(|(op, _)| op == "solve")
        .map(|(_, s)| s)
        .expect("solve stats");
    assert!(solve.quantile_us(0.5) > 0);
    handle.shutdown();
}

/// Read one newline-terminated response from a raw socket.
fn read_reply(stream: TcpStream) -> Response {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("a reply line");
    Response::decode(line.trim_end()).expect("a protocol response")
}

#[test]
fn raw_garbage_gets_a_malformed_request_error() {
    let handle = start(&ServerConfig::default()).expect("server starts");
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    s.write_all(b"this is not protocol json\n").expect("write");
    match read_reply(s) {
        Response::Error { message, .. } => assert!(
            message.starts_with("malformed request"),
            "retryability contract: the prefix marks in-flight corruption, got {message:?}"
        ),
        other => panic!("expected error, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn oversized_frame_is_rejected_and_the_connection_closed() {
    let config = ServerConfig {
        max_line_bytes: 128,
        ..ServerConfig::default()
    };
    let handle = start(&config).expect("server starts");
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // A newline-less byte stream much longer than the limit: the old
    // code grew `line` without bound; now the server must cut in with
    // one error and close.
    s.write_all(&vec![b'a'; 4096]).expect("write");
    let mut reader = BufReader::new(s.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("a reply line");
    match Response::decode(line.trim_end()).expect("a protocol response") {
        Response::Error { message, .. } => {
            assert!(message.starts_with("malformed request"), "{message:?}");
            assert!(message.contains("exceeds 128 bytes"), "{message:?}");
        }
        other => panic!("expected error, got {other:?}"),
    }
    // ... and then EOF: the connection is gone.
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).expect("eof"), 0);
    handle.shutdown();
}

#[test]
fn eof_mid_frame_is_rejected_not_served() {
    let handle = start(&ServerConfig::default()).expect("server starts");
    let mut s = TcpStream::connect(handle.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // A COMPLETE, valid ping — minus the terminating newline — followed
    // by write-shutdown. The old code served the partial frame (pong);
    // a truncated frame must be rejected instead.
    s.write_all(Request::Ping.encode().as_bytes()).expect("write");
    s.shutdown(Shutdown::Write).expect("half-close");
    match read_reply(s) {
        Response::Error { message, .. } => {
            assert!(message.starts_with("malformed request"), "{message:?}");
            assert!(message.contains("truncated"), "{message:?}");
        }
        other => panic!("expected error, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn idle_connections_are_closed_with_bye() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(250),
        ..ServerConfig::default()
    };
    let handle = start(&config).expect("server starts");
    let s = TcpStream::connect(handle.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Send nothing: within idle_timeout (+ one poll interval) the
    // server must say bye and hang up.
    match read_reply(s) {
        Response::Bye { reason } => assert_eq!(reason, "idle timeout"),
        other => panic!("expected bye, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn connection_cap_turns_new_connections_away() {
    let config = ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    };
    let handle = start(&config).expect("server starts");
    let mut c1 = Client::connect(handle.addr()).expect("conn 1");
    let mut c2 = Client::connect(handle.addr()).expect("conn 2");
    c1.ping().expect("conn 1 live");
    c2.ping().expect("conn 2 live");
    // Third concurrent connection: greeted with bye, never served.
    let s3 = TcpStream::connect(handle.addr()).expect("conn 3 tcp");
    s3.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    match read_reply(s3) {
        Response::Bye { reason } => assert_eq!(reason, "connection limit"),
        other => panic!("expected bye, got {other:?}"),
    }
    // Freeing a slot lets a fresh connection in (finished handles are
    // reaped on accept).
    drop(c1);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut c4 = loop {
        let mut c = Client::connect(handle.addr()).expect("conn 4 tcp");
        match c.ping() {
            Ok(()) => break c,
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("slot never freed: {e}"),
        }
    };
    c4.ping().expect("conn 4 live");
    handle.shutdown();
}

#[test]
fn flood_past_the_cap_is_rejected_gracefully_and_the_daemon_survives() {
    // The crash this PR fixes: a connection flood used to hit
    // `.expect("spawn connection thread")` (threaded core) or pile up
    // unboundedly. Now every connection past the cap gets one `bye` and
    // a close, the flood is counted, and the daemon keeps serving.
    for core in [folearn_server::CoreMode::EventLoop, folearn_server::CoreMode::Threaded] {
        let config = ServerConfig {
            max_connections: 8,
            core,
            ..ServerConfig::default()
        };
        let handle = start(&config).expect("server starts");
        let addr = handle.addr();
        // Hold the cap's worth of live connections...
        let held: Vec<Client> = (0..8)
            .map(|i| {
                let mut c = Client::connect(addr).unwrap_or_else(|e| panic!("held conn {i}: {e}"));
                c.ping().expect("held conn serves");
                c
            })
            .collect();
        // ...then flood well past it. Every extra connection must be
        // answered (bye) — never ignored, never a daemon panic.
        let mut rejected = 0usize;
        for _ in 0..60 {
            let s = TcpStream::connect(addr).expect("tcp connect");
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            match read_reply(s) {
                Response::Bye { reason } => {
                    assert_eq!(reason, "connection limit");
                    rejected += 1;
                }
                other => panic!("expected bye, got {other:?}"),
            }
        }
        assert_eq!(rejected, 60, "every flooded connection was answered");
        // The held connections still serve, and the flood is visible in
        // the stats.
        let mut held = held;
        for c in &mut held {
            c.ping().expect("survivors still served");
        }
        let stats = held[0].stats().expect("stats");
        let rejected_stat = stats
            .get("rejected_connections")
            .and_then(Json::as_usize)
            .expect("rejected_connections gauge");
        assert!(rejected_stat >= 60, "counted {rejected_stat}");
        drop(held);
        handle.shutdown();
    }
}

#[test]
fn slow_writer_is_served_not_idle_closed() {
    // Satellite fix: the idle clock must count partial bytes of an
    // in-progress frame as activity. A peer trickling one legitimate
    // frame slower than the idle timeout is slow, not idle.
    for core in [folearn_server::CoreMode::EventLoop, folearn_server::CoreMode::Threaded] {
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(300),
            core,
            ..ServerConfig::default()
        };
        let handle = start(&config).expect("server starts");
        let mut s = TcpStream::connect(handle.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        s.set_nodelay(true).unwrap();
        let frame = format!("{}\n", Request::Ping.encode());
        // Drip the frame over ~1s — more than 3× the idle timeout — in
        // chunks spaced under the timeout.
        for chunk in frame.as_bytes().chunks(2) {
            s.write_all(chunk).expect("slow write");
            std::thread::sleep(Duration::from_millis(150));
        }
        match read_reply(s) {
            Response::Pong => {}
            other => panic!("slow writer must be served, got {other:?}"),
        }
        handle.shutdown();
    }
}

#[test]
fn pipelined_loadgen_keeps_per_target_totals_exact_across_reconnects() {
    // Satellite fix: a reconnect (here forced by a tiny per-connection
    // request budget) must resume the schedule, not reset it — so every
    // worker completes exactly requests_per_conn + 1 requests and the
    // per-target rows add up precisely.
    let config = ServerConfig {
        max_requests_per_conn: 7,
        ..ServerConfig::default()
    };
    let h1 = start(&config).expect("daemon 1");
    let h2 = start(&config).expect("daemon 2");
    let load = LoadgenConfig {
        connections: 2,
        requests_per_conn: 30,
        seed: 23,
        sample_pool: 3,
        ell: 1,
        q: 1,
        pipeline: 4,
        client: folearn_server::ClientConfig::with_deadline(Duration::from_secs(20)),
        ..LoadgenConfig::default()
    };
    let report =
        folearn_server::loadgen::run_load_multi(&[h1.addr(), h2.addr()], GRAPH, &load);
    assert!(report.worker_errors.is_empty(), "{:?}", report.worker_errors);
    assert_eq!(report.errors, 0, "no unrecovered errors");
    assert_eq!(
        report.requests,
        2 * (30 + 1),
        "schedule position survives reconnects: nothing lost, nothing double-counted"
    );
    assert!(
        report.reconnects >= 2,
        "the 7-request budget must have forced reconnects, got {}",
        report.reconnects
    );
    assert_eq!(report.targets.len(), 2, "{:?}", report.targets);
    for (addr, requests, errors) in &report.targets {
        assert_eq!(*requests, 31, "target {addr} row is exact");
        assert_eq!(*errors, 0);
    }
    assert!(report.cached_solves > 0, "repeat solves hit the cache");
    h1.shutdown();
    h2.shutdown();
}

/// A pipelined burst of identical solves lands before the first result
/// can reach the cache; the event core must coalesce the duplicates
/// onto the one in-flight computation — one fresh solve, every
/// duplicate replayed as a cache hit with the same hypothesis id —
/// instead of recomputing each copy.
#[test]
fn duplicate_pipelined_solves_coalesce_onto_one_computation() {
    let handle = start(&ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let structure = client.register(GRAPH).expect("register");

    const BURST: usize = 12;
    let line = Request::Solve {
        structure,
        examples: sample(),
        ell: 1,
        q: 1,
        epsilon: 0.0,
        solver: SolverSpec::default_brute(),
        trace: None,
    }
    .encode();
    let blob: String = (0..BURST).map(|_| format!("{line}\n")).collect();
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(blob.as_bytes()).expect("burst write");

    let mut reader = BufReader::new(stream);
    let mut fresh = 0usize;
    let mut ids = Vec::new();
    for i in 0..BURST {
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        match Response::decode(reply.trim_end()).expect("decodes") {
            Response::Solved(outcome) => {
                if !outcome.cached {
                    fresh += 1;
                }
                ids.push(outcome.hypothesis.id);
            }
            other => panic!("reply {i}: expected solved, got {other:?}"),
        }
    }
    assert_eq!(fresh, 1, "exactly one copy is computed");
    assert!(
        ids.iter().all(|&id| id == ids[0]),
        "every duplicate sees the same stored hypothesis: {ids:?}"
    );
    handle.shutdown();
}

#[test]
fn connection_handles_are_reaped_not_leaked() {
    let handle = start(&ServerConfig::default()).expect("server starts");
    // Many short-lived sequential connections: without reaping, the
    // tracked vector grows one handle per connection forever.
    for _ in 0..20 {
        let mut c = Client::connect(handle.addr()).expect("connect");
        c.ping().expect("ping");
        drop(c);
        std::thread::sleep(Duration::from_millis(20));
    }
    // One more accept triggers a reap of everything already finished.
    let mut last = Client::connect(handle.addr()).expect("connect");
    last.ping().expect("ping");
    assert!(
        handle.tracked_connections() <= 5,
        "tracked handles stay bounded, got {}",
        handle.tracked_connections()
    );
    handle.shutdown();
}
