//! End-to-end daemon tests over a real loopback socket: register, solve
//! (cold and cached), evaluate, model-check, stats, bad requests, the
//! request limit, and graceful shutdown.

use folearn_server::proto::{hex64, Json, Request, Response};
use folearn_server::{
    start, Client, ClientError, LoadgenConfig, ServerConfig, SolverSpec, WireExample,
};

const GRAPH: &str = "colors Red Blue\nvertices 6\nedge 0 1\nedge 1 2\nedge 2 3\nedge 3 4\nedge 4 5\ncolor 0 Red\ncolor 2 Red\ncolor 4 Red\ncolor 1 Blue\ncolor 3 Blue\ncolor 5 Blue\n";

fn sample() -> Vec<WireExample> {
    // "Is the vertex Red?" on the coloured path: realisable at q = 1.
    (0..6u32)
        .map(|v| WireExample {
            tuple: vec![v],
            label: v % 2 == 0,
        })
        .collect()
}

#[test]
fn full_session_register_solve_cache_evaluate_modelcheck() {
    let handle = start(&ServerConfig::default()).expect("server starts");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("client connects");

    client.ping().expect("ping");

    let structure = client.register(GRAPH).expect("register");
    // Registering a textual variant (extra comments/whitespace) dedupes
    // to the same content hash.
    let variant = format!("# same graph\n{GRAPH}\n\n");
    let again = client.register(&variant).expect("register variant");
    assert_eq!(structure, again, "canonicalised content hash dedupes");

    let cold = client
        .solve(structure, sample(), 1, 1, 0.0, SolverSpec::default_brute())
        .expect("cold solve");
    assert!(!cold.cached);
    assert_eq!(cold.error, 0.0, "Red(x0) realises the sample");
    assert!(cold.evaluated > 0);

    let warm = client
        .solve(structure, sample(), 1, 1, 0.0, SolverSpec::default_brute())
        .expect("warm solve");
    assert!(warm.cached, "identical solve is served from cache");
    // The cached outcome is the stored one, bit for bit.
    assert_eq!(warm.error, cold.error);
    assert_eq!(warm.work, cold.work);
    assert_eq!(warm.hypothesis.id, cold.hypothesis.id);
    assert_eq!(warm.hypothesis.params, cold.hypothesis.params);
    assert_eq!(warm.hypothesis.types, cold.hypothesis.types);

    // The unified trace rides on the wire: a `server.solve` span wrapping
    // the learner's own `solve` span, end to end.
    let trace = cold.trace.as_ref().expect("a fresh solve carries a trace");
    assert_eq!(trace.get("span").and_then(|s| s.as_str()), Some("server.solve"));
    let children = trace.get("children").and_then(|c| c.as_arr()).unwrap_or(&[]);
    assert!(
        children
            .iter()
            .any(|c| c.get("span").and_then(|s| s.as_str()) == Some("solve")),
        "learner-level span nests under the server span: {trace:?}"
    );
    // Cache hits replay the populating run's trace verbatim.
    assert_eq!(warm.trace, cold.trace);

    // A different solver config is a different cache key.
    let other = client
        .solve(
            structure,
            sample(),
            1,
            1,
            0.0,
            SolverSpec::Brute {
                mode: folearn::TypeMode::Global,
                threads: Some(1),
                prune: false,
            },
        )
        .expect("different-config solve");
    assert!(!other.cached);
    // ... but the deterministic engine finds the same answer.
    assert_eq!(other.error, cold.error);

    // Evaluate the learned hypothesis on every vertex: it must realise
    // the training labels exactly (error 0 above).
    let tuples: Vec<Vec<u32>> = (0..6u32).map(|v| vec![v]).collect();
    let labels: Vec<bool> = (0..6u32).map(|v| v % 2 == 0).collect();
    let (predictions, error) = client
        .evaluate(structure, cold.hypothesis.id, tuples, Some(labels.clone()))
        .expect("evaluate");
    assert_eq!(predictions, labels);
    assert_eq!(error, Some(0.0));

    assert!(client
        .modelcheck(structure, "exists x0. Red(x0)")
        .expect("modelcheck sat"));
    assert!(!client
        .modelcheck(structure, "forall x0. Red(x0)")
        .expect("modelcheck unsat"));

    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("cache block");
    assert!(
        cache.get("hit_rate").unwrap().as_num().unwrap() > 0.0,
        "warm solve shows up in the hit rate"
    );
    assert!(stats.get("requests").unwrap().as_usize().unwrap() >= 8);
    let endpoints = stats.get("endpoints").expect("endpoints block");
    assert!(endpoints.get("solve").is_some());
    assert!(
        endpoints
            .get("solve")
            .unwrap()
            .get("p50_us")
            .unwrap()
            .as_num()
            .unwrap()
            > 0.0
    );
    // The unified metrics snapshot aggregates learner spans by name.
    let spans = stats.get("spans").expect("spans block");
    assert!(spans.get("server.solve").is_some());
    let solve_spans = spans.get("solve").expect("learner-level span in stats");
    assert!(solve_spans.get("count").unwrap().as_num().unwrap() >= 2.0);
    assert!(spans.get("erm.sweep").is_some());
    // Sweep counters ride on the per-worker records the sweep adopts.
    assert!(
        spans
            .get("erm.worker")
            .and_then(|s| s.get("evaluated_params"))
            .and_then(Json::as_num)
            .unwrap_or(0.0)
            > 0.0,
        "sweep work counters aggregate into the snapshot"
    );

    client.shutdown().expect("shutdown");
    handle.wait();
}

#[test]
fn errors_are_protocol_replies_not_disconnects() {
    let handle = start(&ServerConfig::default()).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Unknown structure.
    let err = client
        .solve(7, sample(), 1, 1, 0.0, SolverSpec::default_brute())
        .expect_err("unknown structure");
    assert!(matches!(err, ClientError::Server(ref m) if m.contains("unknown structure")));

    let structure = client.register(GRAPH).expect("register");

    // Bad graph text.
    let err = client.register("vertices 2\nedge 0 9\n").expect_err("bad graph");
    assert!(matches!(err, ClientError::Server(ref m) if m.contains("register")));

    // Mixed arities.
    let bad = vec![
        WireExample {
            tuple: vec![0],
            label: true,
        },
        WireExample {
            tuple: vec![0, 1],
            label: false,
        },
    ];
    let err = client
        .solve(structure, bad, 1, 1, 0.0, SolverSpec::default_brute())
        .expect_err("mixed arity");
    assert!(matches!(err, ClientError::Server(ref m) if m.contains("arity")));

    // Out-of-range vertex.
    let oob = vec![WireExample {
        tuple: vec![99],
        label: true,
    }];
    let err = client
        .solve(structure, oob, 1, 1, 0.0, SolverSpec::default_brute())
        .expect_err("out of range");
    assert!(matches!(err, ClientError::Server(ref m) if m.contains("out of range")));

    // Absurd thread count fails with a clear message, no panic.
    let err = client
        .solve(
            structure,
            sample(),
            1,
            1,
            0.0,
            SolverSpec::Brute {
                mode: folearn::TypeMode::Global,
                threads: Some(100_000),
                prune: true,
            },
        )
        .expect_err("too many threads");
    assert!(matches!(err, ClientError::Server(ref m) if m.contains("threads")));

    // Unknown hypothesis id.
    let err = client
        .evaluate(structure, 0xdead, vec![vec![0]], None)
        .expect_err("unknown hypothesis");
    assert!(matches!(err, ClientError::Server(ref m) if m.contains(&hex64(0xdead))));

    // Open formula rejected by modelcheck.
    let err = client
        .modelcheck(structure, "Red(x0)")
        .expect_err("open formula");
    assert!(matches!(err, ClientError::Server(ref m) if m.contains("sentence")));

    // Malformed line: raw garbage gets an error reply, connection lives.
    match client.call(&Request::Ping).expect("still alive") {
        Response::Pong => {}
        other => panic!("expected pong, got {other:?}"),
    }

    handle.shutdown();
}

#[test]
fn request_limit_closes_the_connection() {
    let config = ServerConfig {
        max_requests_per_conn: 3,
        ..ServerConfig::default()
    };
    let handle = start(&config).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    for _ in 0..3 {
        client.ping().expect("within budget");
    }
    match client.call(&Request::Ping) {
        Ok(Response::Bye { reason }) => assert_eq!(reason, "request limit"),
        other => panic!("expected bye, got {other:?}"),
    }
    // A fresh connection still works.
    let mut c2 = Client::connect(handle.addr()).expect("reconnect");
    c2.ping().expect("fresh budget");
    handle.shutdown();
}

#[test]
fn shutdown_request_stops_the_daemon() {
    let handle = start(&ServerConfig::default()).expect("server starts");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    client.register(GRAPH).expect("register");
    client.shutdown().expect("bye");
    handle.wait(); // returns: acceptor, connections, and workers joined
    assert!(
        Client::connect(addr).map(|mut c| c.ping()).is_err()
            || Client::connect(addr).is_err(),
        "daemon no longer serves"
    );
}

#[test]
fn loadgen_smoke_hits_the_cache() {
    let handle = start(&ServerConfig::default()).expect("server starts");
    let config = LoadgenConfig {
        connections: 2,
        requests_per_conn: 25,
        seed: 5,
        sample_pool: 3,
        ell: 1,
        q: 1,
    };
    let report =
        folearn_server::loadgen::run_load(handle.addr(), GRAPH, &config).expect("load run");
    assert_eq!(report.requests, 2 * (25 + 1)); // +1 register per worker
    assert_eq!(report.errors, 0);
    assert!(
        report.cached_solves > 0,
        "small sample pool must produce repeat solves"
    );
    assert!(report.fresh_solves > 0);
    assert!(report.throughput() > 0.0);
    let solve = report
        .ops
        .iter()
        .find(|(op, _)| op == "solve")
        .map(|(_, s)| s)
        .expect("solve stats");
    assert!(solve.quantile_us(0.5) > 0);
    handle.shutdown();
}
