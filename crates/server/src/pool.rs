//! The bounded worker pool that executes solve-class requests.
//!
//! Connection threads do the cheap work (framing, registry lookups,
//! cache hits) themselves and hand anything compute-shaped — solve,
//! evaluate, model-check — to this pool. The pool is the backpressure
//! point: the job queue is a bounded `sync_channel`, so when all
//! workers are busy and the queue is full, submitting connections block
//! instead of piling unbounded work onto the daemon.
//!
//! The pool is built on the `rayon` shim's primitives: each worker owns
//! a [`rayon::ThreadPool`] sized to its fair share of the host cores
//! and runs every job under [`rayon::ThreadPool::install`], so a job's
//! inner parallel sweep (`BruteForceOpts { threads: None, .. }`
//! inherits the ambient count) uses exactly that share — `W` workers
//! never oversubscribe the machine no matter what the request asks for.

use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

/// A unit of work: runs on a worker thread, replies through whatever
/// channel the closure captured.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size worker pool with a bounded job queue.
pub struct WorkerPool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    num_workers: usize,
}

impl WorkerPool {
    /// Spawn `workers` threads (`0` = one per host core) behind a queue
    /// of `queue_depth` pending jobs.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        let num_workers = if workers == 0 { cores } else { workers };
        // Each worker's inner parallel operations get a fair share of
        // the cores; at least 1.
        let share = (cores / num_workers).max(1);
        let (sender, receiver) = std::sync::mpsc::sync_channel::<Job>(queue_depth.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..num_workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("folearn-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, share))
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
            num_workers,
        }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Submit a job, blocking while the queue is full (backpressure).
    /// Returns `false` if the pool has already shut down.
    pub fn submit(&self, job: Job) -> bool {
        match &self.sender {
            Some(s) => s.send(job).is_ok(),
            None => false,
        }
    }

    /// Drain the queue and join all workers. Idempotent.
    pub fn shutdown(&mut self) {
        self.sender.take(); // closes the channel; workers drain and exit
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(receiver: &Arc<Mutex<Receiver<Job>>>, share: usize) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(share)
        .build()
        .expect("the rayon shim never fails to build");
    loop {
        // Take the next job while holding the lock, run it without.
        let job = {
            let rx = receiver.lock();
            rx.recv()
        };
        match job {
            Ok(job) => pool.install(job),
            Err(_) => break, // channel closed: pool is shutting down
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    use super::*;

    #[test]
    fn jobs_run_and_reply() {
        let pool = WorkerPool::new(2, 4);
        let (tx, rx) = mpsc::channel();
        for i in 0..10usize {
            let tx = tx.clone();
            assert!(pool.submit(Box::new(move || {
                tx.send(i * i).unwrap();
            })));
        }
        let mut got: Vec<usize> = rx.iter().take(10).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn shutdown_joins_and_rejects_new_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new(3, 2);
        for _ in 0..6 {
            let c = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 6, "queued jobs drain");
        assert!(!pool.submit(Box::new(|| {})));
        pool.shutdown(); // idempotent
    }

    #[test]
    fn workers_pin_their_core_share() {
        let pool = WorkerPool::new(2, 1);
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(move || {
            tx.send(rayon::current_num_threads()).unwrap();
        }));
        let ambient = rx.recv().unwrap();
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        assert_eq!(ambient, (cores / 2).max(1));
    }
}
