//! The bounded worker pool that executes solve-class requests.
//!
//! Connection threads do the cheap work (framing, registry lookups,
//! cache hits) themselves and hand anything compute-shaped — solve,
//! evaluate, model-check — to this pool. The pool is the backpressure
//! point: the job queue is a bounded `sync_channel`, so when all
//! workers are busy and the queue is full, submitting connections block
//! instead of piling unbounded work onto the daemon.
//!
//! The pool is built on the `rayon` shim's primitives: each worker owns
//! a [`rayon::ThreadPool`] sized to its fair share of the host cores
//! and runs every job under [`rayon::ThreadPool::install`], so a job's
//! inner parallel sweep (`BruteForceOpts { threads: None, .. }`
//! inherits the ambient count) uses exactly that share — `W` workers
//! never oversubscribe the machine no matter what the request asks for.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

/// A unit of work: runs on a worker thread, replies through whatever
/// channel the closure captured.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`WorkerPool::try_submit`] could not take a job.
pub enum TrySubmit {
    /// The queue is full; the job is returned so the caller can retry.
    Full(Job),
    /// The pool has shut down; the job was dropped.
    Closed,
}

/// Fixed-size worker pool with a bounded job queue.
///
/// Jobs run under `catch_unwind`: a panicking job is counted (see
/// [`WorkerPool::panic_count`]) and discarded, and the worker thread
/// survives to serve the next job — a poisoned request must cost one
/// error response, never a pool slot.
pub struct WorkerPool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    num_workers: usize,
    panics: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawn `workers` threads (`0` = one per host core) behind a queue
    /// of `queue_depth` pending jobs.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        let num_workers = if workers == 0 { cores } else { workers };
        // Each worker's inner parallel operations get a fair share of
        // the cores; at least 1.
        let share = (cores / num_workers).max(1);
        let (sender, receiver) = std::sync::mpsc::sync_channel::<Job>(queue_depth.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let panics = Arc::new(AtomicU64::new(0));
        let workers = (0..num_workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let panics = Arc::clone(&panics);
                std::thread::Builder::new()
                    .name(format!("folearn-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, share, &panics))
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
            num_workers,
            panics,
        }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Jobs that panicked (and were isolated) so far.
    pub fn panic_count(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Record a panic that was caught outside the worker loop (e.g. by a
    /// submitter that wrapped its job in `catch_unwind` to extract the
    /// panic message before replying).
    pub fn note_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Submit a job, blocking while the queue is full (backpressure).
    /// Returns `false` if the pool has already shut down.
    pub fn submit(&self, job: Job) -> bool {
        match &self.sender {
            Some(s) => s.send(job).is_ok(),
            None => false,
        }
    }

    /// Submit a job without blocking. A full queue hands the job back
    /// so the caller can park it and re-offer later — the event loop
    /// uses this to defer work per connection instead of stalling a
    /// whole readiness shard on one busy queue.
    pub fn try_submit(&self, job: Job) -> Result<(), TrySubmit> {
        use std::sync::mpsc::TrySendError;
        match &self.sender {
            Some(s) => match s.try_send(job) {
                Ok(()) => Ok(()),
                Err(TrySendError::Full(job)) => Err(TrySubmit::Full(job)),
                Err(TrySendError::Disconnected(_)) => Err(TrySubmit::Closed),
            },
            None => Err(TrySubmit::Closed),
        }
    }

    /// A clone of the panic counter, safe to capture inside submitted
    /// jobs. Jobs must never hold an `Arc<WorkerPool>` (the pool's own
    /// `Drop` joins the workers, so a job owning the last reference
    /// would join its own thread); the bare counter carries no such
    /// hazard.
    pub fn panic_cell(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.panics)
    }

    /// Drain the queue and join all workers. Idempotent.
    pub fn shutdown(&mut self) {
        self.sender.take(); // closes the channel; workers drain and exit
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(receiver: &Arc<Mutex<Receiver<Job>>>, share: usize, panics: &AtomicU64) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(share)
        .build()
        .expect("the rayon shim never fails to build");
    loop {
        // Take the next job while holding the lock, run it without.
        let job = {
            let rx = receiver.lock();
            rx.recv()
        };
        match job {
            Ok(job) => {
                if catch_unwind(AssertUnwindSafe(|| pool.install(job))).is_err() {
                    // The job's reply channel (if any) was dropped during
                    // the unwind, so the submitter observes the failure;
                    // this thread stays in service.
                    panics.fetch_add(1, Ordering::Relaxed);
                    folearn_obs::count(folearn_obs::Counter::WorkerPanics, 1);
                }
            }
            Err(_) => break, // channel closed: pool is shutting down
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    use super::*;

    #[test]
    fn jobs_run_and_reply() {
        let pool = WorkerPool::new(2, 4);
        let (tx, rx) = mpsc::channel();
        for i in 0..10usize {
            let tx = tx.clone();
            assert!(pool.submit(Box::new(move || {
                tx.send(i * i).unwrap();
            })));
        }
        let mut got: Vec<usize> = rx.iter().take(10).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn shutdown_joins_and_rejects_new_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = WorkerPool::new(3, 2);
        for _ in 0..6 {
            let c = Arc::clone(&counter);
            pool.submit(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 6, "queued jobs drain");
        assert!(!pool.submit(Box::new(|| {})));
        pool.shutdown(); // idempotent
    }

    #[test]
    fn panicking_jobs_are_isolated_and_the_worker_survives() {
        // One worker: if the panic killed the thread, the follow-up job
        // would never run and recv_timeout would fail (not hang).
        let pool = WorkerPool::new(1, 4);
        assert!(pool.submit(Box::new(|| panic!("poisoned job"))));
        assert!(pool.submit(Box::new(|| panic!("still poisoned"))));
        let (tx, rx) = mpsc::channel();
        assert!(pool.submit(Box::new(move || {
            tx.send(7usize).unwrap();
        })));
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(30))
                .expect("worker survived both panics"),
            7
        );
        assert_eq!(pool.panic_count(), 2);
        assert_eq!(pool.num_workers(), 1);
    }

    #[test]
    fn try_submit_hands_a_full_queue_back() {
        // One worker parked on a gate; the queue (depth 1) fills behind
        // it and try_submit must return the overflow job intact.
        let gate = Arc::new(std::sync::Barrier::new(2));
        let pool = WorkerPool::new(1, 1);
        let g = Arc::clone(&gate);
        assert!(pool.submit(Box::new(move || {
            g.wait();
        })));
        // Fill the single queue slot (poll until the worker has picked
        // up the gated job and the slot is genuinely the queue).
        let filled = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&filled);
        while pool
            .try_submit({
                let f = Arc::clone(&f);
                Box::new(move || {
                    f.fetch_add(1, Ordering::SeqCst);
                })
            })
            .is_err()
        {
            std::thread::yield_now();
        }
        // Now the queue may briefly still drain; keep offering until a
        // Full comes back, then prove the returned job still runs.
        let returned = loop {
            let f = Arc::clone(&filled);
            match pool.try_submit(Box::new(move || {
                f.fetch_add(1, Ordering::SeqCst);
            })) {
                Ok(()) => std::thread::yield_now(),
                Err(TrySubmit::Full(job)) => break job,
                Err(TrySubmit::Closed) => panic!("pool is live"),
            }
        };
        gate.wait(); // release the worker
        returned(); // the handed-back job is intact and runnable
        assert!(filled.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn workers_pin_their_core_share() {
        let pool = WorkerPool::new(2, 1);
        let (tx, rx) = mpsc::channel();
        pool.submit(Box::new(move || {
            tx.send(rayon::current_num_threads()).unwrap();
        }));
        let ambient = rx.recv().unwrap();
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        assert_eq!(ambient, (cores / 2).max(1));
    }
}
