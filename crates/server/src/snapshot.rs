//! Durable state: typed mutation records, periodic compacted
//! snapshots, and crash recovery over the [`crate::wal`] frame format.
//!
//! The daemon's persistent state is *not* the registry and hypothesis
//! store themselves but the mutation history that produced them:
//!
//! * a `register` record carries the structure's canonical graph text
//!   (its content hash is re-derived on replay);
//! * a `solve` record carries the `(structure, sample, config)` triple
//!   plus the hypothesis id the live server assigned. The hypothesis
//!   itself is **derivable** — the learner is deterministic — so replay
//!   re-runs the solve and provably reconstructs bit-identical state,
//!   the same invariant E19/E21 gate over the network.
//!
//! Records are protocol-JSON payloads inside WAL frames, and the
//! snapshot file uses the *same* framing: a snapshot is just a
//! compacted log (registers deduplicated, solves in id order), so one
//! reader handles both files. Compaction writes `snapshot.tmp`, fsyncs
//! it, renames it over `snapshot.log`, fsyncs the directory, then
//! truncates `wal.log` — crash-safe at every step because rename is
//! atomic and the WAL is only emptied after the snapshot is durable.
//!
//! Data-dir layout:
//!
//! ```text
//! <data-dir>/snapshot.log   compacted history (WAL framing)
//! <data-dir>/wal.log        mutations since the last compaction
//! ```
//!
//! The result cache is deliberately volatile: entries are pure
//! functions of durable state and re-warm on replay for free.

use std::collections::{BTreeMap, HashSet};
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::proto::{fnv1a64, hex64, parse_hex64, Json, Request};
use crate::wal::{encode_frame, read_log, Wal};

/// Snapshot file name inside the data dir.
pub const SNAPSHOT_FILE: &str = "snapshot.log";
/// WAL file name inside the data dir.
pub const WAL_FILE: &str = "wal.log";
/// Default appends between compactions.
pub const DEFAULT_SNAPSHOT_EVERY: usize = 256;

/// One durable mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum DurableRecord {
    /// A structure was registered (canonical graph text).
    Register {
        /// The canonical graph text whose FNV-1a hash addresses it.
        graph_text: String,
    },
    /// A hypothesis was learned: the solve request that produced it
    /// plus the id the server assigned. Replay re-runs the request with
    /// the id forced, reconstructing the identical store entry.
    Solve {
        /// The server-assigned hypothesis id.
        id: u64,
        /// The originating request; always `Request::Solve` with no
        /// trace context (tracing never changes answers).
        request: Request,
    },
}

impl DurableRecord {
    /// Serialize to the frame payload (one compact protocol-JSON line).
    pub fn to_bytes(&self) -> Vec<u8> {
        let json = match self {
            DurableRecord::Register { graph_text } => Json::obj([
                ("record", Json::str("register")),
                ("graph", Json::str(graph_text.clone())),
            ]),
            DurableRecord::Solve { id, request } => Json::obj([
                ("record", Json::str("solve")),
                ("id", Json::str(hex64(*id))),
                ("req", request.to_json()),
            ]),
        };
        json.render().into_bytes()
    }

    /// Parse a frame payload back into a record.
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let json = Json::parse(text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.0))?;
        let bad = |m: String| io::Error::new(io::ErrorKind::InvalidData, m);
        match json.get("record").and_then(Json::as_str) {
            Some("register") => Ok(DurableRecord::Register {
                graph_text: json
                    .get("graph")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("register record without graph text".into()))?
                    .to_string(),
            }),
            Some("solve") => {
                let id = json
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("solve record without id".into()))
                    .and_then(|s| parse_hex64(s).map_err(|e| bad(e.0)))?;
                let request = Request::from_json(
                    json.get("req")
                        .ok_or_else(|| bad("solve record without req".into()))?,
                )
                .map_err(|e| bad(e.0))?;
                if !matches!(request, Request::Solve { .. }) {
                    return Err(bad("solve record req is not a solve".into()));
                }
                Ok(DurableRecord::Solve { id, request })
            }
            other => Err(bad(format!("unknown durable record {other:?}"))),
        }
    }
}

/// Counters describing one recovery (surfaced through the metrics
/// snapshot as `wal_records_replayed` / `snapshot_loads` /
/// `torn_tail_truncations`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records replayed from the snapshot file.
    pub snapshot_records: u64,
    /// Records replayed from the WAL proper.
    pub wal_records: u64,
    /// 1 if a snapshot file was present and loaded.
    pub snapshot_loads: u64,
    /// Torn tails discarded (snapshot and WAL counted separately).
    pub torn_tail_truncations: u64,
}

impl RecoveryStats {
    /// Total records replayed into the fresh state.
    pub fn records_replayed(&self) -> u64 {
        self.snapshot_records + self.wal_records
    }
}

/// The open durability layer of one daemon: the live WAL plus the
/// in-memory compaction table (registers deduplicated, solves keyed by
/// id) that becomes the next snapshot.
pub struct Durability {
    dir: PathBuf,
    wal: Wal,
    snapshot_every: usize,
    appends_since_compact: usize,
    registers: Vec<String>,
    register_hashes: HashSet<u64>,
    solves: BTreeMap<u64, DurableRecord>,
}

impl Durability {
    /// Open (or create) the data dir, recover the valid record history
    /// — truncating a torn WAL tail — and return the layer together
    /// with the records to replay, in application order.
    pub fn open(
        dir: &Path,
        snapshot_every: usize,
    ) -> io::Result<(Self, Vec<DurableRecord>, RecoveryStats)> {
        fs::create_dir_all(dir)?;
        let mut stats = RecoveryStats::default();

        let snap = read_log(&dir.join(SNAPSHOT_FILE))?;
        if snap.valid_len > 0 {
            stats.snapshot_loads = 1;
        }
        if snap.torn {
            stats.torn_tail_truncations += 1;
        }
        let wal_read = read_log(&dir.join(WAL_FILE))?;
        if wal_read.torn {
            stats.torn_tail_truncations += 1;
        }
        stats.snapshot_records = snap.records.len() as u64;
        stats.wal_records = wal_read.records.len() as u64;

        let mut records = Vec::with_capacity(snap.records.len() + wal_read.records.len());
        for payload in snap.records.iter().chain(wal_read.records.iter()) {
            records.push(DurableRecord::from_bytes(payload)?);
        }

        let wal = Wal::open(&dir.join(WAL_FILE), wal_read.valid_len)?;
        let mut this = Self {
            dir: dir.to_path_buf(),
            wal,
            snapshot_every: snapshot_every.max(1),
            appends_since_compact: wal_read.records.len(),
            registers: Vec::new(),
            register_hashes: HashSet::new(),
            solves: BTreeMap::new(),
        };
        for r in &records {
            this.absorb(r);
        }
        Ok((this, records, stats))
    }

    /// Absorb a record into the compaction table.
    fn absorb(&mut self, record: &DurableRecord) {
        match record {
            DurableRecord::Register { graph_text } => {
                if self.register_hashes.insert(fnv1a64(graph_text.as_bytes())) {
                    self.registers.push(graph_text.clone());
                }
            }
            DurableRecord::Solve { id, .. } => {
                self.solves.insert(*id, record.clone());
            }
        }
    }

    /// Append one mutation: fsync'd into the WAL, folded into the
    /// compaction table, and — every `snapshot_every` appends —
    /// compacted into a fresh snapshot. Returns whether a compaction
    /// ran (tests and metrics care; callers may ignore it).
    pub fn append(&mut self, record: &DurableRecord) -> io::Result<bool> {
        self.wal.append(&record.to_bytes())?;
        self.absorb(record);
        self.appends_since_compact += 1;
        if self.appends_since_compact >= self.snapshot_every {
            self.compact()?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Write the compaction table as a fresh snapshot (tmp file +
    /// atomic rename + directory fsync), then truncate the WAL.
    pub fn compact(&mut self) -> io::Result<()> {
        let tmp = self.dir.join("snapshot.tmp");
        {
            let mut f = File::create(&tmp)?;
            for text in &self.registers {
                let rec = DurableRecord::Register {
                    graph_text: text.clone(),
                };
                f.write_all(&encode_frame(&rec.to_bytes()))?;
            }
            for rec in self.solves.values() {
                f.write_all(&encode_frame(&rec.to_bytes()))?;
            }
            f.sync_data()?;
        }
        fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE))?;
        // Make the rename itself durable before dropping the WAL.
        File::open(&self.dir)?.sync_all()?;
        self.wal.reset()?;
        self.appends_since_compact = 0;
        Ok(())
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::SolverSpec;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "folearn-snap-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn solve_rec(id: u64, structure: u64) -> DurableRecord {
        DurableRecord::Solve {
            id,
            request: Request::Solve {
                structure,
                examples: vec![crate::proto::WireExample {
                    tuple: vec![0, 1],
                    label: true,
                }],
                ell: 1,
                q: 1,
                epsilon: 0.25,
                solver: SolverSpec::default_brute(),
                trace: None,
            },
        }
    }

    #[test]
    fn records_round_trip_through_bytes() {
        let recs = [
            DurableRecord::Register {
                graph_text: "colors Röd\nvertices 2\nedge 0 1\n".to_string(),
            },
            solve_rec(7, 0xdead_beef),
        ];
        for r in recs {
            assert_eq!(DurableRecord::from_bytes(&r.to_bytes()).unwrap(), r);
        }
        assert!(DurableRecord::from_bytes(b"{}").is_err());
        assert!(DurableRecord::from_bytes(b"\xff\xfe").is_err());
    }

    #[test]
    fn fresh_dir_recovers_nothing_then_remembers_appends() {
        let dir = tmp_dir("fresh");
        let (mut d, records, stats) = Durability::open(&dir, 1000).unwrap();
        assert!(records.is_empty());
        assert_eq!(stats, RecoveryStats::default());
        let reg = DurableRecord::Register {
            graph_text: "colors A\nvertices 1\n".to_string(),
        };
        assert!(!d.append(&reg).unwrap());
        assert!(!d.append(&solve_rec(1, 2)).unwrap());
        drop(d);
        let (_, records, stats) = Durability::open(&dir, 1000).unwrap();
        assert_eq!(records, vec![reg, solve_rec(1, 2)]);
        assert_eq!(stats.wal_records, 2);
        assert_eq!(stats.snapshot_loads, 0);
        assert_eq!(stats.torn_tail_truncations, 0);
    }

    #[test]
    fn compaction_moves_history_into_the_snapshot() {
        let dir = tmp_dir("compact");
        let reg = DurableRecord::Register {
            graph_text: "colors A\nvertices 1\n".to_string(),
        };
        {
            let (mut d, _, _) = Durability::open(&dir, 3).unwrap();
            d.append(&reg).unwrap();
            d.append(&reg).unwrap(); // duplicate register compacts away
            assert!(d.append(&solve_rec(1, 2)).unwrap(), "third append compacts");
        }
        let wal_len = fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        assert_eq!(wal_len, 0, "WAL empties after compaction");
        let (_, records, stats) = Durability::open(&dir, 3).unwrap();
        assert_eq!(stats.snapshot_loads, 1);
        assert_eq!(stats.wal_records, 0);
        // Compacted: the duplicate register collapsed to one record.
        assert_eq!(records, vec![reg, solve_rec(1, 2)]);
    }

    #[test]
    fn torn_wal_tail_is_truncated_and_counted() {
        let dir = tmp_dir("torn");
        {
            let (mut d, _, _) = Durability::open(&dir, 1000).unwrap();
            d.append(&solve_rec(1, 2)).unwrap();
            d.append(&solve_rec(2, 2)).unwrap();
        }
        // Tear the final record mid-frame.
        let wal_path = dir.join(WAL_FILE);
        let bytes = fs::read(&wal_path).unwrap();
        fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();
        let (_, records, stats) = Durability::open(&dir, 1000).unwrap();
        assert_eq!(records, vec![solve_rec(1, 2)]);
        assert_eq!(stats.torn_tail_truncations, 1);
        // The tear is physically gone: a re-open sees a clean log.
        let (_, records, stats) = Durability::open(&dir, 1000).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(stats.torn_tail_truncations, 0);
    }

    #[test]
    fn solves_compact_in_id_order_even_if_logged_out_of_order() {
        let dir = tmp_dir("order");
        {
            let (mut d, _, _) = Durability::open(&dir, 2).unwrap();
            d.append(&solve_rec(5, 9)).unwrap();
            d.append(&solve_rec(3, 9)).unwrap(); // triggers compaction
        }
        let (_, records, _) = Durability::open(&dir, 2).unwrap();
        assert_eq!(records, vec![solve_rec(3, 9), solve_rec(5, 9)]);
    }
}
