//! A deterministic fault-injection proxy for the wire protocol.
//!
//! [`ChaosProxy`] sits between a client and a daemon on loopback,
//! forwards newline-delimited frames in both directions, and injects
//! faults — dropped, delayed, truncated, or garbled frames — under a
//! seeded RNG, so a "flaky network" run is exactly reproducible from
//! its seed. Experiment E19 drives the Lemma 7 reduction through this
//! proxy and asserts the verdicts stay bit-identical to an in-process
//! run; the retry layer ([`crate::client::RetryingClient`]) is what
//! makes that true.
//!
//! # Fault semantics
//!
//! * [`FaultKind::Drop`] — the frame is consumed and never forwarded.
//!   The waiting peer sees silence; a client with a read deadline times
//!   out and retries.
//! * [`FaultKind::Delay`] — the frame is forwarded after a fixed sleep.
//!   With a delay longer than the client's read deadline this looks
//!   like a drop that later wastes server work; shorter, it is pure
//!   added latency.
//! * [`FaultKind::Truncate`] — the first half of the frame is forwarded
//!   without its newline and the connection is torn down, so the
//!   receiver observes EOF mid-frame. The server answers with a
//!   `malformed request` error; a client sees a dead connection and
//!   reconnects.
//! * [`FaultKind::Garble`] — one payload byte is overwritten with
//!   `0x01`. A raw control byte is invalid inside a JSON string *and*
//!   invalid as structure, so the receiver is guaranteed a parse error
//!   — corruption is always detectable, never a silently different
//!   request. The server replies `malformed request: …` (retryable by
//!   construction); a client gets a protocol error and retries.
//! * [`FaultKind::Reset`] — the first half of the frame is forwarded,
//!   then the connection is aborted RST-style: `SO_LINGER(0)` on both
//!   sockets and no FIN handshake (on Linux; elsewhere the abort
//!   degrades to the truncate-style teardown). The peer sees the
//!   connection *reset* mid-frame — the "process yanked out from under
//!   the socket" shape, which is exactly what a SIGKILL'd backend looks
//!   like to its clients (experiment E24's network half).
//!
//! Frames are decided independently with probability
//! [`ChaosConfig::rate`], per direction, from a per-connection stream
//! seeded by [`ChaosConfig::seed`] — deterministic given the connection
//! order, which single-connection tests and the E19 bench guarantee.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the proxy does to a frame it selects for injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Swallow the frame.
    Drop,
    /// Forward the frame after [`ChaosConfig::delay`].
    Delay,
    /// Forward half the frame, then tear the connection down.
    Truncate,
    /// Overwrite one payload byte with `0x01` (guaranteed parse error).
    Garble,
    /// Forward half the frame, then abort the connection without a FIN
    /// (`SO_LINGER(0)`, so the peer observes an RST).
    Reset,
}

impl FaultKind {
    /// Stable lowercase name (bench artifact keys).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Truncate => "truncate",
            FaultKind::Garble => "garble",
            FaultKind::Reset => "reset",
        }
    }
}

/// Which direction(s) of the relay inject faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Requests (client → server) only.
    ToServer,
    /// Responses (server → client) only.
    ToClient,
    /// Both directions.
    Both,
}

impl Direction {
    fn covers(self, to_server: bool) -> bool {
        match self {
            Direction::ToServer => to_server,
            Direction::ToClient => !to_server,
            Direction::Both => true,
        }
    }
}

/// Proxy configuration. `rate == 0.0` makes the proxy a transparent
/// relay (the E19 baseline).
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Fault applied to selected frames.
    pub kind: FaultKind,
    /// Per-frame injection probability in `[0, 1]`.
    pub rate: f64,
    /// Sleep for [`FaultKind::Delay`]; ignored by the other kinds.
    pub delay: Duration,
    /// Which relay direction(s) inject.
    pub direction: Direction,
    /// Root seed; each connection half derives its own stream from it.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            kind: FaultKind::Drop,
            rate: 0.0,
            delay: Duration::from_millis(200),
            direction: Direction::Both,
            seed: 0,
        }
    }
}

/// How often a blocked proxy read re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A running fault-injection proxy. Listens on its own loopback port
/// and relays every accepted connection to the upstream address.
pub struct ChaosProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    faults: Arc<AtomicU64>,
    acceptor: Option<JoinHandle<()>>,
    pumps: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ChaosProxy {
    /// Bind an ephemeral loopback port and start relaying to
    /// `upstream`.
    pub fn start(upstream: SocketAddr, config: ChaosConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let faults = Arc::new(AtomicU64::new(0));
        let pumps: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let faults = Arc::clone(&faults);
            let pumps = Arc::clone(&pumps);
            let config = config.clone();
            std::thread::Builder::new()
                .name("chaos-acceptor".to_string())
                .spawn(move || {
                    let mut conn_index = 0u64;
                    for incoming in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(client) = incoming else { continue };
                        let Ok(server) = TcpStream::connect(upstream) else {
                            // Upstream refused: drop the client; it will
                            // observe EOF and (if retrying) try again.
                            continue;
                        };
                        let mut handles = pumps.lock();
                        handles.retain(|h| !h.is_finished());
                        // Shared by this connection's two pumps: a reset
                        // fault on one half tells the sibling to drop
                        // its sockets *without* a FIN-sending shutdown.
                        let abort = Arc::new(AtomicBool::new(false));
                        for to_server in [true, false] {
                            let (from, to) = if to_server {
                                (client.try_clone(), server.try_clone())
                            } else {
                                (server.try_clone(), client.try_clone())
                            };
                            let (Ok(from), Ok(to)) = (from, to) else { continue };
                            // Distinct deterministic stream per
                            // connection half.
                            let half_seed = config
                                .seed
                                .wrapping_add(conn_index.wrapping_mul(2))
                                .wrapping_add(u64::from(!to_server));
                            let shutdown = Arc::clone(&shutdown);
                            let faults = Arc::clone(&faults);
                            let abort = Arc::clone(&abort);
                            let config = config.clone();
                            let handle = std::thread::Builder::new()
                                .name("chaos-pump".to_string())
                                .spawn(move || {
                                    pump(
                                        &from, &to, to_server, half_seed, &config, &shutdown,
                                        &abort, &faults,
                                    )
                                })
                                .expect("spawn chaos pump thread");
                            handles.push(handle);
                        }
                        conn_index += 1;
                    }
                })?
        };
        Ok(Self {
            addr,
            shutdown,
            faults,
            acceptor: Some(acceptor),
            pumps,
        })
    }

    /// The proxy's listen address — point clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total frames faulted (all kinds, both directions) so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Stop relaying and join all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the listener so a blocking accept() observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        loop {
            let handle = self.pumps.lock().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Relay frames `from → to`, injecting faults on this half if the
/// configured direction covers it. Returns (tearing both streams down)
/// on EOF, on a hard I/O error, on a truncate fault, or on proxy
/// shutdown; a reset fault (here or on the sibling half, via `abort`)
/// instead returns *without* the teardown so no FIN precedes the RST.
#[allow(clippy::too_many_arguments)]
fn pump(
    from: &TcpStream,
    to: &TcpStream,
    to_server: bool,
    seed: u64,
    config: &ChaosConfig,
    shutdown: &AtomicBool,
    abort: &AtomicBool,
    faults: &AtomicU64,
) {
    let _ = from.set_read_timeout(Some(POLL_INTERVAL));
    let _ = to.set_nodelay(true);
    let mut rng = StdRng::seed_from_u64(seed);
    let inject_here = config.direction.covers(to_server) && config.rate > 0.0;
    let mut reader = BufReader::new(from);
    let mut frame: Vec<u8> = Vec::new();
    loop {
        frame.clear();
        // Accumulate one newline-terminated frame, polling the shutdown
        // flag on read timeouts (partial bytes stay in `frame`).
        let complete = loop {
            if shutdown.load(Ordering::SeqCst) {
                return teardown(from, to);
            }
            if abort.load(Ordering::SeqCst) {
                // The sibling half injected a reset: drop our socket
                // handles without shutdown() so the linger(0) close
                // emits an RST, not a FIN.
                return;
            }
            match reader.read_until(b'\n', &mut frame) {
                Ok(0) => break false,
                Ok(_) => {
                    if frame.last() == Some(&b'\n') {
                        break true;
                    }
                    break false; // EOF mid-frame: relay what arrived
                }
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return teardown(from, to),
            }
        };
        if frame.is_empty() {
            return teardown(from, to);
        }
        if complete && inject_here && rng.random_bool(config.rate) {
            faults.fetch_add(1, Ordering::Relaxed);
            folearn_obs::count(folearn_obs::Counter::FaultsInjected, 1);
            match config.kind {
                FaultKind::Drop => continue,
                FaultKind::Delay => std::thread::sleep(config.delay),
                FaultKind::Truncate => {
                    let mut w = to;
                    let _ = w.write_all(&frame[..frame.len() / 2]).and_then(|()| w.flush());
                    return teardown(from, to);
                }
                FaultKind::Garble => {
                    // Never the trailing newline: framing stays intact,
                    // the payload becomes unparseable.
                    if frame.len() > 1 {
                        let i = rng.random_range(0..frame.len() - 1);
                        frame[i] = 0x01;
                    }
                }
                FaultKind::Reset => {
                    let mut w = to;
                    let _ = w.write_all(&frame[..frame.len() / 2]).and_then(|()| w.flush());
                    set_linger_zero(from);
                    set_linger_zero(to);
                    abort.store(true, Ordering::SeqCst);
                    // No teardown: shutdown() would send a FIN first.
                    // Dropping the linger(0) sockets — ours now, the
                    // sibling's within one poll interval — makes the
                    // kernel discard pending data and send an RST.
                    return;
                }
            }
        }
        let mut writer = to;
        if writer.write_all(&frame).and_then(|()| writer.flush()).is_err() {
            return teardown(from, to);
        }
        if !complete {
            return teardown(from, to);
        }
    }
}

/// Shut both halves down so the opposite pump (blocked in a read)
/// observes EOF and exits too.
fn teardown(from: &TcpStream, to: &TcpStream) {
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Arm an abortive close: `SO_LINGER{on, 0s}`, so the socket's final
/// close discards queued data and answers with an RST instead of the
/// FIN handshake. Options are per-socket, not per-fd, so setting it on
/// this pump's handle covers the sibling's duplicate too.
#[cfg(target_os = "linux")]
fn set_linger_zero(stream: &TcpStream) {
    use std::os::fd::AsRawFd;
    #[repr(C)]
    struct Linger {
        l_onoff: i32,
        l_linger: i32,
    }
    const SOL_SOCKET: i32 = 1;
    const SO_LINGER: i32 = 13;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
    }
    let linger = Linger {
        l_onoff: 1,
        l_linger: 0,
    };
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_LINGER,
            (&linger as *const Linger).cast(),
            std::mem::size_of::<Linger>() as u32,
        )
    };
    debug_assert_eq!(rc, 0, "SO_LINGER on a live TCP socket cannot fail");
}

/// Off Linux the reset degrades to a plain abortive-ish close (the
/// partial write and missing newline still reach the peer).
#[cfg(not(target_os = "linux"))]
fn set_linger_zero(_stream: &TcpStream) {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    /// A trivial upstream echo server: reads frames, echoes them back.
    fn echo_upstream() -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            // Serve a bounded number of connections, then exit.
            for _ in 0..8 {
                let Ok((stream, _)) = listener.accept() else { return };
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut writer = stream;
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {
                            if writer.write_all(line.as_bytes()).is_err() {
                                break;
                            }
                            let _ = writer.flush();
                        }
                    }
                }
            }
        });
        (addr, handle)
    }

    fn roundtrip(addr: SocketAddr, msg: &str) -> std::io::Result<String> {
        let mut s = TcpStream::connect(addr)?;
        s.set_read_timeout(Some(Duration::from_millis(500)))?;
        s.write_all(msg.as_bytes())?;
        let mut reader = BufReader::new(s);
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => Err(std::io::Error::new(ErrorKind::UnexpectedEof, "eof")),
            Ok(_) => Ok(line),
            Err(e) => Err(e),
        }
    }

    #[test]
    fn transparent_at_rate_zero() {
        let (upstream, _h) = echo_upstream();
        let proxy = ChaosProxy::start(upstream, ChaosConfig::default()).unwrap();
        let got = roundtrip(proxy.addr(), "hello chaos\n").unwrap();
        assert_eq!(got, "hello chaos\n");
        assert_eq!(proxy.faults_injected(), 0);
        proxy.shutdown();
    }

    #[test]
    fn drop_at_rate_one_times_out_and_counts() {
        let (upstream, _h) = echo_upstream();
        let proxy = ChaosProxy::start(
            upstream,
            ChaosConfig {
                kind: FaultKind::Drop,
                rate: 1.0,
                direction: Direction::ToServer,
                ..ChaosConfig::default()
            },
        )
        .unwrap();
        let err = roundtrip(proxy.addr(), "swallowed\n").unwrap_err();
        assert!(
            matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut),
            "expected a read timeout, got {err:?}"
        );
        assert_eq!(proxy.faults_injected(), 1);
        proxy.shutdown();
    }

    #[test]
    fn garble_corrupts_but_preserves_framing() {
        let (upstream, _h) = echo_upstream();
        let proxy = ChaosProxy::start(
            upstream,
            ChaosConfig {
                kind: FaultKind::Garble,
                rate: 1.0,
                direction: Direction::ToServer,
                seed: 7,
                ..ChaosConfig::default()
            },
        )
        .unwrap();
        let got = roundtrip(proxy.addr(), "abcdefgh\n").unwrap();
        assert!(got.ends_with('\n'), "framing newline survives");
        assert_ne!(got, "abcdefgh\n");
        assert!(
            got.bytes().filter(|&b| b == 0x01).count() == 1,
            "exactly one byte garbled: {got:?}"
        );
        proxy.shutdown();
    }

    #[test]
    fn truncate_tears_the_connection_down() {
        let (upstream, _h) = echo_upstream();
        let proxy = ChaosProxy::start(
            upstream,
            ChaosConfig {
                kind: FaultKind::Truncate,
                rate: 1.0,
                direction: Direction::ToClient,
                ..ChaosConfig::default()
            },
        )
        .unwrap();
        let mut s = TcpStream::connect(proxy.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        s.write_all(b"0123456789\n").unwrap();
        // The response frame is cut in half and the socket closed: we
        // read some prefix of the echo, then EOF — never a full frame.
        let mut buf = Vec::new();
        let mut reader = BufReader::new(s);
        let n = reader.read_to_end(&mut buf).unwrap();
        assert!(n < "0123456789\n".len(), "partial frame, got {buf:?}");
        assert!(!buf.contains(&b'\n'));
        assert_eq!(proxy.faults_injected(), 1);
        proxy.shutdown();
    }

    #[test]
    fn reset_aborts_the_connection_mid_frame() {
        let (upstream, _h) = echo_upstream();
        let proxy = ChaosProxy::start(
            upstream,
            ChaosConfig {
                kind: FaultKind::Reset,
                rate: 1.0,
                direction: Direction::ToClient,
                ..ChaosConfig::default()
            },
        )
        .unwrap();
        let mut s = TcpStream::connect(proxy.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        s.write_all(b"0123456789\n").unwrap();
        // The echo is cut in half and the connection aborted: some
        // prefix may arrive, then ECONNRESET (or EOF, depending on the
        // kernel's delivery order) — never a complete frame.
        let mut buf = Vec::new();
        let mut reader = BufReader::new(s);
        let _ = reader.read_to_end(&mut buf);
        assert!(!buf.contains(&b'\n'), "no complete frame, got {buf:?}");
        assert!(
            buf.len() < "0123456789\n".len(),
            "at most a partial frame, got {buf:?}"
        );
        assert_eq!(proxy.faults_injected(), 1);
        proxy.shutdown();
    }

    #[test]
    fn same_seed_same_reset_pattern() {
        // Reset kills the connection, so the pattern unit is one
        // connection per frame: connection order is what makes the
        // per-half RNG streams reproducible.
        let run = |seed: u64| -> Vec<bool> {
            let (upstream, _h) = echo_upstream();
            let proxy = ChaosProxy::start(
                upstream,
                ChaosConfig {
                    kind: FaultKind::Reset,
                    rate: 0.5,
                    direction: Direction::ToServer,
                    seed,
                    ..ChaosConfig::default()
                },
            )
            .unwrap();
            let mut outcomes = Vec::new();
            for i in 0..8 {
                let msg = format!("conn-{i}\n");
                outcomes.push(matches!(roundtrip(proxy.addr(), &msg), Ok(line) if line == msg));
            }
            proxy.shutdown();
            outcomes
        };
        let a = run(0xE24);
        let b = run(0xE24);
        let c = run(0xE25);
        assert_eq!(a, b, "same seed, same pattern");
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
        assert_ne!(a, c, "different seed, different pattern");
    }

    #[test]
    fn same_seed_same_fault_pattern() {
        // Two proxies with the same seed and a fractional rate must
        // fault the same frames of an identical single-connection run.
        let run = |seed: u64| -> Vec<bool> {
            let (upstream, _h) = echo_upstream();
            let proxy = ChaosProxy::start(
                upstream,
                ChaosConfig {
                    kind: FaultKind::Garble,
                    rate: 0.5,
                    direction: Direction::ToServer,
                    seed,
                    ..ChaosConfig::default()
                },
            )
            .unwrap();
            let mut s = TcpStream::connect(proxy.addr()).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let mut outcomes = Vec::new();
            for i in 0..16 {
                let msg = format!("frame-{i:02}\n");
                s.write_all(msg.as_bytes()).unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                outcomes.push(line != msg); // true = garbled
            }
            proxy.shutdown();
            outcomes
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed, same pattern");
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
        assert_ne!(a, c, "different seed, different pattern");
    }
}
