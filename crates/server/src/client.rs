//! Blocking client for the folearn daemon.
//!
//! One [`Client`] owns one TCP connection and speaks the
//! newline-delimited JSON protocol of [`crate::proto`] synchronously:
//! [`Client::call`] writes a request line, then blocks for the single
//! response line. Typed helpers (`register`, `solve`, `evaluate`, …)
//! wrap `call` and unwrap the expected response variant, turning
//! `error` responses and protocol violations into [`ClientError`].

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::proto::{ProtoError, Request, Response, SolveOutcome, SolverSpec, WireExample};

/// Everything that can go wrong talking to the daemon.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, EOF mid-exchange).
    Io(std::io::Error),
    /// The response line was not valid protocol JSON.
    Proto(ProtoError),
    /// The daemon replied with an `error` response.
    Server(String),
    /// The daemon replied with a well-formed but unexpected variant.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// A blocking connection to a folearn daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a daemon at `addr` (e.g. `"127.0.0.1:7071"`).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request and block for its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut line = request.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let response = Response::decode(reply.trim_end())?;
        if let Response::Error { message } = response {
            return Err(ClientError::Server(message));
        }
        Ok(response)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Upload a structure; returns its content hash.
    pub fn register(&mut self, graph_text: &str) -> Result<u64, ClientError> {
        let req = Request::Register {
            graph_text: graph_text.to_string(),
        };
        match self.call(&req)? {
            Response::Registered { structure, .. } => Ok(structure),
            other => Err(unexpected("registered", &other)),
        }
    }

    /// Solve an ERM instance on a registered structure.
    pub fn solve(
        &mut self,
        structure: u64,
        examples: Vec<WireExample>,
        ell: usize,
        q: usize,
        epsilon: f64,
        solver: SolverSpec,
    ) -> Result<SolveOutcome, ClientError> {
        let req = Request::Solve {
            structure,
            examples,
            ell,
            q,
            epsilon,
            solver,
        };
        match self.call(&req)? {
            Response::Solved(outcome) => Ok(outcome),
            other => Err(unexpected("solved", &other)),
        }
    }

    /// Ask a stored hypothesis to classify tuples; with `labels`, the
    /// server also reports the misclassification rate.
    pub fn evaluate(
        &mut self,
        structure: u64,
        hypothesis: u64,
        tuples: Vec<Vec<u32>>,
        labels: Option<Vec<bool>>,
    ) -> Result<(Vec<bool>, Option<f64>), ClientError> {
        let req = Request::Evaluate {
            structure,
            hypothesis,
            tuples,
            labels,
        };
        match self.call(&req)? {
            Response::Predictions { labels, error } => Ok((labels, error)),
            other => Err(unexpected("predictions", &other)),
        }
    }

    /// Model-check an FO sentence on a registered structure.
    pub fn modelcheck(&mut self, structure: u64, formula: &str) -> Result<bool, ClientError> {
        let req = Request::ModelCheck {
            structure,
            formula: formula.to_string(),
        };
        match self.call(&req)? {
            Response::Truth { holds } => Ok(holds),
            other => Err(unexpected("truth", &other)),
        }
    }

    /// Fetch the server's metrics snapshot as JSON.
    pub fn stats(&mut self) -> Result<crate::proto::Json, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats { data } => Ok(data),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Ask the daemon to shut down.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Bye { .. } => Ok(()),
            other => Err(unexpected("bye", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Unexpected(format!("wanted `{wanted}`, got `{}`", got.encode()))
}
