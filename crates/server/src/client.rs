//! Blocking clients for the folearn daemon.
//!
//! Two client flavours speak the newline-delimited JSON protocol of
//! [`crate::proto`] synchronously:
//!
//! * [`Client`] — one TCP connection, one request in flight. A failed
//!   or timed-out exchange is surfaced as a [`ClientError`] and the
//!   connection is left in an unknown state (a response may still be in
//!   flight), so callers must reconnect after any error.
//! * [`RetryingClient`] — wraps the connect parameters plus a
//!   [`RetryPolicy`]: on a retryable failure it drops the connection,
//!   sleeps a capped exponential backoff with deterministic seeded
//!   jitter, reconnects, and re-sends. Safe because every request the
//!   protocol offers is idempotent (`register` is content-addressed,
//!   `solve` is deterministic and cached, `evaluate`/`modelcheck` are
//!   pure) — a request that executed server-side but whose response was
//!   lost re-executes to the *same* answer.
//!
//! Both implement [`ClientApi`], which carries the typed helpers
//! (`register`, `solve`, `evaluate`, …) as default methods over the one
//! required `call`, so code that drives a daemon — the load generator,
//! the hardness reduction's `RemoteOracle`, the CLI — is generic over
//! whether it wants deadlines and retries.
//!
//! Deadlines are configured with [`ClientConfig`]: connect, read, and
//! write timeouts. The default config has *no* deadlines (a call can
//! block as long as the server computes); anything that talks through
//! an unreliable path should set them and pair them with a retry
//! policy.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::proto::{ProtoError, Request, Response, SolveOutcome, SolverSpec, WireExample};

/// Everything that can go wrong talking to the daemon.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, EOF mid-exchange,
    /// or an expired read/write deadline).
    Io(std::io::Error),
    /// The response line was not valid protocol JSON.
    Proto(ProtoError),
    /// The daemon replied with an `error` response.
    Server {
        /// The human-readable message.
        message: String,
        /// The machine-readable class, when the daemon sent one (e.g.
        /// `"unknown_structure"` from the cluster router).
        code: Option<String>,
    },
    /// The daemon replied with a well-formed but unexpected variant.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server {
                message,
                code: Some(code),
            } => write!(f, "server error [{code}]: {message}"),
            ClientError::Server {
                message,
                code: None,
            } => write!(f, "server error: {message}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Socket deadlines for a [`Client`]. `None` means "block forever" —
/// the default, correct for trusted loopback use; set all three when
/// the path to the daemon can stall.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection.
    pub connect_timeout: Option<Duration>,
    /// Deadline for each blocking read (a response that takes longer —
    /// slow solve or dropped frame — surfaces as `ClientError::Io`).
    pub read_timeout: Option<Duration>,
    /// Deadline for each blocking write.
    pub write_timeout: Option<Duration>,
}

impl ClientConfig {
    /// All three deadlines set to `timeout`.
    pub fn with_deadline(timeout: Duration) -> Self {
        Self {
            connect_timeout: Some(timeout),
            read_timeout: Some(timeout),
            write_timeout: Some(timeout),
        }
    }
}

/// A blocking connection to a folearn daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a daemon at `addr` (e.g. `"127.0.0.1:7071"`) with no
    /// deadlines.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connect with explicit socket deadlines.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: &ClientConfig,
    ) -> Result<Self, ClientError> {
        let sock = resolve(addr)?;
        let stream = match config.connect_timeout {
            Some(t) => TcpStream::connect_timeout(&sock, t)?,
            None => TcpStream::connect(sock)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }
}

/// Resolve `addr` to its first socket address.
fn resolve(addr: impl ToSocketAddrs) -> Result<SocketAddr, ClientError> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        ClientError::Io(std::io::Error::new(
            std::io::ErrorKind::AddrNotAvailable,
            "address resolved to nothing",
        ))
    })
}

/// The request/response surface of a daemon connection: one required
/// `call`, typed helpers on top. Implemented by [`Client`] (one shot,
/// fail fast) and [`RetryingClient`] (deadlines + backoff + reconnect).
pub trait ClientApi {
    /// Send one request and block for its response. An `error` response
    /// is surfaced as [`ClientError::Server`].
    fn call(&mut self, request: &Request) -> Result<Response, ClientError>;

    /// Liveness check.
    fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Upload a structure; returns its content hash.
    fn register(&mut self, graph_text: &str) -> Result<u64, ClientError> {
        let req = Request::Register {
            graph_text: graph_text.to_string(),
        };
        match self.call(&req)? {
            Response::Registered { structure, .. } => Ok(structure),
            other => Err(unexpected("registered", &other)),
        }
    }

    /// Solve an ERM instance on a registered structure.
    fn solve(
        &mut self,
        structure: u64,
        examples: Vec<WireExample>,
        ell: usize,
        q: usize,
        epsilon: f64,
        solver: SolverSpec,
    ) -> Result<SolveOutcome, ClientError> {
        let req = Request::Solve {
            structure,
            examples,
            ell,
            q,
            epsilon,
            solver,
            trace: None,
        };
        match self.call(&req)? {
            Response::Solved(outcome) => Ok(outcome),
            other => Err(unexpected("solved", &other)),
        }
    }

    /// Solve with an explicit trace context: the sampling decision is
    /// the caller's. A router only stitches (and asks its backend for
    /// the span subtree) for solves that carry a context, so untraced
    /// traffic pays nothing for the tracing subsystem.
    #[allow(clippy::too_many_arguments)]
    fn solve_traced(
        &mut self,
        structure: u64,
        examples: Vec<WireExample>,
        ell: usize,
        q: usize,
        epsilon: f64,
        solver: SolverSpec,
        trace: crate::proto::TraceContext,
    ) -> Result<SolveOutcome, ClientError> {
        let req = Request::Solve {
            structure,
            examples,
            ell,
            q,
            epsilon,
            solver,
            trace: Some(trace),
        };
        match self.call(&req)? {
            Response::Solved(outcome) => Ok(outcome),
            other => Err(unexpected("solved", &other)),
        }
    }

    /// Ask a stored hypothesis to classify tuples; with `labels`, the
    /// server also reports the misclassification rate.
    fn evaluate(
        &mut self,
        structure: u64,
        hypothesis: u64,
        tuples: Vec<Vec<u32>>,
        labels: Option<Vec<bool>>,
    ) -> Result<(Vec<bool>, Option<f64>), ClientError> {
        let req = Request::Evaluate {
            structure,
            hypothesis,
            tuples,
            labels,
        };
        match self.call(&req)? {
            Response::Predictions { labels, error, .. } => Ok((labels, error)),
            other => Err(unexpected("predictions", &other)),
        }
    }

    /// Model-check an FO sentence on a registered structure with the
    /// tree-walking evaluator.
    fn modelcheck(&mut self, structure: u64, formula: &str) -> Result<bool, ClientError> {
        self.modelcheck_with_engine(structure, formula, folearn_logic::vm::EvalEngine::TreeWalk)
    }

    /// Model-check with an explicit formula-evaluation engine.
    fn modelcheck_with_engine(
        &mut self,
        structure: u64,
        formula: &str,
        engine: folearn_logic::vm::EvalEngine,
    ) -> Result<bool, ClientError> {
        let req = Request::ModelCheck {
            structure,
            formula: formula.to_string(),
            engine,
            trace: None,
        };
        match self.call(&req)? {
            Response::Truth { holds, .. } => Ok(holds),
            other => Err(unexpected("truth", &other)),
        }
    }

    /// Fetch the daemon's content inventory: sorted structure hashes
    /// plus sorted `(hypothesis id, structure)` bindings. The router's
    /// anti-entropy pass diffs this against expected placement.
    fn inventory(
        &mut self,
    ) -> Result<(Vec<u64>, Vec<crate::proto::WireBinding>), ClientError> {
        match self.call(&Request::Inventory)? {
            Response::Inventory {
                structures,
                hypotheses,
            } => Ok((structures, hypotheses)),
            other => Err(unexpected("inventory", &other)),
        }
    }

    /// Fetch the server's metrics snapshot as JSON.
    fn stats(&mut self) -> Result<crate::proto::Json, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats { data } => Ok(data),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Ask the daemon to shut down.
    fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Bye { .. } => Ok(()),
            other => Err(unexpected("bye", &other)),
        }
    }
}

impl ClientApi for Client {
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut line = request.encode();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let response = Response::decode(reply.trim_end())?;
        if let Response::Error { message, code } = response {
            return Err(ClientError::Server { message, code });
        }
        Ok(response)
    }
}

/// When (and how often, and how fast) a [`RetryingClient`] re-sends.
///
/// Backoff for retry `n` (1-based) is `base_delay · 2^{n-1}` capped at
/// `max_delay`, half fixed and half drawn uniformly by a [`StdRng`]
/// seeded from `seed` — so two clients with the same seed issue the
/// same delays ("equal jitter", deterministic for the experiments).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per call on top of the initial attempt (`0` = fail fast).
    pub max_retries: u32,
    /// First backoff delay.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// No retries: behave exactly like a plain [`Client`].
    fn default() -> Self {
        Self::none()
    }
}

impl RetryPolicy {
    /// Never retry.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            seed: 0,
        }
    }

    /// A sensible default for unreliable paths: up to `max_retries`
    /// re-sends, 10 ms base delay, 500 ms cap.
    pub fn backoff(max_retries: u32, seed: u64) -> Self {
        Self {
            max_retries,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            seed,
        }
    }

    /// Is this failure worth a retry?
    ///
    /// Transport-level failures (`Io`, `Proto`, `Unexpected`) always
    /// are: a timeout, a dead socket, or an undecodable/mismatched
    /// frame all mean the *path* failed, not the request. A `Server`
    /// error is the daemon deterministically rejecting the request —
    /// not retryable — with one exception: a `malformed request` reply
    /// to a client that knows it sent a well-formed frame proves the
    /// frame was corrupted in flight, so it is transport after all.
    pub fn is_retryable(error: &ClientError) -> bool {
        match error {
            ClientError::Io(_) | ClientError::Proto(_) | ClientError::Unexpected(_) => true,
            ClientError::Server { message, .. } => message.starts_with("malformed request"),
        }
    }

    /// The delay before retry `attempt` (1-based).
    fn delay(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let base = self.base_delay.as_nanos().min(u128::from(u64::MAX)) as u64;
        let cap = self.max_delay.as_nanos().min(u128::from(u64::MAX)) as u64;
        let exp = base
            .saturating_mul(1u64.checked_shl(attempt.saturating_sub(1)).unwrap_or(u64::MAX))
            .min(cap);
        if exp == 0 {
            return Duration::ZERO;
        }
        let half = exp / 2;
        let jitter = if half == 0 {
            0
        } else {
            rng.random_range(0..=half)
        };
        Duration::from_nanos(half + jitter)
    }
}

/// Counters a [`RetryingClient`] keeps about its own behaviour.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Calls re-sent after a retryable failure.
    pub retries: u64,
    /// Connections (re-)established after the initial one.
    pub reconnects: u64,
    /// `retry_histogram[n]` = successful calls that needed `n` retries.
    pub retry_histogram: Vec<u64>,
}

impl TransportStats {
    fn record_success(&mut self, retries_used: u32) {
        let idx = retries_used as usize;
        if self.retry_histogram.len() <= idx {
            self.retry_histogram.resize(idx + 1, 0);
        }
        self.retry_histogram[idx] += 1;
    }
}

/// A self-healing daemon connection: deadlines, capped exponential
/// backoff with deterministic jitter, and automatic reconnect.
///
/// An unsolicited `bye` (idle timeout, request limit, connection cap)
/// observed mid-call is treated as a retryable failure too: the server
/// closed this connection, so the client re-establishes and re-sends.
pub struct RetryingClient {
    addr: SocketAddr,
    config: ClientConfig,
    policy: RetryPolicy,
    rng: StdRng,
    conn: Option<Client>,
    ever_connected: bool,
    stats: TransportStats,
}

impl RetryingClient {
    /// Connect to `addr` with deadlines and a retry policy. The initial
    /// connection is itself established under the policy.
    pub fn connect(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
        policy: RetryPolicy,
    ) -> Result<Self, ClientError> {
        let addr = resolve(addr)?;
        let mut this = Self {
            addr,
            config,
            rng: StdRng::seed_from_u64(policy.seed),
            policy,
            conn: None,
            ever_connected: false,
            stats: TransportStats::default(),
        };
        let mut attempt = 0u32;
        loop {
            match this.ensure_conn().map(|_| ()) {
                Ok(()) => return Ok(this),
                Err(e) => {
                    if attempt >= this.policy.max_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    this.stats.retries += 1;
                    folearn_obs::count(folearn_obs::Counter::Retries, 1);
                    let delay = this.policy.delay(attempt, &mut this.rng);
                    std::thread::sleep(delay);
                }
            }
        }
    }

    /// The resolved daemon address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Retry/reconnect counters so far.
    pub fn transport_stats(&self) -> &TransportStats {
        &self.stats
    }

    fn ensure_conn(&mut self) -> Result<&mut Client, ClientError> {
        if self.conn.is_none() {
            let fresh = Client::connect_with(self.addr, &self.config)?;
            if self.ever_connected {
                self.stats.reconnects += 1;
                folearn_obs::count(folearn_obs::Counter::Reconnects, 1);
            }
            self.conn = Some(fresh);
            self.ever_connected = true;
        }
        Ok(self.conn.as_mut().expect("just set"))
    }
}

impl ClientApi for RetryingClient {
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut retries_used = 0u32;
        loop {
            let outcome = match self.ensure_conn() {
                Ok(conn) => conn.call(request),
                Err(e) => Err(e),
            };
            let error = match outcome {
                // An unsolicited bye mid-call means the server is closing
                // this connection (idle timeout, request limit, capacity):
                // reconnect and re-send, unless we asked for it.
                Ok(Response::Bye { reason }) if !matches!(request, Request::Shutdown) => {
                    ClientError::Unexpected(format!("server said bye: {reason}"))
                }
                Ok(response) => {
                    if matches!(response, Response::Bye { .. }) {
                        self.conn = None; // shutdown acknowledged; conn is done
                    }
                    self.stats.record_success(retries_used);
                    return Ok(response);
                }
                Err(e) => e,
            };
            // The connection may have a stale response in flight — never
            // reuse it after a failed exchange.
            self.conn = None;
            if retries_used >= self.policy.max_retries || !RetryPolicy::is_retryable(&error) {
                return Err(error);
            }
            retries_used += 1;
            self.stats.retries += 1;
            folearn_obs::count(folearn_obs::Counter::Retries, 1);
            let delay = self.policy.delay(retries_used, &mut self.rng);
            std::thread::sleep(delay);
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Unexpected(format!("wanted `{wanted}`, got `{}`", got.encode()))
}
