//! The load generator: drives a daemon with a deterministic mix of
//! requests from several concurrent client connections and reports
//! per-operation latency statistics.
//!
//! Workloads are seeded, so two runs against equivalent servers issue
//! the same request streams (per worker) — that is what lets experiment
//! E17 compare cold versus cache-warm service times meaningfully. Each
//! worker owns one connection and loops a weighted mix of `solve`
//! (drawn from a small pool of distinct samples, so repeats hit the
//! result cache), `evaluate` on the hypotheses those solves return,
//! `modelcheck`, and `stats`.
//!
//! With [`LoadgenConfig::pipeline`] ≥ 2 each worker switches to the
//! pipelined wire protocol the event core is built for: the whole
//! request schedule is encoded up front (the structure hash is computed
//! client-side from the canonical graph text, so nothing depends on a
//! reply), up to `pipeline` requests ride in flight per connection, and
//! the worker's *schedule position survives reconnects* — a `bye`
//! (request budget, shutdown) or transport failure re-sends only the
//! unanswered window on a fresh connection, so every run completes
//! exactly `requests_per_conn` requests per worker and the per-target
//! rows of the report stay exact.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::client::{ClientApi, ClientConfig, ClientError, RetryPolicy, RetryingClient};
use crate::proto::{fnv1a64, Json, Request, Response, SolverSpec, WireExample};

/// Shape of a load-generation run.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests issued per connection.
    pub requests_per_conn: usize,
    /// Base RNG seed; worker `i` uses `seed + i`.
    pub seed: u64,
    /// Number of distinct solve samples per worker; smaller pools mean
    /// more cache hits.
    pub sample_pool: usize,
    /// Parameters per hypothesis (`ell`) for generated solves.
    pub ell: usize,
    /// Quantifier rank for generated solves.
    pub q: usize,
    /// Socket deadlines for each worker's connection (default: none).
    pub client: ClientConfig,
    /// Retry policy for each worker; worker `i` jitters from
    /// `retry.seed + i` so concurrent workers don't sleep in lockstep.
    pub retry: RetryPolicy,
    /// Pipelined requests in flight per connection. `0` or `1` keeps
    /// the strict request/reply loop; ≥ 2 switches to the pipelined
    /// driver (no `evaluate` calls — those need a reply before the next
    /// request, which is exactly what pipelining avoids).
    pub pipeline: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            connections: 2,
            requests_per_conn: 40,
            seed: 17,
            sample_pool: 4,
            ell: 1,
            q: 1,
            client: ClientConfig::default(),
            retry: RetryPolicy::none(),
            pipeline: 0,
        }
    }
}

/// Latency tally for one operation kind.
#[derive(Clone, Debug, Default)]
pub struct OpStats {
    /// Completed calls.
    pub count: usize,
    /// All observed latencies, microseconds (sorted by [`run_load`]).
    pub latencies_us: Vec<u64>,
}

impl OpStats {
    fn record(&mut self, us: u64) {
        self.count += 1;
        self.latencies_us.push(us);
    }

    /// Latency at quantile `q` (0 ≤ q ≤ 1); 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let idx = ((q * (self.latencies_us.len() - 1) as f64).round() as usize)
            .min(self.latencies_us.len() - 1);
        self.latencies_us[idx]
    }

    /// Mean latency in microseconds; 0 when empty.
    pub fn mean_us(&self) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        self.latencies_us.iter().sum::<u64>() as f64 / self.latencies_us.len() as f64
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::int(self.count)),
            ("mean_us", Json::Num(self.mean_us())),
            ("p50_us", Json::int(self.quantile_us(0.50) as usize)),
            ("p95_us", Json::int(self.quantile_us(0.95) as usize)),
            ("max_us", Json::int(self.quantile_us(1.0) as usize)),
        ])
    }
}

/// Aggregated outcome of a load run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Total requests completed across all connections.
    pub requests: usize,
    /// Requests that returned an error (still counted in `requests`).
    pub errors: usize,
    /// Wall-clock of the whole run, seconds.
    pub wall_s: f64,
    /// Solve calls answered from the server's result cache.
    pub cached_solves: usize,
    /// Solve calls computed fresh.
    pub fresh_solves: usize,
    /// Calls re-sent after transport failures (all workers).
    pub retries: u64,
    /// Connections re-established after a failure (all workers).
    pub reconnects: u64,
    /// `retry_histogram[n]` = successful calls that needed `n` retries.
    pub retry_histogram: Vec<u64>,
    /// Workers that died early: `(worker index, what happened)`. A
    /// panicked or erroring worker lands here instead of voiding the
    /// whole run; its completed requests still count above.
    pub worker_errors: Vec<(usize, String)>,
    /// Per-operation latency tallies: `(op, stats)`.
    pub ops: Vec<(String, OpStats)>,
    /// Per-target tallies: `(address, requests, server errors)` — one
    /// row per distinct `--addr`, so a mixed router/backend run shows
    /// which target produced the failures.
    pub targets: Vec<(String, usize, usize)>,
}

impl LoadReport {
    fn op_mut(&mut self, op: &str) -> &mut OpStats {
        if let Some(i) = self.ops.iter().position(|(o, _)| o == op) {
            return &mut self.ops[i].1;
        }
        self.ops.push((op.to_string(), OpStats::default()));
        &mut self.ops.last_mut().unwrap().1
    }

    fn merge(&mut self, other: LoadReport) {
        self.requests += other.requests;
        self.errors += other.errors;
        self.cached_solves += other.cached_solves;
        self.fresh_solves += other.fresh_solves;
        self.retries += other.retries;
        self.reconnects += other.reconnects;
        if self.retry_histogram.len() < other.retry_histogram.len() {
            self.retry_histogram.resize(other.retry_histogram.len(), 0);
        }
        for (i, n) in other.retry_histogram.into_iter().enumerate() {
            self.retry_histogram[i] += n;
        }
        self.worker_errors.extend(other.worker_errors);
        for (op, stats) in other.ops {
            let mine = self.op_mut(&op);
            mine.count += stats.count;
            mine.latencies_us.extend(stats.latencies_us);
        }
        for (addr, requests, errors) in other.targets {
            if let Some(row) = self.targets.iter_mut().find(|(a, _, _)| *a == addr) {
                row.1 += requests;
                row.2 += errors;
            } else {
                self.targets.push((addr, requests, errors));
            }
        }
    }

    /// Requests per second over the run.
    pub fn throughput(&self) -> f64 {
        if self.wall_s <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / self.wall_s
    }

    /// Render the report as a JSON object (for bench output files).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("requests", Json::int(self.requests)),
            ("errors", Json::int(self.errors)),
            ("wall_s", Json::Num(self.wall_s)),
            ("throughput_rps", Json::Num(self.throughput())),
            ("cached_solves", Json::int(self.cached_solves)),
            ("fresh_solves", Json::int(self.fresh_solves)),
            ("retries", Json::int(self.retries as usize)),
            ("reconnects", Json::int(self.reconnects as usize)),
            (
                "retry_histogram",
                Json::Arr(
                    self.retry_histogram
                        .iter()
                        .map(|&n| Json::int(n as usize))
                        .collect(),
                ),
            ),
            (
                "worker_errors",
                Json::Arr(
                    self.worker_errors
                        .iter()
                        .map(|(w, e)| {
                            Json::obj([
                                ("worker", Json::int(*w)),
                                ("error", Json::Str(e.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "ops",
                Json::Obj(
                    self.ops
                        .iter()
                        .map(|(op, s)| (op.clone(), s.to_json()))
                        .collect(),
                ),
            ),
            (
                "targets",
                Json::Arr(
                    self.targets
                        .iter()
                        .map(|(addr, requests, errors)| {
                            Json::obj([
                                ("addr", Json::str(addr.clone())),
                                ("requests", Json::int(*requests)),
                                ("errors", Json::int(*errors)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One worker: connect (under the retry policy), drive the request
/// stream, and fold the client's transport counters into the report.
/// Failures come back as the `Option<String>` — the partial report is
/// kept either way.
fn worker_run(
    addr: SocketAddr,
    graph_text: &str,
    config: &LoadgenConfig,
    worker: usize,
) -> (LoadReport, Option<String>) {
    if config.pipeline >= 2 {
        return worker_run_pipelined(addr, graph_text, config, worker);
    }
    let mut report = LoadReport::default();
    let mut policy = config.retry.clone();
    policy.seed = policy.seed.wrapping_add(worker as u64);
    let mut client = match RetryingClient::connect(addr, config.client, policy) {
        Ok(c) => c,
        Err(e) => return (report, Some(format!("connect: {e}"))),
    };
    let outcome = worker_drive(&mut client, graph_text, config, worker, &mut report);
    let ts = client.transport_stats();
    report.retries += ts.retries;
    report.reconnects += ts.reconnects;
    if report.retry_histogram.len() < ts.retry_histogram.len() {
        report.retry_histogram.resize(ts.retry_histogram.len(), 0);
    }
    for (i, &n) in ts.retry_histogram.iter().enumerate() {
        report.retry_histogram[i] += n;
    }
    report.targets = vec![(addr.to_string(), report.requests, report.errors)];
    (report, outcome.err().map(|e| e.to_string()))
}

/// The worker's deterministic request stream.
fn worker_drive(
    client: &mut RetryingClient,
    graph_text: &str,
    config: &LoadgenConfig,
    worker: usize,
    report: &mut LoadReport,
) -> Result<(), ClientError> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(worker as u64));
    let started = Instant::now();
    let structure = client.register(graph_text)?;
    report.requests += 1;
    report
        .op_mut("register")
        .record(us_since(started));

    // Query the registered structure's size through a cheap evaluate-free
    // path: re-register returns vertices. Simpler: parse locally.
    let n = folearn_graph::io::parse_graph(graph_text)
        .map(|g| g.num_vertices())
        .unwrap_or(1)
        .max(1) as u32;

    // Pre-draw the sample pool: distinct labelled samples over the
    // structure; repeats within the run exercise the result cache.
    let pool: Vec<Vec<WireExample>> = (0..config.sample_pool.max(1))
        .map(|_| {
            let m = rng.random_range(4..=8usize);
            (0..m)
                .map(|_| WireExample {
                    tuple: vec![rng.random_range(0..n)],
                    label: rng.random_bool(0.5),
                })
                .collect()
        })
        .collect();
    let mut hypotheses: Vec<(u64, u64)> = Vec::new(); // (structure, id)

    for _ in 0..config.requests_per_conn {
        let roll = rng.random_range(0..100u32);
        let t0 = Instant::now();
        if roll < 55 {
            // Weighted toward solve: the cache is the thing under test.
            let sample = pool[rng.random_range(0..pool.len())].clone();
            match client.solve(
                structure,
                sample,
                config.ell,
                config.q,
                0.0,
                SolverSpec::default_brute(),
            ) {
                Ok(outcome) => {
                    if outcome.cached {
                        report.cached_solves += 1;
                    } else {
                        report.fresh_solves += 1;
                    }
                    hypotheses.push((structure, outcome.hypothesis.id));
                    report.op_mut("solve").record(us_since(t0));
                }
                Err(ClientError::Server { .. }) => report.errors += 1,
                Err(e) => return Err(e),
            }
        } else if roll < 75 && !hypotheses.is_empty() {
            let (s, h) = hypotheses[rng.random_range(0..hypotheses.len())];
            let tuples: Vec<Vec<u32>> = (0..4)
                .map(|_| vec![rng.random_range(0..n)])
                .collect();
            match client.evaluate(s, h, tuples, None) {
                Ok(_) => report.op_mut("evaluate").record(us_since(t0)),
                Err(ClientError::Server { .. }) => report.errors += 1,
                Err(e) => return Err(e),
            }
        } else if roll < 90 {
            match client.modelcheck(structure, "exists x0. exists x1. E(x0, x1)") {
                Ok(_) => report.op_mut("modelcheck").record(us_since(t0)),
                Err(ClientError::Server { .. }) => report.errors += 1,
                Err(e) => return Err(e),
            }
        } else {
            match client.stats() {
                Ok(_) => report.op_mut("stats").record(us_since(t0)),
                Err(ClientError::Server { .. }) => report.errors += 1,
                Err(e) => return Err(e),
            }
        }
        report.requests += 1;
    }
    Ok(())
}

fn us_since(t: Instant) -> u64 {
    t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

/// Consecutive transport failures a pipelined worker tolerates before
/// giving up (any successful reply resets the count).
const PIPELINE_MAX_FAILURES: u32 = 8;

/// Connect one pipelined socket with the configured deadlines.
fn pipe_connect(
    addr: SocketAddr,
    config: &ClientConfig,
) -> std::io::Result<(TcpStream, BufReader<TcpStream>)> {
    let stream = match config.connect_timeout {
        Some(t) => TcpStream::connect_timeout(&addr, t)?,
        None => TcpStream::connect(addr)?,
    };
    stream.set_nodelay(true)?;
    stream.set_read_timeout(config.read_timeout)?;
    stream.set_write_timeout(config.write_timeout)?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok((stream, reader))
}

/// The pipelined worker: encode the full schedule up front, keep up to
/// `pipeline` requests in flight, and resume the schedule — never reset
/// it — across reconnects. Every request is answered exactly once in
/// the report, however many `bye`s or transport failures interrupt the
/// run, so per-target totals are exact.
fn worker_run_pipelined(
    addr: SocketAddr,
    graph_text: &str,
    config: &LoadgenConfig,
    worker: usize,
) -> (LoadReport, Option<String>) {
    let mut report = LoadReport::default();
    let window = config.pipeline.max(2);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(worker as u64));

    // The structure hash is the FNV-1a of the *canonical* text (what
    // `register` returns), computable client-side — so solve frames can
    // be encoded before any reply has arrived.
    let g = match folearn_graph::io::parse_graph(graph_text) {
        Ok(g) => g,
        Err(e) => return (report, Some(format!("parse graph: {e}"))),
    };
    let n = (g.num_vertices().max(1)) as u32;
    let structure = fnv1a64(folearn_graph::io::to_text(&g).as_bytes());

    let sample_pool: Vec<Vec<WireExample>> = (0..config.sample_pool.max(1))
        .map(|_| {
            let m = rng.random_range(4..=8usize);
            (0..m)
                .map(|_| WireExample {
                    tuple: vec![rng.random_range(0..n)],
                    label: rng.random_bool(0.5),
                })
                .collect()
        })
        .collect();

    // The deterministic schedule: register first (idempotent — it must
    // land before any solve, and the strict ordering of pipelined
    // replies guarantees that), then the weighted mix. `evaluate` is
    // omitted: it needs a hypothesis id from an earlier reply, which is
    // exactly the dependency pipelining removes.
    let mut schedule: Vec<(&'static str, String)> = Vec::with_capacity(config.requests_per_conn + 1);
    schedule.push((
        "register",
        Request::Register {
            graph_text: graph_text.to_string(),
        }
        .encode(),
    ));
    for _ in 0..config.requests_per_conn {
        let roll = rng.random_range(0..100u32);
        let planned = if roll < 25 {
            ("ping", Request::Ping.encode())
        } else if roll < 80 {
            (
                "solve",
                Request::Solve {
                    structure,
                    examples: sample_pool[rng.random_range(0..sample_pool.len())].clone(),
                    ell: config.ell,
                    q: config.q,
                    epsilon: 0.0,
                    solver: SolverSpec::default_brute(),
                    trace: None,
                }
                .encode(),
            )
        } else if roll < 90 {
            (
                "modelcheck",
                Request::ModelCheck {
                    structure,
                    formula: "exists x0. exists x1. E(x0, x1)".to_string(),
                    engine: Default::default(),
                    trace: None,
                }
                .encode(),
            )
        } else {
            ("stats", Request::Stats.encode())
        };
        schedule.push(planned);
    }

    // `queue` holds schedule indices not yet sent (or needing re-send);
    // `pending` holds sent-but-unanswered ones, in wire order.
    let mut queue: VecDeque<usize> = (0..schedule.len()).collect();
    let mut pending: VecDeque<(usize, Instant)> = VecDeque::new();
    let mut failures = 0u32;
    let mut first_conn = true;
    let mut line = String::new();

    'reconnect: while !queue.is_empty() || !pending.is_empty() {
        if failures >= PIPELINE_MAX_FAILURES {
            return (
                report,
                Some(format!("{failures} consecutive transport failures")),
            );
        }
        if !first_conn {
            report.reconnects += 1;
            // Brief deterministic backoff so a restarting daemon isn't
            // hammered in a tight loop.
            std::thread::sleep(Duration::from_millis(u64::from(failures.min(5)) * 5));
        }
        let (mut stream, mut reader) = match pipe_connect(addr, &config.client) {
            Ok(pair) => pair,
            Err(_) => {
                failures += 1;
                first_conn = false;
                continue 'reconnect;
            }
        };
        first_conn = false;

        loop {
            // Top up the in-flight window from the schedule.
            let mut batch = String::new();
            while pending.len() < window {
                let Some(idx) = queue.pop_front() else { break };
                batch.push_str(&schedule[idx].1);
                batch.push('\n');
                pending.push_back((idx, Instant::now()));
            }
            if !batch.is_empty() && stream.write_all(batch.as_bytes()).is_err() {
                failures += 1;
                requeue(&mut queue, &mut pending);
                continue 'reconnect;
            }
            if pending.is_empty() {
                break 'reconnect; // schedule complete
            }

            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => {
                    // Server closed (its request budget, most likely):
                    // everything unanswered moves to a fresh connection.
                    failures += 1;
                    requeue(&mut queue, &mut pending);
                    continue 'reconnect;
                }
                Ok(_) => match Response::decode(line.trim_end()) {
                    Ok(Response::Bye { .. }) => {
                        // Request budget / idle / shutdown: the front
                        // request was *not* served. Re-send the whole
                        // window; the schedule position is untouched.
                        requeue(&mut queue, &mut pending);
                        continue 'reconnect;
                    }
                    Ok(response) => {
                        let (idx, sent) = pending.pop_front().expect("reply implies pending");
                        failures = 0;
                        let op = schedule[idx].0;
                        match response {
                            Response::Error { message, .. }
                                if message.starts_with("malformed request") =>
                            {
                                // The frame was well-formed when sent, so
                                // this proves in-flight corruption: safe
                                // to re-send (same contract as
                                // `RetryPolicy::is_retryable`).
                                report.retries += 1;
                                queue.push_front(idx);
                            }
                            Response::Error { .. } => {
                                report.requests += 1;
                                report.errors += 1;
                            }
                            Response::Solved(outcome) => {
                                report.requests += 1;
                                if outcome.cached {
                                    report.cached_solves += 1;
                                } else {
                                    report.fresh_solves += 1;
                                }
                                report.op_mut(op).record(us_since(sent));
                            }
                            _ => {
                                report.requests += 1;
                                report.op_mut(op).record(us_since(sent));
                            }
                        }
                    }
                    Err(_) => {
                        // Garbage on the wire: abandon the connection,
                        // nothing was answered.
                        failures += 1;
                        requeue(&mut queue, &mut pending);
                        continue 'reconnect;
                    }
                },
                Err(_) => {
                    failures += 1;
                    requeue(&mut queue, &mut pending);
                    continue 'reconnect;
                }
            }
        }
    }
    report.targets = vec![(addr.to_string(), report.requests, report.errors)];
    (report, None)
}

/// Move every sent-but-unanswered request back to the front of the
/// send queue, preserving schedule order.
fn requeue(queue: &mut VecDeque<usize>, pending: &mut VecDeque<(usize, Instant)>) {
    while let Some((idx, _)) = pending.pop_back() {
        queue.push_front(idx);
    }
}

/// Drive `config.connections` concurrent workers against the daemon at
/// `addr`, all over the same structure. Returns the merged report with
/// sorted latency vectors. A worker that errors or panics becomes a
/// [`LoadReport::worker_errors`] row (its completed requests still
/// count) rather than voiding the run.
pub fn run_load(addr: SocketAddr, graph_text: &str, config: &LoadgenConfig) -> LoadReport {
    run_load_multi(&[addr], graph_text, config)
}

/// Like [`run_load`], but spread workers round-robin over several
/// targets (worker `w` drives `addrs[w % addrs.len()]`) — so one run can
/// mix a cluster router and raw backends and compare them via the
/// per-target rows of the report.
///
/// # Panics
/// Panics if `addrs` is empty.
pub fn run_load_multi(
    addrs: &[SocketAddr],
    graph_text: &str,
    config: &LoadgenConfig,
) -> LoadReport {
    assert!(!addrs.is_empty(), "run_load_multi needs at least one addr");
    let started = Instant::now();
    let mut merged = LoadReport::default();
    let results: Vec<std::thread::Result<(LoadReport, Option<String>)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..config.connections.max(1))
                .map(|w| {
                    let addr = addrs[w % addrs.len()];
                    scope.spawn(move || worker_run(addr, graph_text, config, w))
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
    for (worker, joined) in results.into_iter().enumerate() {
        match joined {
            Ok((report, error)) => {
                merged.merge(report);
                if let Some(e) = error {
                    merged.worker_errors.push((worker, e));
                }
            }
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                    .unwrap_or("non-string panic payload");
                merged
                    .worker_errors
                    .push((worker, format!("worker panicked: {message}")));
            }
        }
    }
    merged.wall_s = started.elapsed().as_secs_f64();
    for (_, stats) in &mut merged.ops {
        stats.latencies_us.sort_unstable();
    }
    merged
}
