//! Server metrics: request counters, cache statistics, solver work
//! accounting, per-endpoint latency histograms, and the learner-span
//! rollup.
//!
//! Latencies are recorded in the shared power-of-two-microsecond
//! histogram ([`folearn_obs::PowHistogram`]: bucket `i` counts requests
//! with `2^{i-1} ≤ µs < 2^i`), which is enough resolution to read
//! p50/p95/p99 within a factor of two at any scale without unbounded
//! memory. Solve-side span trees captured by `folearn_obs` are folded in
//! per span name ([`Metrics::absorb_span`]), so the `stats` endpoint
//! surfaces learner-level timings (`server.solve`, `solve`, `erm.sweep`,
//! …) next to the wire-level ones. [`Metrics::snapshot`] renders it all
//! as JSON.

use std::time::Instant;

use folearn_obs::{CounterSet, PowHistogram, SpanRecord, TimeSeries};
use parking_lot::Mutex;

use crate::proto::Json;

/// Per-endpoint latency + count record.
#[derive(Clone)]
struct OpRecord {
    op: &'static str,
    errors: u64,
    latency: PowHistogram,
}

impl OpRecord {
    fn new(op: &'static str) -> Self {
        Self {
            op,
            errors: 0,
            latency: PowHistogram::new(),
        }
    }

    fn record(&mut self, us: u64, ok: bool) {
        if !ok {
            self.errors += 1;
        }
        self.latency.record(us);
    }

    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("count".to_string(), Json::Num(self.latency.count() as f64)),
            ("errors".to_string(), Json::Num(self.errors as f64)),
        ];
        pairs.extend(self.latency.summary_pairs("us"));
        // Full bucket counts ride along so a router can merge endpoint
        // histograms bucket-wise instead of averaging quantiles.
        pairs.push(("hist".to_string(), self.latency.to_wire_json()));
        Json::Obj(pairs)
    }
}

/// Per-span-name aggregate over absorbed solve traces: duration
/// histogram plus summed work counters.
#[derive(Clone)]
struct SpanAgg {
    name: String,
    duration_us: PowHistogram,
    counters: CounterSet,
}

impl SpanAgg {
    fn to_json(&self) -> Json {
        let mut pairs = match self.duration_us.summary_json("us") {
            Json::Obj(pairs) => pairs,
            _ => unreachable!("summary_json returns an object"),
        };
        for (c, v) in self.counters.iter_nonzero() {
            pairs.push((c.name().to_string(), Json::Num(v as f64)));
        }
        Json::Obj(pairs)
    }
}

struct Inner {
    ops: Vec<OpRecord>,
    spans: Vec<SpanAgg>,
    structures: u64,
    hypotheses: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    cache_len: u64,
    evaluated_params: u64,
    pruned_params: u64,
    connections: u64,
    over_limit_closes: u64,
    idle_closes: u64,
    oversize_closes: u64,
    truncated_frames: u64,
    rejected_connections: u64,
    worker_panics: u64,
    core: &'static str,
    event_loops: u64,
    cache_shards: u64,
    durable: bool,
    wal_records_written: u64,
    wal_records_replayed: u64,
    snapshot_loads: u64,
    torn_tail_truncations: u64,
    recovery_ms: u64,
    series: TimeSeries,
}

/// Shared, thread-safe metrics sink.
pub struct Metrics {
    inner: Mutex<Inner>,
    start: Instant,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                ops: Vec::new(),
                spans: Vec::new(),
                structures: 0,
                hypotheses: 0,
                cache_hits: 0,
                cache_misses: 0,
                cache_evictions: 0,
                cache_len: 0,
                evaluated_params: 0,
                pruned_params: 0,
                connections: 0,
                over_limit_closes: 0,
                idle_closes: 0,
                oversize_closes: 0,
                truncated_frames: 0,
                rejected_connections: 0,
                worker_panics: 0,
                core: "thread",
                event_loops: 0,
                cache_shards: 1,
                durable: false,
                wal_records_written: 0,
                wal_records_replayed: 0,
                snapshot_loads: 0,
                torn_tail_truncations: 0,
                recovery_ms: 0,
                series: TimeSeries::new(),
            }),
            start: Instant::now(),
        }
    }

    /// Record one served request.
    pub fn record_request(&self, op: &'static str, us: u64, ok: bool) {
        let mut inner = self.inner.lock();
        match inner.ops.iter_mut().find(|r| r.op == op) {
            Some(r) => r.record(us, ok),
            None => {
                let mut r = OpRecord::new(op);
                r.record(us, ok);
                inner.ops.push(r);
            }
        }
        inner.series.record_request(us, ok);
    }

    /// Record a solve-cache lookup into the live time-series (the
    /// absolute counters still come from the cache via
    /// [`Metrics::set_cache_counters`]).
    pub fn record_cache_event(&self, hit: bool) {
        self.inner.lock().series.record_cache(hit);
    }

    /// Fold a finished solve-span tree into the per-name rollup (every
    /// span in the tree contributes to its name's aggregate).
    pub fn absorb_span(&self, rec: &SpanRecord) {
        let mut inner = self.inner.lock();
        fn visit(rec: &SpanRecord, spans: &mut Vec<SpanAgg>) {
            match spans.iter_mut().find(|s| s.name == rec.name) {
                Some(agg) => {
                    agg.duration_us.record(rec.elapsed_ns / 1_000);
                    agg.counters.merge(&rec.counters);
                }
                None => {
                    let mut agg = SpanAgg {
                        name: rec.name.clone(),
                        duration_us: PowHistogram::new(),
                        counters: rec.counters.clone(),
                    };
                    agg.duration_us.record(rec.elapsed_ns / 1_000);
                    spans.push(agg);
                }
            }
            for ch in &rec.children {
                visit(ch, spans);
            }
        }
        visit(rec, &mut inner.spans);
    }

    /// Record a new connection.
    pub fn record_connection(&self) {
        self.inner.lock().connections += 1;
    }

    /// Record a connection closed for exceeding its request budget.
    pub fn record_over_limit(&self) {
        self.inner.lock().over_limit_closes += 1;
    }

    /// Record a connection closed for exceeding the idle timeout.
    pub fn record_idle_close(&self) {
        self.inner.lock().idle_closes += 1;
    }

    /// Record a connection closed for an oversized request line.
    pub fn record_oversize_close(&self) {
        self.inner.lock().oversize_closes += 1;
    }

    /// Record a frame cut short by EOF (rejected, not served).
    pub fn record_truncated_frame(&self) {
        self.inner.lock().truncated_frames += 1;
    }

    /// Record a connection turned away at the concurrency cap.
    pub fn record_rejected_connection(&self) {
        self.inner.lock().rejected_connections += 1;
    }

    /// Update the worker-panic gauge (absolute count from the pool).
    pub fn set_worker_panics(&self, panics: u64) {
        self.inner.lock().worker_panics = panics;
    }

    /// Record which service core is driving connections (`"thread"` or
    /// `"event"`), its readiness-loop count (0 for the threaded core),
    /// and the cache/registry shard count.
    pub fn set_core_info(&self, core: &'static str, event_loops: usize, cache_shards: usize) {
        let mut inner = self.inner.lock();
        inner.core = core;
        inner.event_loops = event_loops as u64;
        inner.cache_shards = cache_shards as u64;
    }

    /// Record one mutation appended (and fsync'd) to the WAL.
    pub fn record_wal_append(&self) {
        self.inner.lock().wal_records_written += 1;
    }

    /// Record the outcome of a startup replay: how many records were
    /// replayed, whether a snapshot was loaded, how many torn tails
    /// were truncated, and how long the whole replay took. Marks the
    /// daemon durable — the counters (and the flag) surface in `stats`
    /// immediately, so a freshly restarted backend reports a useful
    /// story before its first request.
    pub fn set_recovery(
        &self,
        records_replayed: u64,
        snapshot_loads: u64,
        torn_tail_truncations: u64,
        recovery_ms: u64,
    ) {
        let mut inner = self.inner.lock();
        inner.durable = true;
        inner.wal_records_replayed = records_replayed;
        inner.snapshot_loads = snapshot_loads;
        inner.torn_tail_truncations = torn_tail_truncations;
        inner.recovery_ms = recovery_ms;
    }

    /// Update the registry/hypothesis-store gauges.
    pub fn set_store_sizes(&self, structures: usize, hypotheses: usize) {
        let mut inner = self.inner.lock();
        inner.structures = structures as u64;
        inner.hypotheses = hypotheses as u64;
    }

    /// Update the cache counters (absolute values from the cache).
    pub fn set_cache_counters(&self, hits: u64, misses: u64, evictions: u64, len: usize) {
        let mut inner = self.inner.lock();
        inner.cache_hits = hits;
        inner.cache_misses = misses;
        inner.cache_evictions = evictions;
        inner.cache_len = len as u64;
    }

    /// Accumulate solver work from an uncached solve.
    pub fn record_solver_work(&self, evaluated: usize, pruned: usize) {
        let mut inner = self.inner.lock();
        inner.evaluated_params += evaluated as u64;
        inner.pruned_params += pruned as u64;
    }

    /// `(cache_hits, cache_misses)` as last synced.
    pub fn cache_hit_miss(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.cache_hits, inner.cache_misses)
    }

    /// Snapshot the metrics as a JSON object (the `stats` payload).
    pub fn snapshot(&self) -> Json {
        let inner = self.inner.lock();
        let total: u64 = inner.ops.iter().map(|r| r.latency.count()).sum();
        let lookups = inner.cache_hits + inner.cache_misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            inner.cache_hits as f64 / lookups as f64
        };
        Json::obj([
            ("role", Json::str("server")),
            ("version", Json::str(env!("CARGO_PKG_VERSION"))),
            (
                "uptime_ms",
                Json::Num(self.start.elapsed().as_millis() as f64),
            ),
            ("requests", Json::Num(total as f64)),
            ("connections", Json::Num(inner.connections as f64)),
            (
                "over_limit_closes",
                Json::Num(inner.over_limit_closes as f64),
            ),
            ("idle_closes", Json::Num(inner.idle_closes as f64)),
            ("oversize_closes", Json::Num(inner.oversize_closes as f64)),
            (
                "truncated_frames",
                Json::Num(inner.truncated_frames as f64),
            ),
            (
                "rejected_connections",
                Json::Num(inner.rejected_connections as f64),
            ),
            ("worker_panics", Json::Num(inner.worker_panics as f64)),
            ("core", Json::str(inner.core)),
            ("event_loops", Json::Num(inner.event_loops as f64)),
            ("structures", Json::Num(inner.structures as f64)),
            ("hypotheses", Json::Num(inner.hypotheses as f64)),
            ("durable", Json::Bool(inner.durable)),
            (
                "wal_records_written",
                Json::Num(inner.wal_records_written as f64),
            ),
            (
                "wal_records_replayed",
                Json::Num(inner.wal_records_replayed as f64),
            ),
            ("snapshot_loads", Json::Num(inner.snapshot_loads as f64)),
            (
                "torn_tail_truncations",
                Json::Num(inner.torn_tail_truncations as f64),
            ),
            ("recovery_ms", Json::Num(inner.recovery_ms as f64)),
            (
                "cache",
                Json::obj([
                    ("hits", Json::Num(inner.cache_hits as f64)),
                    ("misses", Json::Num(inner.cache_misses as f64)),
                    ("evictions", Json::Num(inner.cache_evictions as f64)),
                    ("entries", Json::Num(inner.cache_len as f64)),
                    ("shards", Json::Num(inner.cache_shards as f64)),
                    ("hit_rate", Json::Num(hit_rate)),
                ]),
            ),
            (
                "solver",
                Json::obj([
                    (
                        "evaluated_params",
                        Json::Num(inner.evaluated_params as f64),
                    ),
                    ("pruned_params", Json::Num(inner.pruned_params as f64)),
                ]),
            ),
            (
                "endpoints",
                Json::Obj(
                    inner
                        .ops
                        .iter()
                        .map(|r| (r.op.to_string(), r.to_json()))
                        .collect(),
                ),
            ),
            (
                "spans",
                Json::Obj(
                    inner
                        .spans
                        .iter()
                        .map(|s| (s.name.clone(), s.to_json()))
                        .collect(),
                ),
            ),
            ("series", inner.series.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use folearn_obs::Counter;

    #[test]
    fn histogram_quantiles_bracket_latencies() {
        let m = Metrics::new();
        for us in [10u64, 20, 30, 40, 1000] {
            m.record_request("solve", us, true);
        }
        m.record_request("ping", 1, true);
        let snap = m.snapshot();
        assert_eq!(snap.get("requests").unwrap().as_usize(), Some(6));
        let solve = snap.get("endpoints").unwrap().get("solve").unwrap();
        assert_eq!(solve.get("count").unwrap().as_usize(), Some(5));
        let p50 = solve.get("p50_us").unwrap().as_num().unwrap();
        assert!((16.0..=64.0).contains(&p50), "p50 {p50}");
        let p99 = solve.get("p99_us").unwrap().as_num().unwrap();
        assert!(p99 >= 1000.0, "p99 {p99}");
    }

    #[test]
    fn empty_and_unknown_endpoints_read_zero() {
        let m = Metrics::new();
        let snap = m.snapshot();
        assert_eq!(snap.get("requests").unwrap().as_usize(), Some(0));
        // No endpoint has been touched: the endpoints object is empty
        // and the quantile on a never-recorded histogram is 0.
        assert_eq!(snap.get("endpoints").unwrap(), &Json::Obj(vec![]));
        assert_eq!(PowHistogram::new().quantile(0.99), 0);
    }

    #[test]
    fn single_sample_sets_every_percentile() {
        let m = Metrics::new();
        m.record_request("ping", 10, true);
        let snap = m.snapshot();
        let ping = snap.get("endpoints").unwrap().get("ping").unwrap();
        // One sample in bucket [8, 16): every quantile reads the bucket's
        // upper bound, mean and max read the sample exactly.
        for q in ["p50_us", "p95_us", "p99_us"] {
            assert_eq!(ping.get(q).unwrap().as_usize(), Some(16), "{q}");
        }
        assert_eq!(ping.get("mean_us").unwrap().as_num(), Some(10.0));
        assert_eq!(ping.get("max_us").unwrap().as_usize(), Some(10));
    }

    #[test]
    fn top_bucket_saturates_but_max_is_exact() {
        let m = Metrics::new();
        m.record_request("solve", u64::MAX, true);
        let snap = m.snapshot();
        let solve = snap.get("endpoints").unwrap().get("solve").unwrap();
        assert_eq!(
            solve.get("p50_us").unwrap().as_num(),
            Some((1u64 << (folearn_obs::BUCKETS - 1)) as f64)
        );
        assert_eq!(
            solve.get("max_us").unwrap().as_num(),
            Some(u64::MAX as f64)
        );
    }

    #[test]
    fn concurrent_records_account_max_and_total() {
        let m = std::sync::Arc::new(Metrics::new());
        let threads = 8;
        let per_thread = 200u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let m = std::sync::Arc::clone(&m);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        // Latencies 1..=1600, with the global max (9999)
                        // recorded by exactly one thread.
                        let us = if t == 3 && i == 77 { 9999 } else { t * per_thread + i + 1 };
                        m.record_request("solve", us, i % 10 == 0);
                    }
                });
            }
        });
        let snap = m.snapshot();
        let solve = snap.get("endpoints").unwrap().get("solve").unwrap();
        let n = threads * per_thread;
        assert_eq!(solve.get("count").unwrap().as_usize(), Some(n as usize));
        assert_eq!(solve.get("max_us").unwrap().as_usize(), Some(9999));
        // Total (via mean·count) must equal the exact sum: no lost
        // updates under concurrency.
        let expected: u64 = (0..threads)
            .flat_map(|t| (0..per_thread).map(move |i| if t == 3 && i == 77 { 9999 } else { t * per_thread + i + 1 }))
            .sum();
        let mean = solve.get("mean_us").unwrap().as_num().unwrap();
        assert_eq!((mean * n as f64).round() as u64, expected);
        // Only every 10th request reported ok, so 9 in 10 are errors.
        let errors = solve.get("errors").unwrap().as_usize().unwrap();
        assert_eq!(errors, (threads * per_thread) as usize * 9 / 10);
    }

    #[test]
    fn cache_counters_feed_hit_rate() {
        let m = Metrics::new();
        m.set_cache_counters(3, 1, 0, 2);
        let snap = m.snapshot();
        let cache = snap.get("cache").unwrap();
        assert_eq!(cache.get("hit_rate").unwrap().as_num(), Some(0.75));
        assert_eq!(m.cache_hit_miss(), (3, 1));
    }

    #[test]
    fn recovery_counters_surface_flat_in_the_snapshot() {
        let m = Metrics::new();
        let snap = m.snapshot();
        assert_eq!(snap.get("durable").and_then(Json::as_bool), Some(false));
        assert_eq!(
            snap.get("wal_records_replayed").and_then(Json::as_usize),
            Some(0)
        );
        m.set_recovery(7, 1, 2, 34);
        m.record_wal_append();
        m.record_wal_append();
        let snap = m.snapshot();
        assert_eq!(snap.get("durable").and_then(Json::as_bool), Some(true));
        assert_eq!(
            snap.get("wal_records_replayed").and_then(Json::as_usize),
            Some(7)
        );
        assert_eq!(snap.get("snapshot_loads").and_then(Json::as_usize), Some(1));
        assert_eq!(
            snap.get("torn_tail_truncations").and_then(Json::as_usize),
            Some(2)
        );
        assert_eq!(snap.get("recovery_ms").and_then(Json::as_usize), Some(34));
        assert_eq!(
            snap.get("wal_records_written").and_then(Json::as_usize),
            Some(2)
        );
    }

    #[test]
    fn errors_are_counted() {
        let m = Metrics::new();
        m.record_request("solve", 5, false);
        let snap = m.snapshot();
        let solve = snap.get("endpoints").unwrap().get("solve").unwrap();
        assert_eq!(solve.get("errors").unwrap().as_usize(), Some(1));
    }

    #[test]
    fn snapshot_reports_identity_uptime_and_series() {
        let m = Metrics::new();
        m.record_request("solve", 10, true);
        m.record_cache_event(true);
        let snap = m.snapshot();
        assert_eq!(snap.get("role").and_then(Json::as_str), Some("server"));
        assert_eq!(
            snap.get("version").and_then(Json::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(snap.get("uptime_ms").and_then(Json::as_num).is_some());
        let series = snap.get("series").unwrap();
        assert_eq!(series.get("window_s").and_then(Json::as_usize), Some(60));
        let buckets = series.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].get("requests").and_then(Json::as_usize), Some(1));
        assert_eq!(
            buckets[0].get("cache_hits").and_then(Json::as_usize),
            Some(1)
        );
        // Endpoint rows carry the full histogram for cluster merging.
        let solve = snap.get("endpoints").unwrap().get("solve").unwrap();
        let hist = PowHistogram::from_wire_json(solve.get("hist").unwrap()).unwrap();
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn absorbed_spans_aggregate_by_name() {
        let m = Metrics::new();
        let mut worker = SpanRecord::new("erm.worker");
        worker.elapsed_ns = 2_000_000;
        worker.counters.add(Counter::EvaluatedParams, 50);
        let mut root = SpanRecord::new("server.solve");
        root.elapsed_ns = 5_000_000;
        root.children.push(worker.clone());
        root.children.push(worker);
        m.absorb_span(&root);
        m.absorb_span(&root);
        let snap = m.snapshot();
        let spans = snap.get("spans").unwrap();
        let solve = spans.get("server.solve").unwrap();
        assert_eq!(solve.get("count").unwrap().as_usize(), Some(2));
        let worker = spans.get("erm.worker").unwrap();
        assert_eq!(worker.get("count").unwrap().as_usize(), Some(4));
        assert_eq!(worker.get("evaluated_params").unwrap().as_usize(), Some(200));
        assert_eq!(worker.get("mean_us").unwrap().as_num(), Some(2000.0));
    }
}
