//! Server metrics: request counters, cache statistics, solver work
//! accounting, and per-endpoint latency histograms.
//!
//! Latencies are recorded in a power-of-two-microsecond histogram
//! (bucket `i` counts requests with `2^i ≤ µs < 2^{i+1}`), which is
//! enough resolution to read p50/p95/p99 within a factor of two at any
//! scale without unbounded memory. The `stats` endpoint renders a
//! snapshot as JSON ([`Metrics::snapshot`]).

use parking_lot::Mutex;

use crate::proto::Json;

/// Number of histogram buckets: covers 1 µs … ~2¹⁹ s.
const BUCKETS: usize = 40;

/// Per-endpoint latency + count record.
#[derive(Clone)]
struct OpRecord {
    op: &'static str,
    count: u64,
    errors: u64,
    total_us: u64,
    max_us: u64,
    histogram: [u64; BUCKETS],
}

impl OpRecord {
    fn new(op: &'static str) -> Self {
        Self {
            op,
            count: 0,
            errors: 0,
            total_us: 0,
            max_us: 0,
            histogram: [0; BUCKETS],
        }
    }

    fn record(&mut self, us: u64, ok: bool) {
        self.count += 1;
        if !ok {
            self.errors += 1;
        }
        self.total_us += us;
        self.max_us = self.max_us.max(us);
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.histogram[bucket] += 1;
    }

    /// Upper bound (µs) of the bucket containing quantile `q` of the
    /// recorded latencies.
    fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.histogram.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::Num(self.count as f64)),
            ("errors", Json::Num(self.errors as f64)),
            (
                "mean_us",
                Json::Num(if self.count == 0 {
                    0.0
                } else {
                    self.total_us as f64 / self.count as f64
                }),
            ),
            ("p50_us", Json::Num(self.quantile_us(0.50) as f64)),
            ("p95_us", Json::Num(self.quantile_us(0.95) as f64)),
            ("p99_us", Json::Num(self.quantile_us(0.99) as f64)),
            ("max_us", Json::Num(self.max_us as f64)),
        ])
    }
}

struct Inner {
    ops: Vec<OpRecord>,
    structures: u64,
    hypotheses: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    cache_len: u64,
    evaluated_params: u64,
    pruned_params: u64,
    connections: u64,
    over_limit_closes: u64,
}

/// Shared, thread-safe metrics sink.
pub struct Metrics {
    inner: Mutex<Inner>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                ops: Vec::new(),
                structures: 0,
                hypotheses: 0,
                cache_hits: 0,
                cache_misses: 0,
                cache_evictions: 0,
                cache_len: 0,
                evaluated_params: 0,
                pruned_params: 0,
                connections: 0,
                over_limit_closes: 0,
            }),
        }
    }

    /// Record one served request.
    pub fn record_request(&self, op: &'static str, us: u64, ok: bool) {
        let mut inner = self.inner.lock();
        match inner.ops.iter_mut().find(|r| r.op == op) {
            Some(r) => r.record(us, ok),
            None => {
                let mut r = OpRecord::new(op);
                r.record(us, ok);
                inner.ops.push(r);
            }
        }
    }

    /// Record a new connection.
    pub fn record_connection(&self) {
        self.inner.lock().connections += 1;
    }

    /// Record a connection closed for exceeding its request budget.
    pub fn record_over_limit(&self) {
        self.inner.lock().over_limit_closes += 1;
    }

    /// Update the registry/hypothesis-store gauges.
    pub fn set_store_sizes(&self, structures: usize, hypotheses: usize) {
        let mut inner = self.inner.lock();
        inner.structures = structures as u64;
        inner.hypotheses = hypotheses as u64;
    }

    /// Update the cache counters (absolute values from the cache).
    pub fn set_cache_counters(&self, hits: u64, misses: u64, evictions: u64, len: usize) {
        let mut inner = self.inner.lock();
        inner.cache_hits = hits;
        inner.cache_misses = misses;
        inner.cache_evictions = evictions;
        inner.cache_len = len as u64;
    }

    /// Accumulate solver work from an uncached solve.
    pub fn record_solver_work(&self, evaluated: usize, pruned: usize) {
        let mut inner = self.inner.lock();
        inner.evaluated_params += evaluated as u64;
        inner.pruned_params += pruned as u64;
    }

    /// `(cache_hits, cache_misses)` as last synced.
    pub fn cache_hit_miss(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.cache_hits, inner.cache_misses)
    }

    /// Snapshot the metrics as a JSON object (the `stats` payload).
    pub fn snapshot(&self) -> Json {
        let inner = self.inner.lock();
        let total: u64 = inner.ops.iter().map(|r| r.count).sum();
        let lookups = inner.cache_hits + inner.cache_misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            inner.cache_hits as f64 / lookups as f64
        };
        Json::obj([
            ("requests", Json::Num(total as f64)),
            ("connections", Json::Num(inner.connections as f64)),
            (
                "over_limit_closes",
                Json::Num(inner.over_limit_closes as f64),
            ),
            ("structures", Json::Num(inner.structures as f64)),
            ("hypotheses", Json::Num(inner.hypotheses as f64)),
            (
                "cache",
                Json::obj([
                    ("hits", Json::Num(inner.cache_hits as f64)),
                    ("misses", Json::Num(inner.cache_misses as f64)),
                    ("evictions", Json::Num(inner.cache_evictions as f64)),
                    ("entries", Json::Num(inner.cache_len as f64)),
                    ("hit_rate", Json::Num(hit_rate)),
                ]),
            ),
            (
                "solver",
                Json::obj([
                    (
                        "evaluated_params",
                        Json::Num(inner.evaluated_params as f64),
                    ),
                    ("pruned_params", Json::Num(inner.pruned_params as f64)),
                ]),
            ),
            (
                "endpoints",
                Json::Obj(
                    inner
                        .ops
                        .iter()
                        .map(|r| (r.op.to_string(), r.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_latencies() {
        let m = Metrics::new();
        for us in [10u64, 20, 30, 40, 1000] {
            m.record_request("solve", us, true);
        }
        m.record_request("ping", 1, true);
        let snap = m.snapshot();
        assert_eq!(snap.get("requests").unwrap().as_usize(), Some(6));
        let solve = snap.get("endpoints").unwrap().get("solve").unwrap();
        assert_eq!(solve.get("count").unwrap().as_usize(), Some(5));
        let p50 = solve.get("p50_us").unwrap().as_num().unwrap();
        assert!((16.0..=64.0).contains(&p50), "p50 {p50}");
        let p99 = solve.get("p99_us").unwrap().as_num().unwrap();
        assert!(p99 >= 1000.0, "p99 {p99}");
    }

    #[test]
    fn cache_counters_feed_hit_rate() {
        let m = Metrics::new();
        m.set_cache_counters(3, 1, 0, 2);
        let snap = m.snapshot();
        let cache = snap.get("cache").unwrap();
        assert_eq!(cache.get("hit_rate").unwrap().as_num(), Some(0.75));
        assert_eq!(m.cache_hit_miss(), (3, 1));
    }

    #[test]
    fn errors_are_counted() {
        let m = Metrics::new();
        m.record_request("solve", 5, false);
        let snap = m.snapshot();
        let solve = snap.get("endpoints").unwrap().get("solve").unwrap();
        assert_eq!(solve.get("errors").unwrap().as_usize(), Some(1));
    }
}
