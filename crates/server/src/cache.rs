//! The LRU result cache.
//!
//! Solve results are keyed by `(structure hash, sample hash, solver
//! config hash)` — exactly the identity of a repeated ERM oracle call,
//! which is the access pattern of `folearn_hardness::oracle` (the
//! reduction re-queries the same pair instances across levels) and of
//! any client re-fitting against a fixed background structure. A hit
//! turns an `O(n^ℓ · m)` sweep into a table lookup, and because the
//! engine is deterministic the cached answer is *identical* to what a
//! re-solve would produce.
//!
//! The implementation is a hand-rolled LRU (the build is offline): a
//! `HashMap` to entries carrying a monotone recency stamp, with
//! eviction scanning for the stale minimum. Eviction is `O(capacity)`
//! but only runs on insert-past-capacity; lookups — the path repeated
//! oracle calls hit — are `O(1)`.

use std::collections::HashMap;

/// Cache key: `(structure hash, sample hash, config hash)`.
pub type CacheKey = (u64, u64, u64);

struct Entry<V> {
    value: V,
    stamp: u64,
}

/// A fixed-capacity least-recently-used map.
pub struct LruCache<V> {
    map: HashMap<CacheKey, Entry<V>>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V> LruCache<V> {
    /// A cache holding at most `capacity` entries (capacity 0 disables
    /// caching: every lookup misses, every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<&V> {
        self.clock += 1;
        match self.map.get_mut(key) {
            Some(e) => {
                e.stamp = self.clock;
                self.hits += 1;
                Some(&e.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a value, evicting the least-recently-used entry if full.
    pub fn insert(&mut self, key: CacheKey, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(&lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k)
            {
                self.map.remove(&lru);
                self.evictions += 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                stamp: self.clock,
            },
        );
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses, evictions)` counters since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u64) -> CacheKey {
        (i, 0, 0)
    }

    #[test]
    fn hit_returns_inserted_value() {
        let mut c = LruCache::new(4);
        assert!(c.get(&k(1)).is_none());
        c.insert(k(1), "one");
        assert_eq!(c.get(&k(1)), Some(&"one"));
        assert_eq!(c.counters(), (1, 1, 0));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        assert!(c.get(&k(1)).is_some()); // refresh 1; 2 is now LRU
        c.insert(k(3), 3);
        assert!(c.get(&k(2)).is_none(), "2 should have been evicted");
        assert!(c.get(&k(1)).is_some());
        assert!(c.get(&k(3)).is_some());
        assert_eq!(c.len(), 2);
        assert_eq!(c.counters().2, 1);
    }

    #[test]
    fn reinsert_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        c.insert(k(2), 22);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&k(2)), Some(&22));
        assert!(c.get(&k(1)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert(k(1), 1);
        assert!(c.get(&k(1)).is_none());
        assert!(c.is_empty());
    }
}
