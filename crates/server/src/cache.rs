//! The LRU result cache.
//!
//! Solve results are keyed by `(structure hash, sample hash, solver
//! config hash)` — exactly the identity of a repeated ERM oracle call,
//! which is the access pattern of `folearn_hardness::oracle` (the
//! reduction re-queries the same pair instances across levels) and of
//! any client re-fitting against a fixed background structure. A hit
//! turns an `O(n^ℓ · m)` sweep into a table lookup, and because the
//! engine is deterministic the cached answer is *identical* to what a
//! re-solve would produce.
//!
//! The implementation is a hand-rolled LRU (the build is offline): a
//! `HashMap` to entries carrying a monotone recency stamp, with
//! eviction scanning for the stale minimum. Eviction is `O(capacity)`
//! but only runs on insert-past-capacity; lookups — the path repeated
//! oracle calls hit — are `O(1)`.
//!
//! [`ShardedCache`] and [`ShardedMap`] wrap the LRU and the plain
//! registry map in N independently locked shards selected by a
//! splitmix64 finalizer over the content-hash key, so concurrent
//! lookups from the event loop and the worker pool stop serializing on
//! one mutex.

use std::collections::HashMap;

use parking_lot::Mutex;

/// Cache key: `(structure hash, sample hash, config hash)`.
pub type CacheKey = (u64, u64, u64);

struct Entry<V> {
    value: V,
    stamp: u64,
}

/// A fixed-capacity least-recently-used map.
pub struct LruCache<V> {
    map: HashMap<CacheKey, Entry<V>>,
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V> LruCache<V> {
    /// A cache holding at most `capacity` entries (capacity 0 disables
    /// caching: every lookup misses, every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::new(),
            capacity,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<&V> {
        self.clock += 1;
        match self.map.get_mut(key) {
            Some(e) => {
                e.stamp = self.clock;
                self.hits += 1;
                Some(&e.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a value, evicting the least-recently-used entry if full.
    pub fn insert(&mut self, key: CacheKey, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(&lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k)
            {
                self.map.remove(&lru);
                self.evictions += 1;
            }
        }
        self.map.insert(
            key,
            Entry {
                value,
                stamp: self.clock,
            },
        );
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(hits, misses, evictions)` counters since construction.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }
}

/// The splitmix64 finalizer (same constants as the router's hash
/// ring): FNV-1a keys over near-identical payloads cluster in the low
/// bits, and this mixes them uniformly before shard selection.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mix a composite cache key down to one shard-selection hash.
fn mix_key(key: &CacheKey) -> u64 {
    splitmix64(key.0 ^ key.1.rotate_left(21) ^ key.2.rotate_left(42))
}

/// An LRU result cache split into independently locked shards.
///
/// Capacity is divided evenly across shards (any remainder goes to the
/// low shards), so the total never exceeds the configured capacity.
/// Capacity 0 disables caching exactly like [`LruCache::new(0)`]. The
/// shard count is clamped so no shard has capacity zero while the
/// cache as a whole is enabled.
pub struct ShardedCache<V> {
    shards: Vec<Mutex<LruCache<V>>>,
}

impl<V: Clone> ShardedCache<V> {
    /// A cache of `capacity` total entries across `shards` locks.
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, capacity.max(1));
        let base = capacity / shards;
        let extra = capacity % shards;
        let shards = (0..shards)
            .map(|i| Mutex::new(LruCache::new(base + usize::from(i < extra))))
            .collect();
        Self { shards }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<LruCache<V>> {
        &self.shards[(mix_key(key) % self.shards.len() as u64) as usize]
    }

    /// Look up a key (refreshing its recency in its shard), cloning the
    /// value out so the shard lock is held only for the lookup.
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        self.shard(key).lock().get(key).cloned()
    }

    /// Insert a value into the key's shard, evicting within that shard
    /// if it is full.
    pub fn insert(&self, key: CacheKey, value: V) {
        self.shard(&key).lock().insert(key, value);
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Summed `(hits, misses, evictions)` across shards.
    pub fn counters(&self) -> (u64, u64, u64) {
        self.shards.iter().fold((0, 0, 0), |acc, s| {
            let (h, m, e) = s.lock().counters();
            (acc.0 + h, acc.1 + m, acc.2 + e)
        })
    }

    /// Number of shards (for the stats payload).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

/// A `u64`-keyed map (structure registry, hypothesis store) split into
/// independently locked shards by the same splitmix64 finalizer.
pub struct ShardedMap<V> {
    shards: Vec<Mutex<HashMap<u64, V>>>,
}

impl<V: Clone> ShardedMap<V> {
    /// An empty map across `shards` locks (at least one).
    pub fn new(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, V>> {
        &self.shards[(splitmix64(key) % self.shards.len() as u64) as usize]
    }

    /// Clone the value under `key` out of its shard.
    pub fn get(&self, key: u64) -> Option<V> {
        self.shard(key).lock().get(&key).cloned()
    }

    /// Insert, returning `true` iff the key was fresh.
    pub fn insert(&self, key: u64, value: V) -> bool {
        self.shard(key).lock().insert(key, value).is_none()
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone every `(key, value)` pair out, shard by shard (each shard
    /// lock is held only while that shard is copied). Order is
    /// unspecified — callers wanting a canonical listing (the
    /// `inventory` op) sort the result.
    pub fn entries(&self) -> Vec<(u64, V)> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .iter()
                    .map(|(&k, v)| (k, v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u64) -> CacheKey {
        (i, 0, 0)
    }

    #[test]
    fn hit_returns_inserted_value() {
        let mut c = LruCache::new(4);
        assert!(c.get(&k(1)).is_none());
        c.insert(k(1), "one");
        assert_eq!(c.get(&k(1)), Some(&"one"));
        assert_eq!(c.counters(), (1, 1, 0));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        assert!(c.get(&k(1)).is_some()); // refresh 1; 2 is now LRU
        c.insert(k(3), 3);
        assert!(c.get(&k(2)).is_none(), "2 should have been evicted");
        assert!(c.get(&k(1)).is_some());
        assert!(c.get(&k(3)).is_some());
        assert_eq!(c.len(), 2);
        assert_eq!(c.counters().2, 1);
    }

    #[test]
    fn reinsert_does_not_evict() {
        let mut c = LruCache::new(2);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        c.insert(k(2), 22);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&k(2)), Some(&22));
        assert!(c.get(&k(1)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert(k(1), 1);
        assert!(c.get(&k(1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn sharded_cache_agrees_with_a_flat_lru_on_lookups() {
        let sharded = ShardedCache::new(64, 8);
        for i in 0..40u64 {
            sharded.insert((i, i.wrapping_mul(3), 7), i);
        }
        for i in 0..40u64 {
            assert_eq!(sharded.get(&(i, i.wrapping_mul(3), 7)), Some(i));
        }
        assert!(sharded.get(&(99, 0, 7)).is_none());
        assert_eq!(sharded.len(), 40);
        let (hits, misses, _) = sharded.counters();
        assert_eq!((hits, misses), (40, 1));
        assert_eq!(sharded.num_shards(), 8);
    }

    #[test]
    fn sharded_cache_total_capacity_is_respected() {
        // 10 entries over 4 shards: shard capacities 3+3+2+2. Whatever
        // the key distribution, the total can never exceed 10.
        let sharded = ShardedCache::new(10, 4);
        for i in 0..1000u64 {
            sharded.insert((i, 1, 2), i);
        }
        assert!(sharded.len() <= 10, "len {} exceeds capacity", sharded.len());
        assert!(sharded.counters().2 > 0, "evictions must have happened");
    }

    #[test]
    fn sharded_cache_zero_capacity_disables() {
        let sharded: ShardedCache<u64> = ShardedCache::new(0, 8);
        sharded.insert(k(1), 1);
        assert!(sharded.get(&k(1)).is_none());
        assert!(sharded.is_empty());
    }

    #[test]
    fn sharded_cache_spreads_fnv_keys_across_shards() {
        // Sequential FNV-style keys differ in few bits; the splitmix64
        // finalizer must still spread them over the shards.
        let sharded = ShardedCache::new(256, 8);
        for i in 0..256u64 {
            sharded.insert((i, 0, 0), i);
        }
        let used = (0..8)
            .filter(|&s| !sharded.shards[s].lock().is_empty())
            .count();
        assert!(used >= 6, "only {used}/8 shards used");
    }

    #[test]
    fn sharded_map_entries_lists_everything_once() {
        let map = ShardedMap::new(8);
        for i in 0..50u64 {
            map.insert(i, i * 2);
        }
        let mut entries = map.entries();
        entries.sort_unstable();
        assert_eq!(entries.len(), 50);
        for (i, &(k, v)) in entries.iter().enumerate() {
            assert_eq!((k, v), (i as u64, i as u64 * 2));
        }
    }

    #[test]
    fn sharded_map_insert_get_and_freshness() {
        let map = ShardedMap::new(8);
        assert!(map.insert(42, "a"));
        assert!(!map.insert(42, "b"), "second insert is not fresh");
        assert_eq!(map.get(42), Some("b"));
        assert!(map.get(7).is_none());
        assert_eq!(map.len(), 1);
        for i in 0..100 {
            map.insert(i, "x");
        }
        assert_eq!(map.len(), 100);
        assert!(!map.is_empty());
    }
}
