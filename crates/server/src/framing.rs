//! Shared connection framing for daemons speaking the newline-delimited
//! JSON protocol — the backend server and the cluster router run the
//! exact same front-door loop, differing only in how they *handle* a
//! decoded request.
//!
//! [`serve_framed`] owns one connection end to end: poll-read lines
//! (re-checking a shutdown flag each poll), enforce the frame-size /
//! idle / per-connection-request limits, decode, dispatch to the
//! caller's handler, and write the reply. Limit violations and per-op
//! outcomes are reported through callbacks so each daemon can feed its
//! own metrics sink.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::proto::{Request, Response};

/// How often a blocked read re-checks the shutdown flag (and, since the
/// idle timeout piggybacks on the same poll, the granularity of idle
/// detection).
pub const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Per-connection limits enforced by the framing loop.
#[derive(Clone, Copy, Debug)]
pub struct ConnLimits {
    /// Requests served per connection before the daemon closes it.
    pub max_requests_per_conn: usize,
    /// Longest request line the daemon will buffer.
    pub max_line_bytes: usize,
    /// Close a connection after this long without any activity — a
    /// completed request *or* partial bytes of an in-progress frame.
    pub idle_timeout: Duration,
}

/// A limit violation the framing loop handled by closing the
/// connection, surfaced so the daemon can count it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnEvent {
    /// A frame was cut short by EOF (rejected, not served).
    TruncatedFrame,
    /// A request line exceeded [`ConnLimits::max_line_bytes`].
    OversizeClose,
    /// No activity (completed request or partial bytes) within
    /// [`ConnLimits::idle_timeout`].
    IdleClose,
    /// The connection exceeded its request budget.
    OverLimitClose,
}

/// How the framing loop ended for one request line.
enum Framing {
    /// A complete newline-terminated frame is in the buffer.
    Complete,
    /// Clean EOF at a frame boundary: the peer is done.
    Eof,
    /// The peer hung up (or shut down its write half) mid-frame.
    Truncated,
    /// The frame exceeded [`ConnLimits::max_line_bytes`].
    Oversize,
    /// No activity within [`ConnLimits::idle_timeout`].
    Idle,
}

/// Encode `response` and write it as one newline-terminated frame.
pub fn write_response(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut line = response.encode();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Serve one connection until it closes. Returns `true` iff the peer
/// issued a graceful `shutdown` request (the caller should then begin
/// daemon-wide shutdown).
///
/// `handle` maps each decoded request to its response; `observe` is
/// called once per served request with `(op, µs, ok)`; `event` reports
/// limit violations.
pub fn serve_framed(
    stream: TcpStream,
    limits: &ConnLimits,
    shutdown: &AtomicBool,
    mut handle: impl FnMut(Request) -> Response,
    mut observe: impl FnMut(&'static str, u64, bool),
    mut event: impl FnMut(ConnEvent),
) -> bool {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return false,
    };
    let mut reader = BufReader::new(stream);
    let mut served = 0usize;
    let mut line = String::new();
    let mut last_activity = Instant::now();
    loop {
        line.clear();
        let mut seen_len = 0usize;
        // Poll for a full line, re-checking the shutdown flag whenever
        // the read times out. Partial reads accumulate in `line` and
        // count as activity — a peer slowly streaming one legitimate
        // large frame must not be killed as idle mid-upload. The
        // defense against a slow-loris peer trickling bytes forever is
        // the oversize cap, not the idle clock.
        let framing = loop {
            if shutdown.load(Ordering::SeqCst) {
                let _ = write_response(
                    &mut writer,
                    &Response::Bye {
                        reason: "shutdown".to_string(),
                    },
                );
                return false;
            }
            match reader.read_line(&mut line) {
                // EOF with nothing buffered is a clean hangup; EOF with
                // a partial frame left over is a truncated request.
                Ok(0) => {
                    break if line.trim().is_empty() {
                        Framing::Eof
                    } else {
                        Framing::Truncated
                    }
                }
                Ok(_) => {
                    if line.len() > limits.max_line_bytes {
                        break Framing::Oversize;
                    }
                    if line.ends_with('\n') {
                        break Framing::Complete;
                    }
                    // `read_line` returns `Ok` without a trailing
                    // newline only at EOF: the frame was cut short.
                    break Framing::Truncated;
                }
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock
                        || e.kind() == ErrorKind::TimedOut
                        || e.kind() == ErrorKind::Interrupted =>
                {
                    if line.len() > limits.max_line_bytes {
                        break Framing::Oversize;
                    }
                    if line.len() > seen_len {
                        // Bytes arrived since the last poll: the peer is
                        // alive, just slow. Partial progress resets the
                        // idle clock.
                        seen_len = line.len();
                        last_activity = Instant::now();
                    }
                    if last_activity.elapsed() >= limits.idle_timeout {
                        break Framing::Idle;
                    }
                }
                Err(_) => return false,
            }
        };
        match framing {
            Framing::Complete => {}
            Framing::Eof => return false,
            Framing::Truncated => {
                event(ConnEvent::TruncatedFrame);
                let _ = write_response(
                    &mut writer,
                    &Response::error("malformed request: truncated frame (EOF before newline)"),
                );
                return false;
            }
            Framing::Oversize => {
                event(ConnEvent::OversizeClose);
                let _ = write_response(
                    &mut writer,
                    &Response::error(format!(
                        "malformed request: line exceeds {} bytes",
                        limits.max_line_bytes
                    )),
                );
                return false;
            }
            Framing::Idle => {
                event(ConnEvent::IdleClose);
                let _ = write_response(
                    &mut writer,
                    &Response::Bye {
                        reason: "idle timeout".to_string(),
                    },
                );
                return false;
            }
        }
        if line.trim().is_empty() {
            continue;
        }

        served += 1;
        if served > limits.max_requests_per_conn {
            event(ConnEvent::OverLimitClose);
            let _ = write_response(
                &mut writer,
                &Response::Bye {
                    reason: "request limit".to_string(),
                },
            );
            return false;
        }

        let started = Instant::now();
        let (op, response) = match Request::decode(line.trim_end()) {
            Ok(req) => {
                let op = req.op();
                (op, handle(req))
            }
            Err(e) => (
                // The prefix is load-bearing: a correct client knows its
                // frame was well-formed, so a "malformed request" error
                // proves in-flight corruption and is safe to retry (see
                // `RetryPolicy::is_retryable`).
                "malformed",
                Response::error(format!("malformed request: {e}")),
            ),
        };
        let ok = !matches!(response, Response::Error { .. });
        let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        observe(op, us, ok);

        let closing = matches!(response, Response::Bye { .. });
        if write_response(&mut writer, &response).is_err() {
            return false;
        }
        last_activity = Instant::now();
        if closing {
            if let Response::Bye { reason } = &response {
                return reason == "shutdown";
            }
            return false;
        }
    }
}
