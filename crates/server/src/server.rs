//! The daemon: TCP listener, structure registry, solve dispatch, and
//! graceful shutdown.
//!
//! Two service cores share all of the dispatch logic:
//!
//! * [`CoreMode::EventLoop`] (the default) — the nonblocking readiness
//!   shards of [`crate::event_loop`]: a fixed set of loop threads
//!   drives every connection with per-connection read/write buffers,
//!   decodes many pipelined frames per wakeup, answers cheap requests
//!   (ping, stats, register, cache hits, validation errors) inline on
//!   the loop thread, and offloads compute-shaped work (`solve`,
//!   `evaluate`, `modelcheck`) to the bounded [`WorkerPool`], whose
//!   callbacks complete the connection's ordered response slots.
//!   Duplicate solves planned before their twin's result reaches the
//!   cache — routine inside a pipelined window — coalesce onto the one
//!   in-flight computation ([`State::inflight`]) and are replayed to
//!   every waiter as cache hits when it lands.
//! * [`CoreMode::Threaded`] — the original thread-per-connection front
//!   door over [`crate::framing::serve_framed`], kept as the measurable
//!   baseline (experiment E23 compares the two) and for callers that
//!   prefer one blocking thread per peer at small connection counts.
//!
//! Backpressure is structural in both cores: the pool queue is
//! bounded, a connection may have at most `max_inflight_per_conn`
//! requests in flight (one, in the threaded core), and each connection
//! is closed after [`ServerConfig::max_requests_per_conn`] requests.
//! Resource exhaustion degrades instead of panicking: past the
//! connection cap (or on a failed `thread::spawn`) a fresh connection
//! gets one reply and a close, counted as `rejected_connections`.
//!
//! # Registry and arenas
//!
//! Structures are parsed once at `register` and addressed by the FNV-1a
//! hash of their *canonical* serialisation (`io::to_text` of the parsed
//! graph), so textual variants of the same structure dedupe. The
//! registry, the hypothesis store, and the LRU result cache are
//! sharded by a splitmix64 finalizer over those content hashes
//! ([`crate::cache::ShardedMap`] / [`crate::cache::ShardedCache`]), so
//! concurrent requests stop serializing on one lock. Type arenas are
//! shared per vocabulary colour count — the same discipline as
//! `folearn_hardness::oracle::BruteForceOracle` — which makes type ids
//! (and hence the `types` lists in `solved` responses) comparable
//! across calls for the lifetime of the daemon. That is what lets a
//! remote client group equal oracle answers exactly like the
//! in-process oracle does.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use folearn::bruteforce::BruteForceOpts;
use folearn::ndlearner::NdConfig;
use folearn::problem::{ErmInstance, TrainingSequence};
use folearn::{solve_fo_erm_with_engine, Hypothesis, SharedArena, Solver};
use folearn_graph::{io, Graph, V};
use folearn_logic::parser;
use folearn_logic::vm::EvalEngine;
use folearn_types::TypeArena;
use parking_lot::Mutex;

use crate::cache::{ShardedCache, ShardedMap};
use crate::event_loop::{self, Dispatch, EventHandler, EventLoopOptions, Responder};
use crate::framing::{self, ConnEvent, ConnLimits};
use crate::metrics::Metrics;
use crate::pool::{Job, TrySubmit, WorkerPool};
use crate::proto::{
    fnv1a64, hex64, Json, Request, Response, SolveOutcome, SolverSpec, TraceContext, WireBinding,
    WireExample, WireHypothesis,
};
use crate::snapshot::{Durability, DurableRecord, DEFAULT_SNAPSHOT_EVERY};

/// Hard ceiling on per-request solver threads: a typo like
/// `--threads 999999` must fail with a protocol error, not abort the
/// daemon trying to spawn a million OS threads.
pub const MAX_SOLVER_THREADS: usize = 256;

/// Which service core drives connections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreMode {
    /// One blocking OS thread per connection (the pre-event-loop
    /// design; kept as the E23 baseline).
    Threaded,
    /// Nonblocking readiness shards with pipelining (the default).
    EventLoop,
}

impl std::str::FromStr for CoreMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "thread" | "threaded" => Ok(CoreMode::Threaded),
            "event" | "event-loop" => Ok(CoreMode::EventLoop),
            other => Err(format!("unknown core {other:?} (use thread|event)")),
        }
    }
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads for compute requests (`0` = one per core).
    pub workers: usize,
    /// Pending compute jobs before submitters block (threaded core) or
    /// defer per connection (event core).
    pub queue_depth: usize,
    /// Result-cache entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Requests served per connection before the daemon closes it.
    pub max_requests_per_conn: usize,
    /// Capture a learner-level span tree per solve (surfaced as the
    /// `trace` field of `solved` responses and aggregated under `spans`
    /// in the `stats` payload). Enabling turns on `folearn_obs` capture
    /// process-wide; disabling leaves the global flag untouched.
    pub trace: bool,
    /// Longest request line the daemon will buffer. A peer that exceeds
    /// it (oversized frame, or a byte stream with no newline at all)
    /// gets one `error` response and the connection is closed — buffer
    /// growth is bounded no matter what arrives.
    pub max_line_bytes: usize,
    /// Close a connection after this long without activity (a completed
    /// request or partial bytes of an in-progress frame). Bounds
    /// abandoned sockets; the oversize cap bounds slow-loris peers.
    /// Detection granularity is the read-poll interval.
    pub idle_timeout: Duration,
    /// Concurrent connections the daemon accepts; above the cap a fresh
    /// connection is greeted with `bye` and closed (counted under
    /// `rejected_connections`).
    pub max_connections: usize,
    /// Which service core to run (default: the event loop).
    pub core: CoreMode,
    /// Readiness-loop shard threads for the event core (`0` = one per
    /// host core, capped at 4 — the loops are I/O-bound).
    pub event_loops: usize,
    /// Pipelined requests one connection may have in flight before the
    /// event core stops reading from it (ignored by the threaded core,
    /// which is strictly request/reply).
    pub max_inflight_per_conn: usize,
    /// Lock shards for the result cache, the structure registry, and
    /// the hypothesis store.
    pub cache_shards: usize,
    /// Durable-state directory. When set, every registry/hypothesis
    /// mutation is fsync'd into a write-ahead log there before the
    /// response is sent, periodic compacted snapshots bound replay
    /// time, and startup replays the log into bit-identical pre-crash
    /// state. `None` (the default) keeps today's in-memory behaviour,
    /// byte-for-byte.
    pub data_dir: Option<std::path::PathBuf>,
    /// WAL appends between snapshot compactions (`0` = the default,
    /// [`crate::snapshot::DEFAULT_SNAPSHOT_EVERY`]).
    pub snapshot_every: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_depth: 64,
            cache_capacity: 256,
            max_requests_per_conn: 100_000,
            trace: true,
            max_line_bytes: 4 << 20,
            idle_timeout: Duration::from_secs(300),
            max_connections: 256,
            core: CoreMode::EventLoop,
            event_loops: 0,
            max_inflight_per_conn: 32,
            cache_shards: 8,
            data_dir: None,
            snapshot_every: 0,
        }
    }
}

struct StoredHypothesis {
    hypothesis: Hypothesis,
    /// The structure the hypothesis was learned on (evaluate requests
    /// must target the same one).
    structure: u64,
}

struct State {
    graphs: ShardedMap<Arc<Graph>>,
    arenas: Mutex<HashMap<usize, SharedArena>>,
    hypotheses: ShardedMap<Arc<StoredHypothesis>>,
    next_hypothesis: AtomicU64,
    /// Solve results plus the instant each entry was captured, so a
    /// replayed trace can be stamped with its age.
    cache: ShardedCache<(SolveOutcome, Instant)>,
    /// Solve computations currently running on the pool, keyed like the
    /// result cache (event core only). A pipelined duplicate of a solve
    /// whose twin has been planned but not yet cached attaches its
    /// responder here instead of recomputing; the running job fans its
    /// outcome out to every waiter when it completes.
    inflight: Mutex<HashMap<(u64, u64, u64), Vec<Responder>>>,
    metrics: Metrics,
    shutdown: AtomicBool,
    addr: SocketAddr,
    max_requests_per_conn: usize,
    max_line_bytes: usize,
    idle_timeout: Duration,
    /// The open durability layer, present only under `--data-dir`.
    /// `None` throughout startup replay, so replayed mutations are
    /// never re-appended to the log they came from.
    durable: Mutex<Option<Durability>>,
}

impl State {
    fn graph(&self, hash: u64) -> Result<Arc<Graph>, String> {
        self.graphs
            .get(hash)
            .ok_or_else(|| format!("unknown structure {}", crate::proto::hex64(hash)))
    }

    /// The shared arena for this graph's vocabulary (keyed by colour
    /// count, as in the in-process oracle).
    fn arena_for(&self, g: &Graph) -> SharedArena {
        let mut arenas = self.arenas.lock();
        Arc::clone(
            arenas
                .entry(g.vocab().num_colors())
                .or_insert_with(|| {
                    Arc::new(Mutex::new(TypeArena::new(Arc::clone(g.vocab()))))
                }),
        )
    }

    fn sync_gauges(&self) {
        let (hits, misses, evictions) = self.cache.counters();
        self.metrics
            .set_cache_counters(hits, misses, evictions, self.cache.len());
        self.metrics
            .set_store_sizes(self.graphs.len(), self.hypotheses.len());
    }

    fn limits(&self) -> ConnLimits {
        ConnLimits {
            max_requests_per_conn: self.max_requests_per_conn,
            max_line_bytes: self.max_line_bytes,
            idle_timeout: self.idle_timeout,
        }
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the acceptor so a blocking accept() observes the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Append one mutation to the WAL, if durability is active. The
    /// append fsyncs before returning, so by the time the caller sends
    /// its response the mutation survives `kill -9`. An I/O failure is
    /// surfaced loudly but does not fail the request: the in-memory
    /// state is still correct, only its durability is degraded.
    fn persist(&self, record: &DurableRecord) {
        let mut durable = self.durable.lock();
        if let Some(d) = durable.as_mut() {
            match d.append(record) {
                Ok(_compacted) => self.metrics.record_wal_append(),
                Err(e) => eprintln!("folearn-server: WAL append failed: {e}"),
            }
        }
    }
}

/// Per-core bookkeeping inside a [`ServerHandle`].
enum CoreHandles {
    Threaded {
        connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
        pool: Arc<WorkerPool>,
    },
    Event {
        loops: Vec<JoinHandle<()>>,
        live: Arc<AtomicUsize>,
        pool: Arc<WorkerPool>,
    },
}

/// A running daemon. Dropping the handle without calling
/// [`ServerHandle::shutdown`] or [`ServerHandle::wait`] aborts less
/// gracefully (threads are detached), so call one of them.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    acceptor: Option<JoinHandle<()>>,
    core: CoreHandles,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live connections currently tracked. Threaded core: connection
    /// handles not yet reaped (the acceptor reaps on every accept, so
    /// this stays bounded however many connections the daemon has ever
    /// served). Event core: connections currently owned by the shards.
    pub fn tracked_connections(&self) -> usize {
        match &self.core {
            CoreHandles::Threaded { connections, .. } => connections.lock().len(),
            CoreHandles::Event { live, .. } => live.load(Ordering::SeqCst),
        }
    }

    /// Ask the daemon to stop, then wait for all threads.
    pub fn shutdown(mut self) {
        self.state.request_shutdown();
        self.join_all();
    }

    /// Block until a client issues a `shutdown` request, then clean up.
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        match &mut self.core {
            CoreHandles::Threaded { connections, pool } => {
                // Acceptor has exited, so no new connections appear;
                // join the existing ones (they exit within one poll
                // interval of the shutdown flag, or as soon as their
                // client hangs up).
                loop {
                    let handle = connections.lock().pop();
                    match handle {
                        Some(h) => {
                            let _ = h.join();
                        }
                        None => break,
                    }
                }
                // Workers drain their queue and exit when the pool
                // drops its sender. `Arc::get_mut` succeeds because
                // every clone lived in a connection thread we just
                // joined.
                if let Some(pool) = Arc::get_mut(pool) {
                    pool.shutdown();
                }
            }
            CoreHandles::Event { loops, pool, .. } => {
                // Shards flush in-flight responses (bounded by the
                // shutdown grace) and exit; their handler clones — the
                // only other pool references — drop with them. Jobs
                // never capture the pool (see `WorkerPool::panic_cell`).
                for h in loops.drain(..) {
                    let _ = h.join();
                }
                if let Some(pool) = Arc::get_mut(pool) {
                    pool.shutdown();
                }
            }
        }
    }
}

/// Bind and start serving. Returns once the listener is live.
pub fn start(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    if config.trace {
        folearn_obs::set_enabled(true);
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shards = config.cache_shards.max(1);
    let state = Arc::new(State {
        graphs: ShardedMap::new(shards),
        arenas: Mutex::new(HashMap::new()),
        hypotheses: ShardedMap::new(shards),
        next_hypothesis: AtomicU64::new(1),
        cache: ShardedCache::new(config.cache_capacity, shards),
        inflight: Mutex::new(HashMap::new()),
        metrics: Metrics::new(),
        shutdown: AtomicBool::new(false),
        addr,
        max_requests_per_conn: config.max_requests_per_conn.max(1),
        max_line_bytes: config.max_line_bytes.max(1),
        idle_timeout: config.idle_timeout,
        durable: Mutex::new(None),
    });
    if let Some(dir) = &config.data_dir {
        let every = if config.snapshot_every == 0 {
            DEFAULT_SNAPSHOT_EVERY
        } else {
            config.snapshot_every
        };
        recover(&state, dir, every)?;
    }
    let pool = Arc::new(WorkerPool::new(config.workers, config.queue_depth));
    let max_connections = config.max_connections.max(1);
    match config.core {
        CoreMode::Threaded => {
            state.metrics.set_core_info("thread", 0, state.cache.num_shards());
            start_threaded(listener, state, pool, max_connections)
        }
        CoreMode::EventLoop => start_event(config, listener, state, pool, max_connections),
    }
}

/// Replay the durable history of `dir` into a freshly built state,
/// then activate the WAL for new mutations.
///
/// Replay runs single-threaded before any core thread exists, which is
/// what makes id forcing sound: each logged solve stores its recorded
/// id into `next_hypothesis` so the `fetch_add` inside [`run_solve`]
/// hands back exactly the pre-crash id, even though concurrent solves
/// may have been *logged* in completion order rather than id order.
/// Replayed solves run through the same [`plan_solve`]/[`run_solve`]
/// path as live traffic (minus the cache short-circuit, so a re-logged
/// key after an LRU eviction still reconstructs both store entries),
/// so arenas, type keys, and the result cache warm exactly as they
/// stood — recovered state is bit-identical, not merely equivalent.
fn recover(state: &Arc<State>, dir: &std::path::Path, snapshot_every: usize) -> std::io::Result<()> {
    let started = Instant::now();
    let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
    let (durability, records, stats) = Durability::open(dir, snapshot_every)?;
    let mut max_id = 0u64;
    for record in &records {
        match record {
            DurableRecord::Register { graph_text } => {
                if let Response::Error { message, .. } = handle_register(state, graph_text) {
                    return Err(bad(format!("replay: register failed: {message}")));
                }
            }
            DurableRecord::Solve { id, request } => {
                let Request::Solve {
                    structure,
                    examples,
                    ell,
                    q,
                    epsilon,
                    solver,
                    ..
                } = request
                else {
                    return Err(bad("replay: solve record without solve request".into()));
                };
                state.next_hypothesis.store(*id, Ordering::SeqCst);
                max_id = max_id.max(*id);
                let planned = plan_solve(
                    state, *structure, examples, *ell, *q, *epsilon, solver, None, false,
                );
                let response = match planned {
                    Ok(job) => run_solve(state, job),
                    Err(response) => response,
                };
                if let Response::Error { message, .. } = response {
                    return Err(bad(format!("replay: solve failed: {message}")));
                }
            }
        }
    }
    state
        .next_hypothesis
        .store(max_id.saturating_add(1).max(1), Ordering::SeqCst);
    state.metrics.set_recovery(
        stats.records_replayed(),
        stats.snapshot_loads,
        stats.torn_tail_truncations,
        started.elapsed().as_millis() as u64,
    );
    state.sync_gauges();
    *state.durable.lock() = Some(durability);
    Ok(())
}

/// The thread-per-connection core: the E23 baseline.
fn start_threaded(
    listener: TcpListener,
    state: Arc<State>,
    pool: Arc<WorkerPool>,
    max_connections: usize,
) -> std::io::Result<ServerHandle> {
    let addr = state.addr;
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let acceptor = {
        let state = Arc::clone(&state);
        let pool = Arc::clone(&pool);
        let connections = Arc::clone(&connections);
        std::thread::Builder::new()
            .name("folearn-acceptor".to_string())
            .spawn(move || {
                for incoming in listener.incoming() {
                    if state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = incoming else { continue };
                    // Reap finished handles before admitting anyone: the
                    // tracked set stays bounded by the live connections,
                    // not by the daemon's lifetime total.
                    let admitted = {
                        let mut conns = connections.lock();
                        conns.retain(|h| !h.is_finished());
                        conns.len() < max_connections
                    };
                    if !admitted {
                        state.metrics.record_rejected_connection();
                        let _ = framing::write_response(
                            &mut stream,
                            &Response::Bye {
                                reason: "connection limit".to_string(),
                            },
                        );
                        continue;
                    }
                    state.metrics.record_connection();
                    let conn_state = Arc::clone(&state);
                    let conn_pool = Arc::clone(&pool);
                    // Keep a reply handle: if the spawn below fails
                    // (thread limit, OOM) the stream has been moved
                    // into the dropped closure, and this clone is what
                    // lets the daemon degrade with an error reply
                    // instead of panicking.
                    let reply = stream.try_clone().ok();
                    let spawned = std::thread::Builder::new()
                        .name("folearn-conn".to_string())
                        .spawn(move || serve_connection(&conn_state, &conn_pool, stream));
                    match spawned {
                        Ok(handle) => connections.lock().push(handle),
                        Err(_) => {
                            state.metrics.record_rejected_connection();
                            if let Some(mut s) = reply {
                                let _ = framing::write_response(
                                    &mut s,
                                    &Response::error(
                                        "server overloaded: cannot spawn connection thread",
                                    ),
                                );
                            }
                        }
                    }
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        state,
        acceptor: Some(acceptor),
        core: CoreHandles::Threaded { connections, pool },
    })
}

/// The nonblocking event core: readiness shards plus a round-robin
/// acceptor that only counts and hands off.
fn start_event(
    config: &ServerConfig,
    listener: TcpListener,
    state: Arc<State>,
    pool: Arc<WorkerPool>,
    max_connections: usize,
) -> std::io::Result<ServerHandle> {
    let addr = state.addr;
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let num_loops = if config.event_loops == 0 {
        cores.min(4)
    } else {
        config.event_loops
    };
    state
        .metrics
        .set_core_info("event", num_loops, state.cache.num_shards());
    let opts = EventLoopOptions {
        limits: state.limits(),
        max_inflight_per_conn: config.max_inflight_per_conn.max(1),
    };
    let live = Arc::new(AtomicUsize::new(0));
    let handler: Arc<dyn EventHandler> = Arc::new(ServerDispatch {
        state: Arc::clone(&state),
        pool: Arc::clone(&pool),
    });

    let mut senders = Vec::with_capacity(num_loops);
    let mut loops = Vec::with_capacity(num_loops);
    for i in 0..num_loops {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        senders.push(tx);
        let handler = Arc::clone(&handler);
        let live = Arc::clone(&live);
        let state = Arc::clone(&state);
        loops.push(
            std::thread::Builder::new()
                .name(format!("folearn-loop-{i}"))
                .spawn(move || {
                    event_loop::shard_loop(&rx, &handler, &opts, &state.shutdown, &live)
                })?,
        );
    }

    let acceptor = {
        let state = Arc::clone(&state);
        let live = Arc::clone(&live);
        std::thread::Builder::new()
            .name("folearn-acceptor".to_string())
            .spawn(move || {
                let mut next = 0usize;
                for incoming in listener.incoming() {
                    if state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = incoming else { continue };
                    if live.load(Ordering::SeqCst) >= max_connections {
                        state.metrics.record_rejected_connection();
                        let _ = framing::write_response(
                            &mut stream,
                            &Response::Bye {
                                reason: "connection limit".to_string(),
                            },
                        );
                        continue;
                    }
                    state.metrics.record_connection();
                    live.fetch_add(1, Ordering::SeqCst);
                    let shard = next % senders.len();
                    next = next.wrapping_add(1);
                    if let Err(back) = senders[shard].send(stream) {
                        // The shard is gone (only plausible during
                        // shutdown): degrade with a reply, not a panic.
                        live.fetch_sub(1, Ordering::SeqCst);
                        state.metrics.record_rejected_connection();
                        let mut stream = back.0;
                        let _ = framing::write_response(
                            &mut stream,
                            &Response::error("server overloaded: event loop unavailable"),
                        );
                    }
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        state,
        acceptor: Some(acceptor),
        core: CoreHandles::Event { loops, live, pool },
    })
}

fn serve_connection(state: &Arc<State>, pool: &Arc<WorkerPool>, stream: TcpStream) {
    let limits = state.limits();
    // The framing loop (shared with the cluster router) owns the wire;
    // this daemon plugs in its dispatch and metrics.
    let wants_shutdown = framing::serve_framed(
        stream,
        &limits,
        &state.shutdown,
        |req| handle_request(state, pool, req),
        |op, us, ok| state.metrics.record_request(op, us, ok),
        |ev| record_conn_event(state, ev),
    );
    if wants_shutdown {
        state.request_shutdown();
    }
}

fn record_conn_event(state: &State, ev: ConnEvent) {
    match ev {
        ConnEvent::TruncatedFrame => state.metrics.record_truncated_frame(),
        ConnEvent::OversizeClose => state.metrics.record_oversize_close(),
        ConnEvent::IdleClose => state.metrics.record_idle_close(),
        ConnEvent::OverLimitClose => state.metrics.record_over_limit(),
    }
}

/// The event core's dispatcher: cheap requests answered inline on the
/// loop thread, compute-shaped ones packaged into pool jobs that
/// complete the ordered response slot when they run.
struct ServerDispatch {
    state: Arc<State>,
    pool: Arc<WorkerPool>,
}

/// Owns an entry in [`State::inflight`] for the lifetime of one solve
/// job. Dropping it removes the entry and with it any still-attached
/// waiter responders — so even if the job panics on a worker, or is
/// dropped unrun (pool closed, owning connection gone while the job was
/// parked), every coalesced duplicate gets its slot answered (by the
/// responder's own drop reply) instead of hanging on a dead entry.
struct InflightGuard {
    state: Arc<State>,
    key: (u64, u64, u64),
}

impl InflightGuard {
    /// Detach and return the waiters accumulated so far.
    fn take_waiters(&self) -> Vec<Responder> {
        self.state
            .inflight
            .lock()
            .remove(&self.key)
            .unwrap_or_default()
    }
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        drop(self.take_waiters());
    }
}

impl ServerDispatch {
    /// Package `run` into a pool job that completes `responder`,
    /// catching panics into an error reply (the worker thread survives
    /// either way; see the pool's own `catch_unwind` backstop).
    fn offload(
        &self,
        prefix: &'static str,
        responder: Responder,
        run: impl FnOnce(&Arc<State>) -> Response + Send + 'static,
    ) -> Dispatch {
        let state = Arc::clone(&self.state);
        let panics = self.pool.panic_cell();
        let job: Job = Box::new(move || {
            let response = match catch_unwind(AssertUnwindSafe(|| run(&state))) {
                Ok(response) => response,
                Err(payload) => {
                    panics.fetch_add(1, Ordering::Relaxed);
                    folearn_obs::count(folearn_obs::Counter::WorkerPanics, 1);
                    let message = panic_message(&payload);
                    Response::error(format!("{prefix}: worker panicked: {message}"))
                }
            };
            responder.complete(response);
        });
        match self.pool.try_submit(job) {
            Ok(()) => Dispatch::Accepted,
            Err(TrySubmit::Full(job)) => Dispatch::Busy(job),
            // Pool is shutting down: the dropped job's responder has
            // already answered the slot with an error.
            Err(TrySubmit::Closed) => Dispatch::Accepted,
        }
    }
}

impl EventHandler for ServerDispatch {
    fn dispatch(&self, req: Request, responder: Responder) -> Dispatch {
        match req {
            Request::Ping => {
                responder.complete(Response::Pong);
                Dispatch::Accepted
            }
            Request::Shutdown => {
                responder.complete(Response::Bye {
                    reason: "shutdown".to_string(),
                });
                Dispatch::Accepted
            }
            Request::Stats => {
                responder.complete(handle_stats(&self.state, &self.pool));
                Dispatch::Accepted
            }
            Request::Inventory => {
                responder.complete(handle_inventory(&self.state));
                Dispatch::Accepted
            }
            Request::Register { graph_text } => {
                responder.complete(handle_register(&self.state, &graph_text));
                Dispatch::Accepted
            }
            Request::Solve {
                structure,
                examples,
                ell,
                q,
                epsilon,
                solver,
                trace,
            } => match plan_solve(
                &self.state, structure, &examples, ell, q, epsilon, &solver, trace, true,
            ) {
                Err(response) => {
                    responder.complete(response);
                    Dispatch::Accepted
                }
                Ok(job) => {
                    // Coalesce a duplicate of an in-flight solve: the
                    // pipelined window lets identical solves be planned
                    // before the first result reaches the cache, and
                    // recomputing each would collapse exactly the way
                    // this core exists to fix. Attach the responder to
                    // the running job; it replays the outcome to every
                    // waiter on completion.
                    let key = job.cache_key;
                    {
                        let mut inflight = self.state.inflight.lock();
                        if let Some(waiters) = inflight.get_mut(&key) {
                            waiters.push(responder);
                            self.state.metrics.record_cache_event(true);
                            return Dispatch::Accepted;
                        }
                        inflight.insert(key, Vec::new());
                    }
                    self.state.metrics.record_cache_event(false);
                    let guard = InflightGuard {
                        state: Arc::clone(&self.state),
                        key,
                    };
                    self.offload("solve", responder, move |state| {
                        let response = run_solve(state, job);
                        let waiters = guard.take_waiters();
                        if let Response::Solved(outcome) = &response {
                            for waiter in waiters {
                                let mut replay = outcome.clone();
                                replay.cached = true;
                                replay.trace =
                                    replay.trace.map(|t| stamp_replay(t, Duration::ZERO));
                                state.metrics.record_cache_event(true);
                                waiter.complete(Response::Solved(replay));
                            }
                        } else {
                            for waiter in waiters {
                                waiter.complete(response.clone());
                            }
                        }
                        response
                    })
                }
            },
            Request::Evaluate {
                structure,
                hypothesis,
                tuples,
                labels,
            } => match plan_evaluate(&self.state, structure, hypothesis, tuples, labels) {
                Err(response) => {
                    responder.complete(response);
                    Dispatch::Accepted
                }
                Ok(job) => {
                    self.offload("evaluate", responder, move |_| run_evaluate(job))
                }
            },
            Request::ModelCheck {
                structure,
                formula,
                engine,
                trace,
            } => match plan_modelcheck(&self.state, structure, &formula, engine, trace) {
                Err(response) => {
                    responder.complete(response);
                    Dispatch::Accepted
                }
                Ok(job) => self.offload("modelcheck", responder, move |state| {
                    run_modelcheck(state, job)
                }),
            },
        }
    }

    fn retry(&self, job: Job) -> Result<(), Job> {
        match self.pool.try_submit(job) {
            Ok(()) => Ok(()),
            Err(TrySubmit::Full(job)) => Err(job),
            // Dropped job: its responder answered the slot already.
            Err(TrySubmit::Closed) => Ok(()),
        }
    }

    fn observe(&self, op: &'static str, us: u64, ok: bool) {
        self.state.metrics.record_request(op, us, ok);
    }

    fn conn_event(&self, ev: ConnEvent) {
        record_conn_event(&self.state, ev);
    }

    fn wants_shutdown(&self) {
        self.state.request_shutdown();
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// The threaded core's dispatcher (blocking: compute requests submit to
/// the pool and wait for the reply on the connection thread).
fn handle_request(state: &Arc<State>, pool: &Arc<WorkerPool>, req: Request) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::Bye {
            reason: "shutdown".to_string(),
        },
        Request::Stats => handle_stats(state, pool),
        Request::Inventory => handle_inventory(state),
        Request::Register { graph_text } => handle_register(state, &graph_text),
        Request::Solve {
            structure,
            examples,
            ell,
            q,
            epsilon,
            solver,
            trace,
        } => match plan_solve(state, structure, &examples, ell, q, epsilon, &solver, trace, true) {
            Err(response) => response,
            Ok(job) => {
                state.metrics.record_cache_event(false);
                let state = Arc::clone(state);
                match on_pool(pool, move || run_solve(&state, job)) {
                    Ok(response) => response,
                    Err(e) => Response::error(format!("solve: {e}")),
                }
            }
        },
        Request::Evaluate {
            structure,
            hypothesis,
            tuples,
            labels,
        } => match plan_evaluate(state, structure, hypothesis, tuples, labels) {
            Err(response) => response,
            Ok(job) => match on_pool(pool, move || run_evaluate(job)) {
                Ok(response) => response,
                Err(e) => Response::error(format!("evaluate: {e}")),
            },
        },
        Request::ModelCheck {
            structure,
            formula,
            engine,
            trace,
        } => match plan_modelcheck(state, structure, &formula, engine, trace) {
            Err(response) => response,
            Ok(job) => {
                let state = Arc::clone(state);
                match on_pool(pool, move || run_modelcheck(&state, job)) {
                    Ok(response) => response,
                    Err(e) => Response::error(format!("modelcheck: {e}")),
                }
            }
        },
    }
}

fn handle_stats(state: &Arc<State>, pool: &Arc<WorkerPool>) -> Response {
    state.sync_gauges();
    state.metrics.set_worker_panics(pool.panic_count());
    Response::Stats {
        data: state.metrics.snapshot(),
    }
}

fn handle_register(state: &Arc<State>, graph_text: &str) -> Response {
    match io::parse_graph(graph_text) {
        Ok(g) => {
            let canonical = io::to_text(&g);
            let hash = fnv1a64(canonical.as_bytes());
            let (vertices, edges) = (g.num_vertices(), g.num_edges());
            let fresh = state.graphs.insert(hash, Arc::new(g));
            if fresh {
                // Log the canonical text (whose hash is the address),
                // not the client's spelling: replay re-derives the
                // identical content hash.
                state.persist(&DurableRecord::Register {
                    graph_text: canonical,
                });
            }
            Response::Registered {
                structure: hash,
                vertices,
                edges,
                fresh,
                replicas: None,
            }
        }
        Err(e) => Response::error(format!("register: {e}")),
    }
}

/// Answer `inventory`: sorted structure hashes plus sorted hypothesis
/// bindings, cheap enough to serve inline on a loop thread. Sorting
/// makes two inventories comparable byte-for-byte, which is all the
/// router's anti-entropy diff needs.
fn handle_inventory(state: &Arc<State>) -> Response {
    let mut structures: Vec<u64> = state.graphs.entries().into_iter().map(|(k, _)| k).collect();
    structures.sort_unstable();
    let mut hypotheses: Vec<WireBinding> = state
        .hypotheses
        .entries()
        .into_iter()
        .map(|(id, h)| WireBinding {
            id,
            structure: h.structure,
        })
        .collect();
    hypotheses.sort_unstable_by_key(|b| b.id);
    Response::Inventory {
        structures,
        hypotheses,
    }
}

/// Run `job` on the worker pool and block for its reply. A panicking
/// job is caught *inside* the submitted closure so the panic message
/// can ride back to the caller as an error string (the worker-loop
/// `catch_unwind` is the backstop for jobs submitted without a reply
/// channel); the worker thread survives either way.
fn on_pool<T: Send + 'static>(
    pool: &Arc<WorkerPool>,
    job: impl FnOnce() -> T + Send + 'static,
) -> Result<T, String> {
    let (tx, rx) = mpsc::channel();
    let panics = pool.panic_cell();
    let submitted = pool.submit(Box::new(move || {
        match catch_unwind(AssertUnwindSafe(job)) {
            Ok(value) => {
                let _ = tx.send(Ok(value));
            }
            Err(payload) => {
                panics.fetch_add(1, Ordering::Relaxed);
                folearn_obs::count(folearn_obs::Counter::WorkerPanics, 1);
                let message = panic_message(&payload);
                let _ = tx.send(Err(format!("worker panicked: {message}")));
            }
        }
    }));
    if !submitted {
        return Err("server is shutting down".to_string());
    }
    match rx.recv() {
        Ok(result) => result,
        Err(_) => Err("worker failed".to_string()),
    }
}

/// Stamp a cache-replayed trace with `replayed: true` and the age of
/// the original capture, so a rendered trace makes replays
/// unmistakable. A trace that fails to parse rides through untouched.
fn stamp_replay(trace: Json, age: Duration) -> Json {
    match folearn_obs::export::span_from_json(&trace) {
        Ok(mut rec) => {
            rec.meta.push(("replayed".to_string(), Json::Bool(true)));
            rec.meta.push((
                "replay_age_ms".to_string(),
                Json::int(age.as_millis() as usize),
            ));
            folearn_obs::export::span_to_json(&rec)
        }
        Err(_) => trace,
    }
}

/// A validated solve, ready to run on a worker thread.
struct SolveJob {
    g: Arc<Graph>,
    seq: TrainingSequence,
    arena: SharedArena,
    k: usize,
    ell: usize,
    q: usize,
    epsilon: f64,
    rust_solver: Solver,
    engine: EvalEngine,
    structure: u64,
    cache_key: (u64, u64, u64),
    trace_ctx: Option<TraceContext>,
    /// The wire-form `(sample, config)` pair, carried so the completed
    /// solve can be WAL-logged as a replayable request. The hypothesis
    /// itself is never persisted — it is derivable from this triple.
    wire_examples: Vec<WireExample>,
    solver_spec: SolverSpec,
}

/// Validate a solve request and check the result cache. `Err` is the
/// immediate response (validation error or cache replay), answered
/// inline; `Ok` is the prepared compute job. Startup replay passes
/// `check_cache: false`: a key logged twice (LRU eviction between two
/// live solves of the same instance) must re-run so the store entry
/// for the second id is reconstructed, not answered from the cache the
/// first replay warmed.
// A large Err is fine here: Err *is* the wire reply (cache replay or
// validation error), built once and moved straight to the responder.
#[allow(clippy::too_many_arguments, clippy::result_large_err)]
fn plan_solve(
    state: &Arc<State>,
    structure: u64,
    examples: &[WireExample],
    ell: usize,
    q: usize,
    epsilon: f64,
    solver: &SolverSpec,
    trace_ctx: Option<TraceContext>,
    check_cache: bool,
) -> Result<SolveJob, Response> {
    let fail = |m: String| Err(Response::error(m));
    let g = match state.graph(structure) {
        Ok(g) => g,
        Err(e) => {
            return Err(Response::error_coded(
                "unknown_structure",
                format!("solve: {e}"),
            ))
        }
    };
    if examples.is_empty() {
        return fail("solve: examples must be non-empty".to_string());
    }
    let k = examples[0].tuple.len();
    if k == 0 {
        return fail("solve: example tuples must be non-empty".to_string());
    }
    for e in examples {
        if e.tuple.len() != k {
            return fail("solve: examples must all have the same arity".to_string());
        }
        if let Some(&v) = e.tuple.iter().find(|&&v| v as usize >= g.num_vertices()) {
            return fail(format!("solve: vertex {v} out of range"));
        }
    }
    if !epsilon.is_finite() || epsilon < 0.0 {
        return fail("solve: epsilon must be a non-negative finite number".to_string());
    }
    if let SolverSpec::Brute {
        threads: Some(t), ..
    } = solver
    {
        if *t > MAX_SOLVER_THREADS {
            return fail(format!(
                "solve: threads must be at most {MAX_SOLVER_THREADS} (got {t})"
            ));
        }
    }

    // Cache key: structure is already hashed; hash the sample and the
    // solver configuration through their canonical wire forms.
    let sample_key = {
        let mut bytes = Vec::new();
        for e in examples {
            bytes.extend_from_slice(&(e.tuple.len() as u32).to_le_bytes());
            for &v in &e.tuple {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            bytes.push(u8::from(e.label));
        }
        bytes.extend_from_slice(&(ell as u64).to_le_bytes());
        bytes.extend_from_slice(&(q as u64).to_le_bytes());
        bytes.extend_from_slice(&epsilon.to_bits().to_le_bytes());
        fnv1a64(&bytes)
    };
    let config_key = fnv1a64(solver.to_json().render().as_bytes());
    let cache_key = (structure, sample_key, config_key);

    if check_cache {
        if let Some((mut outcome, captured_at)) = state.cache.get(&cache_key) {
            outcome.cached = true;
            outcome.trace = outcome
                .trace
                .map(|t| stamp_replay(t, captured_at.elapsed()));
            state.metrics.record_cache_event(true);
            return Err(Response::Solved(outcome));
        }
    }
    // The miss is recorded by the caller: the event core first checks
    // the in-flight table, where a coalesced duplicate still counts as
    // a hit.

    let (rust_solver, engine) = match solver {
        SolverSpec::Brute {
            mode,
            threads,
            prune,
            engine,
        } => (
            Solver::BruteForce {
                mode: *mode,
                opts: BruteForceOpts {
                    threads: *threads,
                    prune: *prune,
                    block_size: None,
                },
            },
            *engine,
        ),
        SolverSpec::Nd => (
            Solver::NowhereDense(NdConfig::default()),
            EvalEngine::TreeWalk,
        ),
    };
    let seq = TrainingSequence::from_pairs(
        examples
            .iter()
            .map(|e| (e.tuple.iter().map(|&v| V(v)).collect::<Vec<_>>(), e.label)),
    );
    let arena = state.arena_for(&g);
    Ok(SolveJob {
        g,
        seq,
        arena,
        k,
        ell,
        q,
        epsilon,
        rust_solver,
        engine,
        structure,
        cache_key,
        trace_ctx,
        wire_examples: examples.to_vec(),
        solver_spec: solver.clone(),
    })
}

/// Run a prepared solve on a worker thread: learn, store the
/// hypothesis, cache the outcome.
fn run_solve(state: &Arc<State>, job: SolveJob) -> Response {
    // The span closes on this pool worker thread; its record rides
    // back in the outcome (and into the metrics rollup) rather than
    // through the thread-local root buffer.
    let sp = folearn_obs::span("server.solve");
    if let Some(ctx) = job.trace_ctx {
        // Bind this span under the propagated parent so a router (or
        // any other caller) can stitch it into its own span tree.
        folearn_obs::meta("trace_id", Json::str(hex64(ctx.trace_id)));
        folearn_obs::meta("parent", Json::str(hex64(ctx.parent)));
    }
    let inst = ErmInstance::new(&job.g, job.seq, job.k, job.ell, job.q, job.epsilon);
    let report = solve_fo_erm_with_engine(&inst, &job.rust_solver, &job.arena, job.engine);
    let id = state.next_hypothesis.fetch_add(1, Ordering::SeqCst);
    let h = &report.hypothesis;
    // Canonical keys make the hypothesis recognisable across
    // backends: arena-relative `types` differ between servers, the
    // content hashes do not.
    let type_keys = {
        let arena = h.arena().lock();
        let mut ck = folearn_types::canon::CanonKeys::new();
        ck.key_set(&arena, h.positive_types().iter().copied())
    };
    let wire = WireHypothesis {
        id,
        params: h.params().iter().map(|v| v.0).collect(),
        q: h.q,
        mode: h.mode.to_string(),
        types: h.positive_types().iter().map(|t| t.0).collect(),
        type_keys,
        describe: h.describe(),
    };
    state.hypotheses.insert(
        id,
        Arc::new(StoredHypothesis {
            hypothesis: report.hypothesis.clone(),
            structure: job.structure,
        }),
    );
    // WAL the derivation triple before the response can be sent: once a
    // client sees this id, the id survives `kill -9`.
    state.persist(&DurableRecord::Solve {
        id,
        request: Request::Solve {
            structure: job.structure,
            examples: job.wire_examples,
            ell: job.ell,
            q: job.q,
            epsilon: job.epsilon,
            solver: job.solver_spec,
            trace: None,
        },
    });
    state
        .metrics
        .record_solver_work(report.evaluated_params, report.pruned_params);
    let trace = sp.finish().map(|rec| {
        state.metrics.absorb_span(&rec);
        folearn_obs::export::span_to_json(&rec)
    });
    let outcome = SolveOutcome {
        cached: false,
        error: report.error,
        work: report.work,
        evaluated: report.evaluated_params,
        pruned: report.pruned_params,
        solver: report.solver_name.to_string(),
        hypothesis: wire,
        trace,
        provenance: None,
    };
    state
        .cache
        .insert(job.cache_key, (outcome.clone(), Instant::now()));
    Response::Solved(outcome)
}

/// A validated evaluate, ready to run on a worker thread.
struct EvalJob {
    g: Arc<Graph>,
    hypothesis: Hypothesis,
    tuples: Vec<Vec<u32>>,
    labels: Option<Vec<bool>>,
}

#[allow(clippy::result_large_err)] // Err is the wire reply, moved once.
fn plan_evaluate(
    state: &Arc<State>,
    structure: u64,
    hypothesis: u64,
    tuples: Vec<Vec<u32>>,
    labels: Option<Vec<bool>>,
) -> Result<EvalJob, Response> {
    let fail = |m: String| Err(Response::error(m));
    let g = match state.graph(structure) {
        Ok(g) => g,
        Err(e) => {
            return Err(Response::error_coded(
                "unknown_structure",
                format!("evaluate: {e}"),
            ))
        }
    };
    let h = match state.hypotheses.get(hypothesis) {
        Some(s) if s.structure == structure => s.hypothesis.clone(),
        Some(_) => {
            return fail("evaluate: hypothesis was learned on a different structure".to_string())
        }
        None => {
            return Err(Response::error_coded(
                "unknown_hypothesis",
                format!(
                    "evaluate: unknown hypothesis {}",
                    crate::proto::hex64(hypothesis)
                ),
            ))
        }
    };
    for t in &tuples {
        if let Some(&v) = t.iter().find(|&&v| v as usize >= g.num_vertices()) {
            return fail(format!("evaluate: vertex {v} out of range"));
        }
    }
    if let Some(ls) = &labels {
        if ls.len() != tuples.len() {
            return fail("evaluate: labels must be parallel to tuples".to_string());
        }
    }
    Ok(EvalJob {
        g,
        hypothesis: h,
        tuples,
        labels,
    })
}

fn run_evaluate(job: EvalJob) -> Response {
    let predictions: Vec<bool> = job
        .tuples
        .iter()
        .map(|t| {
            let tuple: Vec<V> = t.iter().map(|&v| V(v)).collect();
            job.hypothesis.predict(&job.g, &tuple)
        })
        .collect();
    let error = job.labels.map(|ls| {
        if predictions.is_empty() {
            0.0
        } else {
            let wrong = predictions.iter().zip(&ls).filter(|(p, l)| p != l).count();
            wrong as f64 / predictions.len() as f64
        }
    });
    Response::Predictions {
        labels: predictions,
        error,
        provenance: None,
    }
}

/// A validated model check, ready to run on a worker thread.
struct McJob {
    g: Arc<Graph>,
    phi: folearn_logic::Formula,
    engine: EvalEngine,
    trace_ctx: Option<TraceContext>,
}

#[allow(clippy::result_large_err)] // Err is the wire reply, moved once.
fn plan_modelcheck(
    state: &Arc<State>,
    structure: u64,
    formula: &str,
    engine: EvalEngine,
    trace_ctx: Option<TraceContext>,
) -> Result<McJob, Response> {
    let g = match state.graph(structure) {
        Ok(g) => g,
        Err(e) => {
            return Err(Response::error_coded(
                "unknown_structure",
                format!("modelcheck: {e}"),
            ))
        }
    };
    let phi = match parser::parse(formula, g.vocab()) {
        Ok(phi) => phi,
        Err(e) => return Err(Response::error(format!("modelcheck: {e}"))),
    };
    if !phi.is_sentence() {
        return Err(Response::error(
            "modelcheck: formula must be a sentence (no free variables)",
        ));
    }
    Ok(McJob {
        g,
        phi,
        engine,
        trace_ctx,
    })
}

fn run_modelcheck(state: &Arc<State>, job: McJob) -> Response {
    // The span ensures the VM's vm_* counters land in the metrics
    // rollup even for standalone model checks.
    let sp = folearn_obs::span("server.modelcheck");
    if let Some(ctx) = job.trace_ctx {
        folearn_obs::meta("trace_id", Json::str(hex64(ctx.trace_id)));
        folearn_obs::meta("parent", Json::str(hex64(ctx.parent)));
    }
    let holds = job.engine.models(&job.g, &job.phi);
    if let Some(rec) = sp.finish() {
        state.metrics.absorb_span(&rec);
    }
    Response::Truth {
        holds,
        provenance: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_pool_surfaces_panics_as_errors_and_the_pool_survives() {
        let pool = Arc::new(WorkerPool::new(1, 4));
        let err = on_pool::<()>(&pool, || panic!("boom at level {}", 3)).unwrap_err();
        assert!(err.starts_with("worker panicked"), "{err:?}");
        assert!(err.contains("boom at level 3"), "{err:?}");
        assert_eq!(pool.panic_count(), 1);
        assert_eq!(pool.num_workers(), 1);
        // The single worker survived and still serves (a handler would
        // turn the Err above into a `Response::Error` for the client).
        assert_eq!(on_pool(&pool, || 6 * 7).unwrap(), 42);
    }

    #[test]
    fn core_mode_parses_both_spellings() {
        assert_eq!("thread".parse::<CoreMode>().unwrap(), CoreMode::Threaded);
        assert_eq!("threaded".parse::<CoreMode>().unwrap(), CoreMode::Threaded);
        assert_eq!("event".parse::<CoreMode>().unwrap(), CoreMode::EventLoop);
        assert_eq!(
            "event-loop".parse::<CoreMode>().unwrap(),
            CoreMode::EventLoop
        );
        assert!("epoll".parse::<CoreMode>().is_err());
    }
}
