//! The daemon: TCP listener, structure registry, solve dispatch, and
//! graceful shutdown.
//!
//! One thread per connection does the cheap work — line framing,
//! request parsing, registry lookups, cache hits — and forwards
//! compute-shaped requests (`solve`, `evaluate`, `modelcheck`) to the
//! bounded [`WorkerPool`], then blocks on the reply. Backpressure is
//! therefore structural: a connection can have at most one compute
//! request in flight, the pool queue is bounded, and each connection is
//! closed after [`ServerConfig::max_requests_per_conn`] requests.
//!
//! # Registry and arenas
//!
//! Structures are parsed once at `register` and addressed by the FNV-1a
//! hash of their *canonical* serialisation (`io::to_text` of the parsed
//! graph), so textual variants of the same structure dedupe. Type
//! arenas are shared per vocabulary colour count — the same discipline
//! as `folearn_hardness::oracle::BruteForceOracle` — which makes type
//! ids (and hence the `types` lists in `solved` responses) comparable
//! across calls for the lifetime of the daemon. That is what lets a
//! remote client group equal oracle answers exactly like the in-process
//! oracle does.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use folearn::bruteforce::BruteForceOpts;
use folearn::ndlearner::NdConfig;
use folearn::problem::{ErmInstance, TrainingSequence};
use folearn::{solve_fo_erm_with_engine, Hypothesis, SharedArena, Solver};
use folearn_graph::{io, Graph, V};
use folearn_logic::vm::EvalEngine;
use folearn_logic::parser;
use folearn_types::TypeArena;
use parking_lot::Mutex;

use crate::cache::LruCache;
use crate::framing::{self, ConnEvent, ConnLimits};
use crate::metrics::Metrics;
use crate::pool::WorkerPool;
use crate::proto::{
    fnv1a64, hex64, Json, Request, Response, SolveOutcome, SolverSpec, TraceContext, WireExample,
    WireHypothesis,
};

/// Hard ceiling on per-request solver threads: a typo like
/// `--threads 999999` must fail with a protocol error, not abort the
/// daemon trying to spawn a million OS threads.
pub const MAX_SOLVER_THREADS: usize = 256;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads for compute requests (`0` = one per core).
    pub workers: usize,
    /// Pending compute jobs before submitters block.
    pub queue_depth: usize,
    /// Result-cache entries (`0` disables caching).
    pub cache_capacity: usize,
    /// Requests served per connection before the daemon closes it.
    pub max_requests_per_conn: usize,
    /// Capture a learner-level span tree per solve (surfaced as the
    /// `trace` field of `solved` responses and aggregated under `spans`
    /// in the `stats` payload). Enabling turns on `folearn_obs` capture
    /// process-wide; disabling leaves the global flag untouched.
    pub trace: bool,
    /// Longest request line the daemon will buffer. A peer that exceeds
    /// it (oversized frame, or a byte stream with no newline at all)
    /// gets one `error` response and the connection is closed — `line`
    /// growth is bounded no matter what arrives.
    pub max_line_bytes: usize,
    /// Close a connection after this long without a completed request.
    /// Bounds both abandoned sockets and slow-loris peers trickling a
    /// frame forever. Detection granularity is the read-poll interval.
    pub idle_timeout: Duration,
    /// Concurrent connections the daemon accepts; above the cap a fresh
    /// connection is greeted with `bye` and closed. Finished connection
    /// handles are reaped on every accept, so the tracked set stays
    /// bounded on a long-running daemon.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_depth: 64,
            cache_capacity: 256,
            max_requests_per_conn: 100_000,
            trace: true,
            max_line_bytes: 4 << 20,
            idle_timeout: Duration::from_secs(300),
            max_connections: 256,
        }
    }
}

struct StoredHypothesis {
    hypothesis: Hypothesis,
    /// The structure the hypothesis was learned on (evaluate requests
    /// must target the same one).
    structure: u64,
}

struct State {
    graphs: Mutex<HashMap<u64, Arc<Graph>>>,
    arenas: Mutex<HashMap<usize, SharedArena>>,
    hypotheses: Mutex<HashMap<u64, StoredHypothesis>>,
    next_hypothesis: AtomicU64,
    /// Solve results plus the instant each entry was captured, so a
    /// replayed trace can be stamped with its age.
    cache: Mutex<LruCache<(SolveOutcome, Instant)>>,
    metrics: Metrics,
    shutdown: AtomicBool,
    addr: SocketAddr,
    max_requests_per_conn: usize,
    max_line_bytes: usize,
    idle_timeout: Duration,
}

impl State {
    fn graph(&self, hash: u64) -> Result<Arc<Graph>, String> {
        self.graphs
            .lock()
            .get(&hash)
            .cloned()
            .ok_or_else(|| format!("unknown structure {}", crate::proto::hex64(hash)))
    }

    /// The shared arena for this graph's vocabulary (keyed by colour
    /// count, as in the in-process oracle).
    fn arena_for(&self, g: &Graph) -> SharedArena {
        let mut arenas = self.arenas.lock();
        Arc::clone(
            arenas
                .entry(g.vocab().num_colors())
                .or_insert_with(|| {
                    Arc::new(Mutex::new(TypeArena::new(Arc::clone(g.vocab()))))
                }),
        )
    }

    fn sync_gauges(&self) {
        let (hits, misses, evictions, len) = {
            let cache = self.cache.lock();
            let (h, m, e) = cache.counters();
            (h, m, e, cache.len())
        };
        self.metrics.set_cache_counters(hits, misses, evictions, len);
        self.metrics
            .set_store_sizes(self.graphs.lock().len(), self.hypotheses.lock().len());
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the acceptor so a blocking accept() observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running daemon. Dropping the handle without calling
/// [`ServerHandle::shutdown`] or [`ServerHandle::wait`] aborts less
/// gracefully (threads are detached), so call one of them.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    acceptor: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    pool: Arc<WorkerPool>,
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connection handles currently tracked (live ones plus any finished
    /// since the last accept — the acceptor reaps on every accept, so
    /// this stays bounded however many connections the daemon has ever
    /// served).
    pub fn tracked_connections(&self) -> usize {
        self.connections.lock().len()
    }

    /// Ask the daemon to stop, then wait for all threads.
    pub fn shutdown(mut self) {
        self.state.request_shutdown();
        self.join_all();
    }

    /// Block until a client issues a `shutdown` request, then clean up.
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Acceptor has exited, so no new connections appear; join the
        // existing ones (they exit within one poll interval of the
        // shutdown flag, or as soon as their client hangs up).
        loop {
            let handle = self.connections.lock().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        // Workers drain their queue and exit when the pool drops its
        // sender. `Arc::get_mut` succeeds because every clone lived in
        // a connection thread we just joined.
        if let Some(pool) = Arc::get_mut(&mut self.pool) {
            pool.shutdown();
        }
    }
}

/// Bind and start serving. Returns once the listener is live.
pub fn start(config: &ServerConfig) -> std::io::Result<ServerHandle> {
    if config.trace {
        folearn_obs::set_enabled(true);
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(State {
        graphs: Mutex::new(HashMap::new()),
        arenas: Mutex::new(HashMap::new()),
        hypotheses: Mutex::new(HashMap::new()),
        next_hypothesis: AtomicU64::new(1),
        cache: Mutex::new(LruCache::new(config.cache_capacity)),
        metrics: Metrics::new(),
        shutdown: AtomicBool::new(false),
        addr,
        max_requests_per_conn: config.max_requests_per_conn.max(1),
        max_line_bytes: config.max_line_bytes.max(1),
        idle_timeout: config.idle_timeout,
    });
    let pool = Arc::new(WorkerPool::new(config.workers, config.queue_depth));
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let max_connections = config.max_connections.max(1);
    let acceptor = {
        let state = Arc::clone(&state);
        let pool = Arc::clone(&pool);
        let connections = Arc::clone(&connections);
        std::thread::Builder::new()
            .name("folearn-acceptor".to_string())
            .spawn(move || {
                for incoming in listener.incoming() {
                    if state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = incoming else { continue };
                    // Reap finished handles before admitting anyone: the
                    // tracked set stays bounded by the live connections,
                    // not by the daemon's lifetime total.
                    let admitted = {
                        let mut conns = connections.lock();
                        conns.retain(|h| !h.is_finished());
                        conns.len() < max_connections
                    };
                    if !admitted {
                        state.metrics.record_rejected_connection();
                        let _ = framing::write_response(
                            &mut stream,
                            &Response::Bye {
                                reason: "connection limit".to_string(),
                            },
                        );
                        continue;
                    }
                    state.metrics.record_connection();
                    let state = Arc::clone(&state);
                    let pool = Arc::clone(&pool);
                    let handle = std::thread::Builder::new()
                        .name("folearn-conn".to_string())
                        .spawn(move || serve_connection(&state, &pool, stream))
                        .expect("spawn connection thread");
                    connections.lock().push(handle);
                }
            })?
    };

    Ok(ServerHandle {
        addr,
        state,
        acceptor: Some(acceptor),
        connections,
        pool,
    })
}

fn serve_connection(state: &Arc<State>, pool: &Arc<WorkerPool>, stream: TcpStream) {
    let limits = ConnLimits {
        max_requests_per_conn: state.max_requests_per_conn,
        max_line_bytes: state.max_line_bytes,
        idle_timeout: state.idle_timeout,
    };
    // The framing loop (shared with the cluster router) owns the wire;
    // this daemon plugs in its dispatch and metrics.
    let wants_shutdown = framing::serve_framed(
        stream,
        &limits,
        &state.shutdown,
        |req| handle_request(state, pool, req),
        |op, us, ok| state.metrics.record_request(op, us, ok),
        |ev| match ev {
            ConnEvent::TruncatedFrame => state.metrics.record_truncated_frame(),
            ConnEvent::OversizeClose => state.metrics.record_oversize_close(),
            ConnEvent::IdleClose => state.metrics.record_idle_close(),
            ConnEvent::OverLimitClose => state.metrics.record_over_limit(),
        },
    );
    if wants_shutdown {
        state.request_shutdown();
    }
}

fn handle_request(state: &Arc<State>, pool: &Arc<WorkerPool>, req: Request) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::Bye {
            reason: "shutdown".to_string(),
        },
        Request::Stats => {
            state.sync_gauges();
            state.metrics.set_worker_panics(pool.panic_count());
            Response::Stats {
                data: state.metrics.snapshot(),
            }
        }
        Request::Register { graph_text } => match io::parse_graph(&graph_text) {
            Ok(g) => {
                let canonical = io::to_text(&g);
                let hash = fnv1a64(canonical.as_bytes());
                let (vertices, edges) = (g.num_vertices(), g.num_edges());
                let fresh = state
                    .graphs
                    .lock()
                    .insert(hash, Arc::new(g))
                    .is_none();
                Response::Registered {
                    structure: hash,
                    vertices,
                    edges,
                    fresh,
                    replicas: None,
                }
            }
            Err(e) => Response::error(format!("register: {e}")),
        },
        Request::Solve {
            structure,
            examples,
            ell,
            q,
            epsilon,
            solver,
            trace,
        } => handle_solve(state, pool, structure, &examples, ell, q, epsilon, &solver, trace),
        Request::Evaluate {
            structure,
            hypothesis,
            tuples,
            labels,
        } => handle_evaluate(state, pool, structure, hypothesis, tuples, labels),
        Request::ModelCheck {
            structure,
            formula,
            engine,
            trace,
        } => handle_modelcheck(state, pool, structure, formula, engine, trace),
    }
}

/// Run `job` on the worker pool and block for its reply. A panicking
/// job is caught *inside* the submitted closure so the panic message
/// can ride back to the caller as an error string (the worker-loop
/// `catch_unwind` is the backstop for jobs submitted without a reply
/// channel); the worker thread survives either way.
fn on_pool<T: Send + 'static>(
    pool: &Arc<WorkerPool>,
    job: impl FnOnce() -> T + Send + 'static,
) -> Result<T, String> {
    let (tx, rx) = mpsc::channel();
    let pool_for_job = Arc::clone(pool);
    let submitted = pool.submit(Box::new(move || {
        match catch_unwind(AssertUnwindSafe(job)) {
            Ok(value) => {
                let _ = tx.send(Ok(value));
            }
            Err(payload) => {
                pool_for_job.note_panic();
                folearn_obs::count(folearn_obs::Counter::WorkerPanics, 1);
                let message = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
                    .unwrap_or("non-string panic payload");
                let _ = tx.send(Err(format!("worker panicked: {message}")));
            }
        }
    }));
    if !submitted {
        return Err("server is shutting down".to_string());
    }
    match rx.recv() {
        Ok(result) => result,
        Err(_) => Err("worker failed".to_string()),
    }
}

/// Stamp a cache-replayed trace with `replayed: true` and the age of
/// the original capture, so a rendered trace makes replays
/// unmistakable. A trace that fails to parse rides through untouched.
fn stamp_replay(trace: Json, age: Duration) -> Json {
    match folearn_obs::export::span_from_json(&trace) {
        Ok(mut rec) => {
            rec.meta.push(("replayed".to_string(), Json::Bool(true)));
            rec.meta.push((
                "replay_age_ms".to_string(),
                Json::int(age.as_millis() as usize),
            ));
            folearn_obs::export::span_to_json(&rec)
        }
        Err(_) => trace,
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_solve(
    state: &Arc<State>,
    pool: &Arc<WorkerPool>,
    structure: u64,
    examples: &[WireExample],
    ell: usize,
    q: usize,
    epsilon: f64,
    solver: &SolverSpec,
    trace_ctx: Option<TraceContext>,
) -> Response {
    let fail = Response::error;
    let g = match state.graph(structure) {
        Ok(g) => g,
        Err(e) => return Response::error_coded("unknown_structure", format!("solve: {e}")),
    };
    if examples.is_empty() {
        return fail("solve: examples must be non-empty".to_string());
    }
    let k = examples[0].tuple.len();
    if k == 0 {
        return fail("solve: example tuples must be non-empty".to_string());
    }
    for e in examples {
        if e.tuple.len() != k {
            return fail("solve: examples must all have the same arity".to_string());
        }
        if let Some(&v) = e.tuple.iter().find(|&&v| v as usize >= g.num_vertices()) {
            return fail(format!("solve: vertex {v} out of range"));
        }
    }
    if !epsilon.is_finite() || epsilon < 0.0 {
        return fail("solve: epsilon must be a non-negative finite number".to_string());
    }
    if let SolverSpec::Brute {
        threads: Some(t), ..
    } = solver
    {
        if *t > MAX_SOLVER_THREADS {
            return fail(format!(
                "solve: threads must be at most {MAX_SOLVER_THREADS} (got {t})"
            ));
        }
    }

    // Cache key: structure is already hashed; hash the sample and the
    // solver configuration through their canonical wire forms.
    let sample_key = {
        let mut bytes = Vec::new();
        for e in examples {
            bytes.extend_from_slice(&(e.tuple.len() as u32).to_le_bytes());
            for &v in &e.tuple {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            bytes.push(u8::from(e.label));
        }
        bytes.extend_from_slice(&(ell as u64).to_le_bytes());
        bytes.extend_from_slice(&(q as u64).to_le_bytes());
        bytes.extend_from_slice(&epsilon.to_bits().to_le_bytes());
        fnv1a64(&bytes)
    };
    let config_key = fnv1a64(solver.to_json().render().as_bytes());
    let cache_key = (structure, sample_key, config_key);

    let replay = state.cache.lock().get(&cache_key).cloned();
    if let Some((mut outcome, captured_at)) = replay {
        outcome.cached = true;
        outcome.trace = outcome
            .trace
            .map(|t| stamp_replay(t, captured_at.elapsed()));
        state.metrics.record_cache_event(true);
        return Response::Solved(outcome);
    }
    state.metrics.record_cache_event(false);

    let (rust_solver, engine) = match solver {
        SolverSpec::Brute {
            mode,
            threads,
            prune,
            engine,
        } => (
            Solver::BruteForce {
                mode: *mode,
                opts: BruteForceOpts {
                    threads: *threads,
                    prune: *prune,
                    block_size: None,
                },
            },
            *engine,
        ),
        SolverSpec::Nd => (
            Solver::NowhereDense(NdConfig::default()),
            EvalEngine::TreeWalk,
        ),
    };
    let seq = TrainingSequence::from_pairs(
        examples
            .iter()
            .map(|e| (e.tuple.iter().map(|&v| V(v)).collect::<Vec<_>>(), e.label)),
    );
    let arena = state.arena_for(&g);
    let state_for_job = Arc::clone(state);
    let outcome = on_pool(pool, move || {
        // The span closes on this pool worker thread; its record rides
        // back in the outcome (and into the metrics rollup) rather than
        // through the thread-local root buffer.
        let sp = folearn_obs::span("server.solve");
        if let Some(ctx) = trace_ctx {
            // Bind this span under the propagated parent so a router (or
            // any other caller) can stitch it into its own span tree.
            folearn_obs::meta("trace_id", Json::str(hex64(ctx.trace_id)));
            folearn_obs::meta("parent", Json::str(hex64(ctx.parent)));
        }
        let inst = ErmInstance::new(&g, seq, k, ell, q, epsilon);
        let report = solve_fo_erm_with_engine(&inst, &rust_solver, &arena, engine);
        let id = state_for_job.next_hypothesis.fetch_add(1, Ordering::SeqCst);
        let h = &report.hypothesis;
        // Canonical keys make the hypothesis recognisable across
        // backends: arena-relative `types` differ between servers, the
        // content hashes do not.
        let type_keys = {
            let arena = h.arena().lock();
            let mut ck = folearn_types::canon::CanonKeys::new();
            ck.key_set(&arena, h.positive_types().iter().copied())
        };
        let wire = WireHypothesis {
            id,
            params: h.params().iter().map(|v| v.0).collect(),
            q: h.q,
            mode: h.mode.to_string(),
            types: h.positive_types().iter().map(|t| t.0).collect(),
            type_keys,
            describe: h.describe(),
        };
        state_for_job.hypotheses.lock().insert(
            id,
            StoredHypothesis {
                hypothesis: report.hypothesis.clone(),
                structure,
            },
        );
        state_for_job
            .metrics
            .record_solver_work(report.evaluated_params, report.pruned_params);
        let trace = sp.finish().map(|rec| {
            state_for_job.metrics.absorb_span(&rec);
            folearn_obs::export::span_to_json(&rec)
        });
        SolveOutcome {
            cached: false,
            error: report.error,
            work: report.work,
            evaluated: report.evaluated_params,
            pruned: report.pruned_params,
            solver: report.solver_name.to_string(),
            hypothesis: wire,
            trace,
            provenance: None,
        }
    });
    match outcome {
        Ok(outcome) => {
            state
                .cache
                .lock()
                .insert(cache_key, (outcome.clone(), Instant::now()));
            Response::Solved(outcome)
        }
        Err(e) => Response::error(format!("solve: {e}")),
    }
}

fn handle_evaluate(
    state: &Arc<State>,
    pool: &Arc<WorkerPool>,
    structure: u64,
    hypothesis: u64,
    tuples: Vec<Vec<u32>>,
    labels: Option<Vec<bool>>,
) -> Response {
    let fail = Response::error;
    let g = match state.graph(structure) {
        Ok(g) => g,
        Err(e) => return Response::error_coded("unknown_structure", format!("evaluate: {e}")),
    };
    let h = {
        let store = state.hypotheses.lock();
        match store.get(&hypothesis) {
            Some(s) if s.structure == structure => s.hypothesis.clone(),
            Some(_) => {
                return fail(
                    "evaluate: hypothesis was learned on a different structure".to_string(),
                )
            }
            None => {
                return Response::error_coded(
                    "unknown_hypothesis",
                    format!(
                        "evaluate: unknown hypothesis {}",
                        crate::proto::hex64(hypothesis)
                    ),
                )
            }
        }
    };
    for t in &tuples {
        if let Some(&v) = t.iter().find(|&&v| v as usize >= g.num_vertices()) {
            return fail(format!("evaluate: vertex {v} out of range"));
        }
    }
    if let Some(ls) = &labels {
        if ls.len() != tuples.len() {
            return fail("evaluate: labels must be parallel to tuples".to_string());
        }
    }
    let result = on_pool(pool, move || {
        let predictions: Vec<bool> = tuples
            .iter()
            .map(|t| {
                let tuple: Vec<V> = t.iter().map(|&v| V(v)).collect();
                h.predict(&g, &tuple)
            })
            .collect();
        let error = labels.map(|ls| {
            if predictions.is_empty() {
                0.0
            } else {
                let wrong = predictions
                    .iter()
                    .zip(&ls)
                    .filter(|(p, l)| p != l)
                    .count();
                wrong as f64 / predictions.len() as f64
            }
        });
        (predictions, error)
    });
    match result {
        Ok((labels, error)) => Response::Predictions {
            labels,
            error,
            provenance: None,
        },
        Err(e) => Response::error(format!("evaluate: {e}")),
    }
}

fn handle_modelcheck(
    state: &Arc<State>,
    pool: &Arc<WorkerPool>,
    structure: u64,
    formula: String,
    engine: EvalEngine,
    trace_ctx: Option<TraceContext>,
) -> Response {
    let g = match state.graph(structure) {
        Ok(g) => g,
        Err(e) => {
            return Response::error_coded("unknown_structure", format!("modelcheck: {e}"))
        }
    };
    let phi = match parser::parse(&formula, g.vocab()) {
        Ok(phi) => phi,
        Err(e) => return Response::error(format!("modelcheck: {e}")),
    };
    if !phi.is_sentence() {
        return Response::error("modelcheck: formula must be a sentence (no free variables)");
    }
    // The span ensures the VM's vm_* counters land in the metrics rollup
    // even for standalone model checks.
    let state_for_job = Arc::clone(state);
    match on_pool(pool, move || {
        let sp = folearn_obs::span("server.modelcheck");
        if let Some(ctx) = trace_ctx {
            folearn_obs::meta("trace_id", Json::str(hex64(ctx.trace_id)));
            folearn_obs::meta("parent", Json::str(hex64(ctx.parent)));
        }
        let holds = engine.models(&g, &phi);
        if let Some(rec) = sp.finish() {
            state_for_job.metrics.absorb_span(&rec);
        }
        holds
    }) {
        Ok(holds) => Response::Truth {
            holds,
            provenance: None,
        },
        Err(e) => Response::error(format!("modelcheck: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_pool_surfaces_panics_as_errors_and_the_pool_survives() {
        let pool = Arc::new(WorkerPool::new(1, 4));
        let err = on_pool::<()>(&pool, || panic!("boom at level {}", 3)).unwrap_err();
        assert!(err.starts_with("worker panicked"), "{err:?}");
        assert!(err.contains("boom at level 3"), "{err:?}");
        assert_eq!(pool.panic_count(), 1);
        assert_eq!(pool.num_workers(), 1);
        // The single worker survived and still serves (a handler would
        // turn the Err above into a `Response::Error` for the client).
        assert_eq!(on_pool(&pool, || 6 * 7).unwrap(), 42);
    }
}
