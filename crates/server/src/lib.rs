//! `folearn-server` — learning-as-a-service for FO-ERM.
//!
//! A small daemon that serves the workspace's learners over TCP with a
//! newline-delimited JSON protocol (hand-rolled codec; the build is
//! offline and the workspace has no serde):
//!
//! * [`proto`] — wire format: framing, the [`proto::Json`] value type,
//!   request/response envelopes, FNV-1a content hashing;
//! * [`server`] — the daemon: structure registry, bounded worker pool
//!   dispatch, sharded LRU result cache, metrics, graceful shutdown,
//!   with two service cores (nonblocking event loop by default, the
//!   thread-per-connection baseline behind [`server::CoreMode`]);
//! * [`event_loop`] — the nonblocking readiness shards: per-connection
//!   read/write buffers, pipelined frame decoding, ordered response
//!   slots completed from worker-pool callbacks;
//! * [`client`] — a blocking typed client, with optional deadlines
//!   ([`client::ClientConfig`]) and a retrying wrapper
//!   ([`client::RetryingClient`]) that reconnects and re-sends under a
//!   deterministic backoff policy;
//! * [`wal`] / [`snapshot`] — durable state behind `serve --data-dir`:
//!   an append-only fsync'd write-ahead log of registry/hypothesis
//!   mutations with periodic compacted snapshots, replayed on startup
//!   into bit-identical pre-crash state;
//! * [`chaos`] — a deterministic fault-injection proxy (drop / delay /
//!   truncate / garble / reset frames under a seeded RNG; experiment
//!   E19);
//! * [`cache`], [`metrics`], [`pool`] — the daemon's moving parts,
//!   exposed for reuse and testing;
//! * [`loadgen`] — a deterministic load generator (experiment E17 and
//!   the `folearn loadgen` subcommand).
//!
//! # Why a server?
//!
//! The ERM oracle of the hardness reduction (Lemma 7) is exactly a
//! request/response interface: the reduction asks "solve this training
//! sequence on this structure" many times, often repeating instances
//! across levels. Serving that interface over a socket (a) makes the
//! oracle a process boundary, so learners can run on a different
//! machine or with different resource limits than the reduction, and
//! (b) makes repeated instances visible to a result cache keyed by
//! `(structure, sample, solver config)` — and because the brute-force
//! engine is deterministic, cached answers are *identical* to fresh
//! ones, so `folearn_hardness::oracle::RemoteOracle` against a loopback
//! daemon reproduces the in-process reduction bit for bit.

pub mod cache;
pub mod chaos;
pub mod client;
pub mod event_loop;
pub mod framing;
pub mod loadgen;
pub mod metrics;
pub mod pool;
pub mod proto;
pub mod server;
pub mod snapshot;
pub mod wal;

pub use chaos::{ChaosConfig, ChaosProxy, Direction, FaultKind};
pub use client::{
    Client, ClientApi, ClientConfig, ClientError, RetryPolicy, RetryingClient, TransportStats,
};
pub use loadgen::{run_load, run_load_multi, LoadgenConfig, LoadReport};
pub use proto::{
    fnv1a64, hex64, parse_hex64, Json, ProtoError, Request, Response, SolveOutcome, SolverSpec,
    TraceContext, WireBinding, WireExample, WireHypothesis, WireProvenance,
};
pub use server::{start, CoreMode, ServerConfig, ServerHandle};
