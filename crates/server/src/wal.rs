//! The append-only write-ahead log: length-prefixed, checksummed
//! record frames on disk.
//!
//! One frame is `[len: u32 LE][checksum: u64 LE][payload: len bytes]`
//! where the checksum is FNV-1a over the payload — the same hash that
//! content-addresses structures on the wire, so the whole durability
//! story leans on one primitive. Frames are appended and fsync'd one
//! mutation at a time; nothing in the format is ever updated in place.
//!
//! Crash tolerance is the classic WAL contract: a crash mid-append
//! leaves at most one *torn* frame at the tail (short header, short
//! payload, or checksum mismatch). [`read_log`] scans frames until the
//! first tear, returns the records of the valid prefix plus the byte
//! length of that prefix, and the opener truncates the file there —
//! every byte-length prefix of a valid log recovers cleanly (asserted
//! exhaustively by the truncation-sweep test in `tests/wal_prop.rs`).
//!
//! What goes *inside* the frames (protocol-JSON mutation records,
//! snapshot compaction) is [`crate::snapshot`]'s business; this module
//! only knows about bytes.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::proto::fnv1a64;

/// Bytes of frame header: 4-byte length + 8-byte checksum.
pub const HEADER_LEN: usize = 12;

/// Upper bound on a single record payload. A length field above this is
/// treated as a torn/corrupt frame rather than an allocation request —
/// real records (a graph text or one solve request) are far smaller.
pub const MAX_RECORD_BYTES: usize = 64 * 1024 * 1024;

/// Encode one payload as a wire frame (header + payload).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// The result of scanning a log file.
pub struct LogRead {
    /// Payloads of every intact frame, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the valid prefix (where the opener truncates).
    pub valid_len: u64,
    /// Whether bytes past `valid_len` existed — a torn tail.
    pub torn: bool,
}

/// Scan `path` frame by frame, stopping at the first torn or corrupt
/// frame. A missing file reads as an empty, untorn log.
pub fn read_log(path: &Path) -> io::Result<LogRead> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let mut records = Vec::new();
    let mut at = 0usize;
    while let Some(header) = buf.get(at..at + HEADER_LEN) {
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let want = u64::from_le_bytes(header[4..].try_into().expect("8 bytes"));
        if len > MAX_RECORD_BYTES {
            break;
        }
        let Some(payload) = buf.get(at + HEADER_LEN..at + HEADER_LEN + len) else {
            break;
        };
        if fnv1a64(payload) != want {
            break;
        }
        records.push(payload.to_vec());
        at += HEADER_LEN + len;
    }
    Ok(LogRead {
        records,
        valid_len: at as u64,
        torn: at < buf.len(),
    })
}

/// An open log file accepting fsync'd appends.
pub struct Wal {
    path: PathBuf,
    file: File,
}

impl Wal {
    /// Open `path` for appending, truncating it to `valid_len` first —
    /// the byte length [`read_log`] validated — so a torn tail from a
    /// previous crash is physically removed before new frames land.
    pub fn open(path: &Path, valid_len: u64) -> io::Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        file.set_len(valid_len)?;
        file.sync_data()?;
        let mut this = Self {
            path: path.to_path_buf(),
            file,
        };
        this.file.seek_to_end()?;
        Ok(this)
    }

    /// Append one record frame and fsync it. When this returns, the
    /// record survives `kill -9` and power loss.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        self.file.write_all(&encode_frame(payload))?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Truncate the log to empty (after its contents were folded into a
    /// snapshot) and make the truncation durable.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.file.seek_to_end()?;
        Ok(())
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Tiny extension so `Wal` can position at the tail without importing
/// `Seek` at every call site.
trait SeekToEnd {
    fn seek_to_end(&mut self) -> io::Result<u64>;
}

impl SeekToEnd for File {
    fn seek_to_end(&mut self) -> io::Result<u64> {
        use std::io::Seek;
        self.seek(io::SeekFrom::End(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "folearn-wal-{name}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    #[test]
    fn records_round_trip_in_order() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let payloads: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"one".to_vec(),
            vec![0u8; 1000],
            "graph: å∀x".as_bytes().to_vec(),
        ];
        {
            let mut wal = Wal::open(&path, 0).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
            }
        }
        let read = read_log(&path).unwrap();
        assert_eq!(read.records, payloads);
        assert!(!read.torn);
    }

    #[test]
    fn missing_file_reads_empty() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        let read = read_log(&path).unwrap();
        assert!(read.records.is_empty());
        assert_eq!(read.valid_len, 0);
        assert!(!read.torn);
    }

    #[test]
    fn every_byte_prefix_recovers_the_valid_frames() {
        let path = tmp("prefix");
        let _ = std::fs::remove_file(&path);
        let payloads = [&b"alpha"[..], &b"beta"[..], &b"gamma-gamma"[..]];
        {
            let mut wal = Wal::open(&path, 0).unwrap();
            for p in payloads {
                wal.append(p).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        let frame_ends: Vec<usize> = payloads
            .iter()
            .scan(0usize, |at, p| {
                *at += HEADER_LEN + p.len();
                Some(*at)
            })
            .collect();
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let read = read_log(&path).unwrap();
            let intact = frame_ends.iter().filter(|&&e| e <= cut).count();
            let valid = if intact == 0 { 0 } else { frame_ends[intact - 1] };
            assert_eq!(read.records.len(), intact, "cut at {cut}");
            assert_eq!(read.valid_len, valid as u64, "cut at {cut}");
            assert_eq!(read.torn, cut > valid, "torn flag wrong at cut {cut}");
            for (i, r) in read.records.iter().enumerate() {
                assert_eq!(r.as_slice(), payloads[i]);
            }
        }
    }

    #[test]
    fn corrupt_checksum_truncates_there() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, 0).unwrap();
            wal.append(b"good").unwrap();
            wal.append(b"mangled").unwrap();
            wal.append(b"unreachable").unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the second frame.
        let second_payload_at = HEADER_LEN + 4 + HEADER_LEN;
        bytes[second_payload_at] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let read = read_log(&path).unwrap();
        assert_eq!(read.records, vec![b"good".to_vec()]);
        assert!(read.torn);
        assert_eq!(read.valid_len, (HEADER_LEN + 4) as u64);
        // Re-opening at the valid length drops the damage and appends work.
        let mut wal = Wal::open(&path, read.valid_len).unwrap();
        wal.append(b"after").unwrap();
        let read = read_log(&path).unwrap();
        assert_eq!(read.records, vec![b"good".to_vec(), b"after".to_vec()]);
        assert!(!read.torn);
    }

    #[test]
    fn oversize_length_field_is_a_tear_not_an_allocation() {
        let path = tmp("oversize");
        let mut frame = encode_frame(b"x");
        frame[..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        std::fs::write(&path, &frame).unwrap();
        let read = read_log(&path).unwrap();
        assert!(read.records.is_empty());
        assert!(read.torn);
    }
}
