//! The wire protocol: typed request/response messages over the shared
//! JSON value tree, one message per line.
//!
//! The JSON codec itself lives in `folearn_obs::json` (re-exported here
//! as [`Json`]): an order-preserving value tree whose compact renderer
//! never emits a raw newline, so one message always occupies exactly one
//! line and the framing is trivial — write `render() + "\n"`, read with
//! `read_line`. The same tree backs the bench suite's JSON report
//! writers (`folearn_bench::write_json_file`) and the trace exporters,
//! keeping `BENCH_*.json` files and trace JSONL format-consistent with
//! the wire.
//!
//! Numbers are `f64`; 64-bit identifiers (structure hashes) do not fit
//! `f64` losslessly and therefore travel as fixed-width hex strings.

use folearn::fit::TypeMode;
use folearn_logic::vm::EvalEngine;

pub use folearn_obs::json::{Json, JsonError};

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

/// 64-bit FNV-1a — the content hash used to address registered
/// structures and to key the result cache.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Render a 64-bit id as the fixed-width hex string used on the wire.
pub fn hex64(x: u64) -> String {
    format!("{x:016x}")
}

/// Parse a [`hex64`] string. The error names the offending token so a
/// bad id buried in a large message can be located from the message
/// alone.
pub fn parse_hex64(s: &str) -> Result<u64, ProtoError> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(ProtoError::new(format!(
            "bad 64-bit hex id {s:?} (want exactly 16 hex digits)"
        )));
    }
    u64::from_str_radix(s, 16).map_err(|e| ProtoError::new(format!("bad hex id {s:?}: {e}")))
}

/// A protocol error: malformed JSON, a malformed message, or a message
/// that does not fit the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl ProtoError {
    fn new(msg: impl Into<String>) -> Self {
        ProtoError(msg.into())
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ProtoError {}

impl From<JsonError> for ProtoError {
    fn from(e: JsonError) -> Self {
        ProtoError(e.0)
    }
}

// ---------------------------------------------------------------------------
// Typed messages
// ---------------------------------------------------------------------------

/// One labelled example on the wire (vertex indices; arity = tuple
/// length, constant across a request).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireExample {
    /// Vertex indices of the tuple.
    pub tuple: Vec<u32>,
    /// The Boolean label.
    pub label: bool,
}

/// Which solver a `solve` request runs.
#[derive(Clone, Debug, PartialEq)]
pub enum SolverSpec {
    /// Brute-force ERM (Proposition 11) with engine knobs.
    Brute {
        /// Type notion (`TypeMode` string form: `global`, `local=R`, …).
        mode: TypeMode,
        /// Worker threads (`null` inherits the server's pool share).
        threads: Option<usize>,
        /// Shared-bound pruning.
        prune: bool,
        /// Formula-evaluation backend (`tree` or `vm`). Part of the
        /// canonical form, so it enters the solve-cache key: a `vm`
        /// solve is never answered from a `tree` cache entry.
        engine: EvalEngine,
    },
    /// The nowhere-dense learner (Theorem 13) with its default config.
    Nd,
}

impl SolverSpec {
    /// The default solver: global types, pool-share threads, pruning on
    /// — the configuration whose answers are bit-identical to the
    /// in-process `BruteForceOracle`.
    pub fn default_brute() -> Self {
        SolverSpec::Brute {
            mode: TypeMode::Global,
            threads: None,
            prune: true,
            engine: EvalEngine::TreeWalk,
        }
    }

    /// Render as protocol JSON (also the canonical form hashed into
    /// solve-cache keys).
    pub fn to_json(&self) -> Json {
        match self {
            SolverSpec::Brute {
                mode,
                threads,
                prune,
                engine,
            } => Json::obj([
                ("name", Json::str("brute")),
                ("mode", Json::str(mode.to_string())),
                (
                    "threads",
                    threads.map_or(Json::Null, Json::int),
                ),
                ("prune", Json::Bool(*prune)),
                ("engine", Json::str(engine.name())),
            ]),
            SolverSpec::Nd => Json::obj([("name", Json::str("nd"))]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, ProtoError> {
        match get_str(v, "name")? {
            "brute" => Ok(SolverSpec::Brute {
                mode: get_str(v, "mode")?
                    .parse()
                    .map_err(ProtoError::new)?,
                threads: match v.get("threads") {
                    None | Some(Json::Null) => None,
                    Some(t) => Some(t.as_usize().ok_or_else(|| {
                        ProtoError::new("solver.threads must be a non-negative integer")
                    })?),
                },
                prune: get_bool(v, "prune")?,
                engine: parse_engine(v)?,
            }),
            "nd" => Ok(SolverSpec::Nd),
            other => Err(ProtoError::new(format!("unknown solver {other:?}"))),
        }
    }
}

/// Parse an optional `engine` field; messages from older clients omit it
/// and get the tree-walker.
fn parse_engine(v: &Json) -> Result<EvalEngine, ProtoError> {
    match v.get("engine") {
        None | Some(Json::Null) => Ok(EvalEngine::TreeWalk),
        Some(e) => e
            .as_str()
            .ok_or_else(|| ProtoError::new("engine must be a string"))?
            .parse()
            .map_err(ProtoError::new),
    }
}

/// Distributed-trace context on a request envelope: the trace id and
/// the caller's span id. A daemon receiving one binds its own span
/// under the propagated parent (as `trace_id`/`parent` meta on the
/// span it returns), so the router — or any upstream — can stitch the
/// backend's subtree into its own span tree and a single
/// `folearn trace` render shows the whole cluster-side story of one
/// request. Absent from older clients; both ids travel as [`hex64`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id, shared by every span of one logical request.
    pub trace_id: u64,
    /// Span id of the caller — the parent of the span the callee opens.
    pub parent: u64,
}

impl TraceContext {
    fn to_json(self) -> Json {
        Json::obj([
            ("trace_id", Json::str(hex64(self.trace_id))),
            ("parent", Json::str(hex64(self.parent))),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ProtoError> {
        Ok(TraceContext {
            trace_id: get_hex(v, "trace_id")?,
            parent: get_hex(v, "parent")?,
        })
    }
}

/// Decode an optional trace context (absent/null from older clients).
fn get_trace(v: &Json) -> Result<Option<TraceContext>, ProtoError> {
    match v.get("trace") {
        None | Some(Json::Null) => Ok(None),
        Some(t) => Ok(Some(TraceContext::from_json(t)?)),
    }
}

fn trace_json(t: &Option<TraceContext>) -> Json {
    t.as_ref().map_or(Json::Null, |ctx| ctx.to_json())
}

/// A client request (one per line).
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness / latency-floor probe.
    Ping,
    /// Upload a structure in the `folearn_graph::io` exchange format;
    /// the server parses it and addresses it by content hash thereafter.
    Register {
        /// The graph text.
        graph_text: String,
    },
    /// Solve an FO-ERM instance against a registered structure.
    Solve {
        /// Content hash of the registered structure.
        structure: u64,
        /// The training sequence.
        examples: Vec<WireExample>,
        /// Number of parameters `ℓ`.
        ell: usize,
        /// Quantifier-rank bound `q`.
        q: usize,
        /// Additive slack `ε`.
        epsilon: f64,
        /// Which solver to run.
        solver: SolverSpec,
        /// Distributed-trace context from the caller, if any. NOT part
        /// of the solve-cache key: tracing never changes answers.
        trace: Option<TraceContext>,
    },
    /// Evaluate a stored hypothesis on tuples (optionally labelled, in
    /// which case the response reports the error rate).
    Evaluate {
        /// Content hash of the registered structure to evaluate over.
        structure: u64,
        /// Server-assigned hypothesis id (from a `solved` response).
        hypothesis: u64,
        /// Tuples to classify.
        tuples: Vec<Vec<u32>>,
        /// Optional labels, parallel to `tuples`.
        labels: Option<Vec<bool>>,
    },
    /// Model-check a sentence on a registered structure.
    ModelCheck {
        /// Content hash of the registered structure.
        structure: u64,
        /// The sentence, in `folearn_logic::parser` syntax.
        formula: String,
        /// Formula-evaluation backend (`tree` or `vm`).
        engine: EvalEngine,
        /// Distributed-trace context from the caller, if any.
        trace: Option<TraceContext>,
    },
    /// Fetch the metrics snapshot.
    Stats,
    /// Fetch the daemon's content inventory: which structures it holds
    /// and which hypotheses it has bound to them. The anti-entropy
    /// repair pass diffs this against the router's placement to re-seed
    /// only what a crashed-and-restarted backend actually lost.
    Inventory,
    /// Ask the daemon to shut down gracefully.
    Shutdown,
}

impl Request {
    /// Render as a single wire line (no trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().render()
    }

    /// Parse one wire line.
    pub fn decode(line: &str) -> Result<Self, ProtoError> {
        Self::from_json(&Json::parse(line)?)
    }

    /// The `op` tag (used for metrics bucketing).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Register { .. } => "register",
            Request::Solve { .. } => "solve",
            Request::Evaluate { .. } => "evaluate",
            Request::ModelCheck { .. } => "modelcheck",
            Request::Stats => "stats",
            Request::Inventory => "inventory",
            Request::Shutdown => "shutdown",
        }
    }

    /// The JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => Json::obj([("op", Json::str("ping"))]),
            Request::Register { graph_text } => Json::obj([
                ("op", Json::str("register")),
                ("graph", Json::str(graph_text.clone())),
            ]),
            Request::Solve {
                structure,
                examples,
                ell,
                q,
                epsilon,
                solver,
                trace,
            } => Json::obj([
                ("op", Json::str("solve")),
                ("structure", Json::str(hex64(*structure))),
                (
                    "examples",
                    Json::Arr(
                        examples
                            .iter()
                            .map(|e| {
                                Json::obj([
                                    (
                                        "tuple",
                                        Json::Arr(
                                            e.tuple
                                                .iter()
                                                .map(|&v| Json::int(v as usize))
                                                .collect(),
                                        ),
                                    ),
                                    ("label", Json::Bool(e.label)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("ell", Json::int(*ell)),
                ("q", Json::int(*q)),
                ("epsilon", Json::Num(*epsilon)),
                ("solver", solver.to_json()),
                ("trace", trace_json(trace)),
            ]),
            Request::Evaluate {
                structure,
                hypothesis,
                tuples,
                labels,
            } => Json::obj([
                ("op", Json::str("evaluate")),
                ("structure", Json::str(hex64(*structure))),
                ("hypothesis", Json::str(hex64(*hypothesis))),
                (
                    "tuples",
                    Json::Arr(
                        tuples
                            .iter()
                            .map(|t| {
                                Json::Arr(
                                    t.iter().map(|&v| Json::int(v as usize)).collect(),
                                )
                            })
                            .collect(),
                    ),
                ),
                (
                    "labels",
                    match labels {
                        None => Json::Null,
                        Some(ls) => Json::Arr(ls.iter().map(|&b| Json::Bool(b)).collect()),
                    },
                ),
            ]),
            Request::ModelCheck {
                structure,
                formula,
                engine,
                trace,
            } => Json::obj([
                ("op", Json::str("modelcheck")),
                ("structure", Json::str(hex64(*structure))),
                ("formula", Json::str(formula.clone())),
                ("engine", Json::str(engine.name())),
                ("trace", trace_json(trace)),
            ]),
            Request::Stats => Json::obj([("op", Json::str("stats"))]),
            Request::Inventory => Json::obj([("op", Json::str("inventory"))]),
            Request::Shutdown => Json::obj([("op", Json::str("shutdown"))]),
        }
    }

    /// Reconstruct from the JSON form.
    pub fn from_json(v: &Json) -> Result<Self, ProtoError> {
        match get_str(v, "op")? {
            "ping" => Ok(Request::Ping),
            "register" => Ok(Request::Register {
                graph_text: get_str(v, "graph")?.to_string(),
            }),
            "solve" => {
                let examples = v
                    .get("examples")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError::new("solve.examples must be an array"))?
                    .iter()
                    .map(|e| {
                        Ok(WireExample {
                            tuple: get_u32_arr(e, "tuple")?,
                            label: get_bool(e, "label")?,
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                Ok(Request::Solve {
                    structure: get_hex(v, "structure")?,
                    examples,
                    ell: get_usize(v, "ell")?,
                    q: get_usize(v, "q")?,
                    epsilon: v
                        .get("epsilon")
                        .and_then(Json::as_num)
                        .ok_or_else(|| ProtoError::new("solve.epsilon must be a number"))?,
                    solver: SolverSpec::from_json(
                        v.get("solver")
                            .ok_or_else(|| ProtoError::new("solve.solver missing"))?,
                    )?,
                    trace: get_trace(v)?,
                })
            }
            "evaluate" => {
                let tuples = v
                    .get("tuples")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError::new("evaluate.tuples must be an array"))?
                    .iter()
                    .map(|t| u32_arr(t, "evaluate.tuples"))
                    .collect::<Result<Vec<_>, ProtoError>>()?;
                let labels = match v.get("labels") {
                    None | Some(Json::Null) => None,
                    Some(ls) => Some(
                        ls.as_arr()
                            .ok_or_else(|| {
                                ProtoError::new("evaluate.labels must be an array")
                            })?
                            .iter()
                            .map(|b| {
                                b.as_bool().ok_or_else(|| {
                                    ProtoError::new("evaluate.labels must hold booleans")
                                })
                            })
                            .collect::<Result<Vec<_>, ProtoError>>()?,
                    ),
                };
                Ok(Request::Evaluate {
                    structure: get_hex(v, "structure")?,
                    hypothesis: get_hex(v, "hypothesis")?,
                    tuples,
                    labels,
                })
            }
            "modelcheck" => Ok(Request::ModelCheck {
                structure: get_hex(v, "structure")?,
                formula: get_str(v, "formula")?.to_string(),
                engine: parse_engine(v)?,
                trace: get_trace(v)?,
            }),
            "stats" => Ok(Request::Stats),
            "inventory" => Ok(Request::Inventory),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtoError::new(format!("unknown op {other:?}"))),
        }
    }
}

/// The solved payload: a full `SolveReport` plus the server-side
/// hypothesis handle.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveOutcome {
    /// Whether the answer came from the result cache.
    pub cached: bool,
    /// Training error achieved.
    pub error: f64,
    /// Solver work measure (`evaluated + pruned` for brute force).
    pub work: usize,
    /// Parameter tuples tallied to completion.
    pub evaluated: usize,
    /// Parameter tuples pruned mid-tally.
    pub pruned: usize,
    /// Solver name (as in `SolveReport::solver_name`).
    pub solver: String,
    /// The learned hypothesis.
    pub hypothesis: WireHypothesis,
    /// Learner-level span tree for this solve (the `folearn_obs` export
    /// form), when the server captured one. Cached answers replay the
    /// trace of the run that populated the cache, so repeat solves stay
    /// bit-identical modulo the `cached` flag.
    pub trace: Option<Json>,
    /// Which cluster node answered (router-attached; `None` from a plain
    /// server).
    pub provenance: Option<WireProvenance>,
}

/// A learned hypothesis on the wire. The `types` ids are relative to the
/// server's per-vocabulary arena: stable across calls within one server
/// lifetime (so clients can group equal answers), meaningless elsewhere.
/// The `type_keys` are the *canonical* content hashes of the same types
/// (`folearn_types::canon`): backend-independent, so a client talking to
/// a cluster can recognise the same hypothesis regardless of which
/// replica answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireHypothesis {
    /// Server-assigned id for follow-up `evaluate` calls.
    pub id: u64,
    /// The parameter tuple `w̄`.
    pub params: Vec<u32>,
    /// Quantifier rank of the type layer.
    pub q: usize,
    /// Type mode string (`TypeMode` display form).
    pub mode: String,
    /// Positive type ids in the server's arena, sorted.
    pub types: Vec<u32>,
    /// Canonical (arena-independent) keys of the positive types, sorted.
    /// Empty when the message came from a pre-cluster server.
    pub type_keys: Vec<u64>,
    /// Human-readable summary (`Hypothesis::describe`).
    pub describe: String,
}

impl WireHypothesis {
    fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::str(hex64(self.id))),
            (
                "params",
                Json::Arr(self.params.iter().map(|&v| Json::int(v as usize)).collect()),
            ),
            ("q", Json::int(self.q)),
            ("mode", Json::str(self.mode.clone())),
            (
                "types",
                Json::Arr(self.types.iter().map(|&t| Json::int(t as usize)).collect()),
            ),
            (
                "type_keys",
                Json::Arr(self.type_keys.iter().map(|&k| Json::str(hex64(k))).collect()),
            ),
            ("describe", Json::str(self.describe.clone())),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ProtoError> {
        Ok(WireHypothesis {
            id: get_hex(v, "id")?,
            params: get_u32_arr(v, "params")?,
            q: get_usize(v, "q")?,
            mode: get_str(v, "mode")?.to_string(),
            types: get_u32_arr(v, "types")?,
            type_keys: get_hex_arr_opt(v, "type_keys")?,
            describe: get_str(v, "describe")?.to_string(),
        })
    }
}

/// Where a reply actually came from, attached by the cluster router so
/// clients (and the bench suite) can audit hedging and failover. Plain
/// servers never emit it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireProvenance {
    /// Backend address that produced the winning reply.
    pub backend: String,
    /// Replica rank of that backend for the structure (0 = primary).
    pub replica: usize,
    /// Whether the winning reply came from a hedge request.
    pub hedged: bool,
}

impl WireProvenance {
    fn to_json(&self) -> Json {
        Json::obj([
            ("backend", Json::str(self.backend.clone())),
            ("replica", Json::int(self.replica)),
            ("hedged", Json::Bool(self.hedged)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ProtoError> {
        Ok(WireProvenance {
            backend: get_str(v, "backend")?.to_string(),
            replica: get_usize(v, "replica")?,
            hedged: get_bool(v, "hedged")?,
        })
    }
}

/// One hypothesis binding in an `inventory` reply: the server-assigned
/// id and the content hash of the structure it was learned on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireBinding {
    /// Server-assigned hypothesis id.
    pub id: u64,
    /// Content hash of the structure the hypothesis lives on.
    pub structure: u64,
}

impl WireBinding {
    fn to_json(self) -> Json {
        Json::obj([
            ("id", Json::str(hex64(self.id))),
            ("structure", Json::str(hex64(self.structure))),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ProtoError> {
        Ok(WireBinding {
            id: get_hex(v, "id")?,
            structure: get_hex(v, "structure")?,
        })
    }
}

/// Decode an optional provenance field (absent/null from plain servers).
fn get_provenance(v: &Json) -> Result<Option<WireProvenance>, ProtoError> {
    match v.get("provenance") {
        None | Some(Json::Null) => Ok(None),
        Some(p) => Ok(Some(WireProvenance::from_json(p)?)),
    }
}

fn provenance_json(p: &Option<WireProvenance>) -> Json {
    p.as_ref().map_or(Json::Null, WireProvenance::to_json)
}

/// A server response (one per line).
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to `ping`.
    Pong,
    /// Reply to `register`.
    Registered {
        /// Content hash — the structure's address from now on.
        structure: u64,
        /// Vertex count of the parsed structure.
        vertices: usize,
        /// Edge count.
        edges: usize,
        /// `false` if the structure was already registered.
        fresh: bool,
        /// Backend addresses now holding a replica (router-attached ack;
        /// `None` from a plain server).
        replicas: Option<Vec<String>>,
    },
    /// Reply to `solve`.
    Solved(SolveOutcome),
    /// Reply to `evaluate`.
    Predictions {
        /// Predicted labels, parallel to the request tuples.
        labels: Vec<bool>,
        /// Error rate against the provided labels, if any were given.
        error: Option<f64>,
        /// Which cluster node answered (router-attached).
        provenance: Option<WireProvenance>,
    },
    /// Reply to `modelcheck`.
    Truth {
        /// Whether the structure models the sentence.
        holds: bool,
        /// Which cluster node answered (router-attached).
        provenance: Option<WireProvenance>,
    },
    /// Reply to `stats` (free-form metrics object).
    Stats {
        /// The metrics snapshot.
        data: Json,
    },
    /// Reply to `inventory`: everything this daemon is holding, by
    /// content hash. Both lists are sorted so two inventories compare
    /// byte-for-byte.
    Inventory {
        /// Content hashes of registered structures, sorted.
        structures: Vec<u64>,
        /// Hypothesis bindings `(id, structure)`, sorted by id.
        hypotheses: Vec<WireBinding>,
    },
    /// Any request-level failure.
    Error {
        /// What went wrong.
        message: String,
        /// Machine-readable error class (e.g. `"unknown_structure"`),
        /// when the sender classified the failure. Plain-string errors
        /// from older servers decode with `None`.
        code: Option<String>,
    },
    /// Connection is closing (graceful shutdown or request limit).
    Bye {
        /// Why.
        reason: String,
    },
}

impl Response {
    /// An error response with no machine-readable class.
    pub fn error(message: impl Into<String>) -> Self {
        Response::Error {
            message: message.into(),
            code: None,
        }
    }

    /// An error response carrying a machine-readable class.
    pub fn error_coded(code: impl Into<String>, message: impl Into<String>) -> Self {
        Response::Error {
            message: message.into(),
            code: Some(code.into()),
        }
    }

    /// Render as a single wire line (no trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().render()
    }

    /// Parse one wire line.
    pub fn decode(line: &str) -> Result<Self, ProtoError> {
        Self::from_json(&Json::parse(line)?)
    }

    /// The JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Pong => Json::obj([("resp", Json::str("pong"))]),
            Response::Registered {
                structure,
                vertices,
                edges,
                fresh,
                replicas,
            } => Json::obj([
                ("resp", Json::str("registered")),
                ("structure", Json::str(hex64(*structure))),
                ("vertices", Json::int(*vertices)),
                ("edges", Json::int(*edges)),
                ("fresh", Json::Bool(*fresh)),
                (
                    "replicas",
                    match replicas {
                        None => Json::Null,
                        Some(rs) => {
                            Json::Arr(rs.iter().map(|r| Json::str(r.clone())).collect())
                        }
                    },
                ),
            ]),
            Response::Solved(o) => Json::obj([
                ("resp", Json::str("solved")),
                ("cached", Json::Bool(o.cached)),
                ("error", Json::Num(o.error)),
                ("work", Json::int(o.work)),
                ("evaluated", Json::int(o.evaluated)),
                ("pruned", Json::int(o.pruned)),
                ("solver", Json::str(o.solver.clone())),
                ("hypothesis", o.hypothesis.to_json()),
                ("trace", o.trace.clone().unwrap_or(Json::Null)),
                ("provenance", provenance_json(&o.provenance)),
            ]),
            Response::Predictions {
                labels,
                error,
                provenance,
            } => Json::obj([
                ("resp", Json::str("predictions")),
                (
                    "labels",
                    Json::Arr(labels.iter().map(|&b| Json::Bool(b)).collect()),
                ),
                ("error", error.map_or(Json::Null, Json::Num)),
                ("provenance", provenance_json(provenance)),
            ]),
            Response::Truth { holds, provenance } => Json::obj([
                ("resp", Json::str("truth")),
                ("holds", Json::Bool(*holds)),
                ("provenance", provenance_json(provenance)),
            ]),
            Response::Stats { data } => Json::obj([
                ("resp", Json::str("stats")),
                ("data", data.clone()),
            ]),
            Response::Inventory {
                structures,
                hypotheses,
            } => Json::obj([
                ("resp", Json::str("inventory")),
                (
                    "structures",
                    Json::Arr(structures.iter().map(|&s| Json::str(hex64(s))).collect()),
                ),
                (
                    "hypotheses",
                    Json::Arr(hypotheses.iter().map(|b| b.to_json()).collect()),
                ),
            ]),
            Response::Error { message, code } => Json::obj([
                ("resp", Json::str("error")),
                ("message", Json::str(message.clone())),
                (
                    "code",
                    code.as_ref().map_or(Json::Null, |c| Json::str(c.clone())),
                ),
            ]),
            Response::Bye { reason } => Json::obj([
                ("resp", Json::str("bye")),
                ("reason", Json::str(reason.clone())),
            ]),
        }
    }

    /// Reconstruct from the JSON form.
    pub fn from_json(v: &Json) -> Result<Self, ProtoError> {
        match get_str(v, "resp")? {
            "pong" => Ok(Response::Pong),
            "registered" => Ok(Response::Registered {
                structure: get_hex(v, "structure")?,
                vertices: get_usize(v, "vertices")?,
                edges: get_usize(v, "edges")?,
                fresh: get_bool(v, "fresh")?,
                replicas: match v.get("replicas") {
                    None | Some(Json::Null) => None,
                    Some(rs) => Some(
                        rs.as_arr()
                            .ok_or_else(|| {
                                ProtoError::new("registered.replicas must be an array")
                            })?
                            .iter()
                            .map(|r| {
                                r.as_str().map(str::to_string).ok_or_else(|| {
                                    ProtoError::new("registered.replicas must hold strings")
                                })
                            })
                            .collect::<Result<Vec<_>, ProtoError>>()?,
                    ),
                },
            }),
            "solved" => Ok(Response::Solved(SolveOutcome {
                cached: get_bool(v, "cached")?,
                error: v
                    .get("error")
                    .and_then(Json::as_num)
                    .ok_or_else(|| ProtoError::new("solved.error must be a number"))?,
                work: get_usize(v, "work")?,
                evaluated: get_usize(v, "evaluated")?,
                pruned: get_usize(v, "pruned")?,
                solver: get_str(v, "solver")?.to_string(),
                hypothesis: WireHypothesis::from_json(
                    v.get("hypothesis")
                        .ok_or_else(|| ProtoError::new("solved.hypothesis missing"))?,
                )?,
                trace: match v.get("trace") {
                    None | Some(Json::Null) => None,
                    Some(t) => Some(t.clone()),
                },
                provenance: get_provenance(v)?,
            })),
            "predictions" => Ok(Response::Predictions {
                labels: v
                    .get("labels")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError::new("predictions.labels must be an array"))?
                    .iter()
                    .map(|b| {
                        b.as_bool().ok_or_else(|| {
                            ProtoError::new("predictions.labels must hold booleans")
                        })
                    })
                    .collect::<Result<Vec<_>, ProtoError>>()?,
                error: match v.get("error") {
                    None | Some(Json::Null) => None,
                    Some(e) => Some(e.as_num().ok_or_else(|| {
                        ProtoError::new("predictions.error must be a number or null")
                    })?),
                },
                provenance: get_provenance(v)?,
            }),
            "truth" => Ok(Response::Truth {
                holds: get_bool(v, "holds")?,
                provenance: get_provenance(v)?,
            }),
            "stats" => Ok(Response::Stats {
                data: v
                    .get("data")
                    .cloned()
                    .ok_or_else(|| ProtoError::new("stats.data missing"))?,
            }),
            "inventory" => Ok(Response::Inventory {
                structures: get_hex_arr_opt(v, "structures")?,
                hypotheses: v
                    .get("hypotheses")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| ProtoError::new("inventory.hypotheses must be an array"))?
                    .iter()
                    .map(WireBinding::from_json)
                    .collect::<Result<Vec<_>, ProtoError>>()?,
            }),
            "error" => Ok(Response::Error {
                message: get_str(v, "message")?.to_string(),
                code: match v.get("code") {
                    None | Some(Json::Null) => None,
                    Some(c) => Some(
                        c.as_str()
                            .ok_or_else(|| {
                                ProtoError::new("error.code must be a string or null")
                            })?
                            .to_string(),
                    ),
                },
            }),
            "bye" => Ok(Response::Bye {
                reason: get_str(v, "reason")?.to_string(),
            }),
            other => Err(ProtoError::new(format!("unknown resp {other:?}"))),
        }
    }
}

// -- field accessors --------------------------------------------------------

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, ProtoError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ProtoError::new(format!("field {key:?} must be a string")))
}

fn get_bool(v: &Json, key: &str) -> Result<bool, ProtoError> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| ProtoError::new(format!("field {key:?} must be a boolean")))
}

fn get_usize(v: &Json, key: &str) -> Result<usize, ProtoError> {
    v.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| ProtoError::new(format!("field {key:?} must be a non-negative integer")))
}

fn get_hex(v: &Json, key: &str) -> Result<u64, ProtoError> {
    parse_hex64(get_str(v, key)?).map_err(|e| ProtoError::new(format!("field {key:?}: {e}")))
}

fn u32_arr(v: &Json, what: &str) -> Result<Vec<u32>, ProtoError> {
    v.as_arr()
        .ok_or_else(|| ProtoError::new(format!("{what} must be an array")))?
        .iter()
        .map(|x| {
            x.as_usize()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| ProtoError::new(format!("{what} must hold u32 values")))
        })
        .collect()
}

/// An optional array of [`hex64`] ids; absent/null decodes as empty (the
/// pre-cluster wire form).
fn get_hex_arr_opt(v: &Json, key: &str) -> Result<Vec<u64>, ProtoError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(Vec::new()),
        Some(a) => a
            .as_arr()
            .ok_or_else(|| ProtoError::new(format!("field {key:?} must be an array")))?
            .iter()
            .map(|x| {
                x.as_str()
                    .ok_or_else(|| ProtoError::new(format!("field {key:?} must hold hex ids")))
                    .and_then(|s| {
                        parse_hex64(s)
                            .map_err(|e| ProtoError::new(format!("field {key:?}: {e}")))
                    })
            })
            .collect(),
    }
}

fn get_u32_arr(v: &Json, key: &str) -> Result<Vec<u32>, ProtoError> {
    u32_arr(
        v.get(key)
            .ok_or_else(|| ProtoError::new(format!("field {key:?} missing")))?,
        key,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_ids_round_trip() {
        for x in [0u64, 1, u64::MAX, 0xdead_beef_0123_4567] {
            assert_eq!(parse_hex64(&hex64(x)).unwrap(), x);
        }
        assert!(parse_hex64("123").is_err());
        assert!(parse_hex64("zzzzzzzzzzzzzzzz").is_err());
    }

    #[test]
    fn fnv_is_stable_and_discriminating() {
        assert_ne!(fnv1a64(b"vertices 3"), fnv1a64(b"vertices 4"));
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Register {
                graph_text: "colors Röd \"Blå\"\nvertices 2\nedge 0 1\n".to_string(),
            },
            Request::Solve {
                structure: 0xabcd_ef01_2345_6789,
                examples: vec![
                    WireExample {
                        tuple: vec![0, 3],
                        label: true,
                    },
                    WireExample {
                        tuple: vec![1, 1],
                        label: false,
                    },
                ],
                ell: 2,
                q: 1,
                epsilon: 0.25,
                solver: SolverSpec::Brute {
                    mode: TypeMode::Local { r: 2 },
                    threads: Some(4),
                    prune: true,
                    engine: EvalEngine::Vm,
                },
                trace: Some(TraceContext {
                    trace_id: 0x1234_5678_9abc_def0,
                    parent: u64::MAX,
                }),
            },
            Request::Solve {
                structure: 7,
                examples: vec![],
                ell: 0,
                q: 0,
                epsilon: 1.0 / 3.0,
                solver: SolverSpec::Nd,
                trace: None,
            },
            Request::Evaluate {
                structure: 1,
                hypothesis: u64::MAX,
                tuples: vec![vec![0], vec![5]],
                labels: Some(vec![true, false]),
            },
            Request::Evaluate {
                structure: 1,
                hypothesis: 2,
                tuples: vec![],
                labels: None,
            },
            Request::ModelCheck {
                structure: 42,
                formula: "exists x0. \"Red\"(x0)\n∧ weird".to_string(),
                engine: EvalEngine::Vm,
                trace: Some(TraceContext {
                    trace_id: 1,
                    parent: 0,
                }),
            },
            Request::Stats,
            Request::Inventory,
            Request::Shutdown,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::Registered {
                structure: 99,
                vertices: 8,
                edges: 7,
                fresh: false,
                replicas: None,
            },
            Response::Registered {
                structure: 100,
                vertices: 1,
                edges: 0,
                fresh: true,
                replicas: Some(vec![
                    "127.0.0.1:4100".to_string(),
                    "127.0.0.1:4101".to_string(),
                ]),
            },
            Response::Solved(SolveOutcome {
                cached: true,
                error: 0.125,
                work: 1024,
                evaluated: 25,
                pruned: 999,
                solver: "brute-force (Prop 11)".to_string(),
                hypothesis: WireHypothesis {
                    id: 3,
                    params: vec![7, 0],
                    q: 1,
                    mode: "local=2".to_string(),
                    types: vec![0, 4, 9],
                    type_keys: vec![1, 0xdead_beef_cafe_f00d, u64::MAX],
                    describe: "Hypothesis(3 positive types, params=[V(7)], …)".to_string(),
                },
                trace: Some(Json::obj([
                    ("span", Json::str("server.solve")),
                    ("ns", Json::int(123_456)),
                    (
                        "counters",
                        Json::obj([("evaluated_params", Json::int(25))]),
                    ),
                ])),
                provenance: Some(WireProvenance {
                    backend: "127.0.0.1:4101".to_string(),
                    replica: 1,
                    hedged: true,
                }),
            }),
            Response::Solved(SolveOutcome {
                cached: false,
                error: 0.0,
                work: 1,
                evaluated: 1,
                pruned: 0,
                solver: "nd (Thm 13)".to_string(),
                hypothesis: WireHypothesis {
                    id: 4,
                    params: vec![],
                    q: 0,
                    mode: "global".to_string(),
                    types: vec![],
                    type_keys: vec![],
                    describe: "trivial".to_string(),
                },
                trace: None,
                provenance: None,
            }),
            Response::Predictions {
                labels: vec![true, false, true],
                error: Some(1.0 / 3.0),
                provenance: Some(WireProvenance {
                    backend: "127.0.0.1:4100".to_string(),
                    replica: 0,
                    hedged: false,
                }),
            },
            Response::Predictions {
                labels: vec![],
                error: None,
                provenance: None,
            },
            Response::Truth {
                holds: true,
                provenance: None,
            },
            Response::Stats {
                data: Json::obj([
                    ("requests", Json::int(12)),
                    ("hit_rate", Json::Num(0.75)),
                ]),
            },
            Response::Inventory {
                structures: vec![7, 0xdead_beef_0000_0001, u64::MAX],
                hypotheses: vec![
                    WireBinding {
                        id: 1,
                        structure: 7,
                    },
                    WireBinding {
                        id: 2,
                        structure: u64::MAX,
                    },
                ],
            },
            Response::Inventory {
                structures: vec![],
                hypotheses: vec![],
            },
            Response::Error {
                message: "line 2: unknown colour \"Grün\"\nsecond line".to_string(),
                code: None,
            },
            Response::error_coded("unknown_structure", "unknown structure 00000000000000ff"),
            Response::Bye {
                reason: "request limit".to_string(),
            },
        ]
    }

    #[test]
    fn every_request_variant_round_trips() {
        for req in sample_requests() {
            let line = req.encode();
            assert!(!line.contains('\n'), "framing broken: {line:?}");
            assert_eq!(Request::decode(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn every_response_variant_round_trips() {
        for resp in sample_responses() {
            let line = resp.encode();
            assert!(!line.contains('\n'), "framing broken: {line:?}");
            assert_eq!(Response::decode(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn engine_field_defaults_to_tree_and_splits_cache_keys() {
        // Messages from older clients omit `engine`.
        let legacy = r#"{"op": "modelcheck", "structure": "000000000000002a", "formula": "t"}"#;
        match Request::decode(legacy).unwrap() {
            Request::ModelCheck { engine, .. } => assert_eq!(engine, EvalEngine::TreeWalk),
            other => panic!("{other:?}"),
        }
        let legacy_solver =
            Json::parse(r#"{"name": "brute", "mode": "global", "prune": true}"#).unwrap();
        assert_eq!(
            SolverSpec::from_json(&legacy_solver).unwrap(),
            SolverSpec::default_brute()
        );
        assert!(SolverSpec::from_json(
            &Json::parse(r#"{"name": "brute", "mode": "global", "prune": true, "engine": "warp"}"#)
                .unwrap()
        )
        .is_err());
        // The canonical form — hence the solve-cache key — distinguishes
        // the engines.
        let mut vm = SolverSpec::default_brute();
        if let SolverSpec::Brute { engine, .. } = &mut vm {
            *engine = EvalEngine::Vm;
        }
        assert_ne!(
            fnv1a64(SolverSpec::default_brute().to_json().render().as_bytes()),
            fnv1a64(vm.to_json().render().as_bytes()),
        );
    }

    #[test]
    fn legacy_messages_decode_with_cluster_fields_defaulted() {
        // A pre-cluster server's reply: no replicas, no provenance, no
        // code, no type_keys.
        let legacy = r#"{"resp": "registered", "structure": "0000000000000063", "vertices": 8, "edges": 7, "fresh": false}"#;
        match Response::decode(legacy).unwrap() {
            Response::Registered { replicas, .. } => assert_eq!(replicas, None),
            other => panic!("{other:?}"),
        }
        let legacy = r#"{"resp": "truth", "holds": false}"#;
        match Response::decode(legacy).unwrap() {
            Response::Truth { provenance, .. } => assert_eq!(provenance, None),
            other => panic!("{other:?}"),
        }
        let legacy = r#"{"resp": "error", "message": "boom"}"#;
        match Response::decode(legacy).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, None),
            other => panic!("{other:?}"),
        }
        // A pre-telemetry client's solve request: no trace context.
        let legacy = concat!(
            r#"{"op": "solve", "structure": "0000000000000007", "examples": [], "ell": 0, "#,
            r#""q": 0, "epsilon": 0.5, "solver": {"name": "nd"}}"#,
        );
        match Request::decode(legacy).unwrap() {
            Request::Solve { trace, .. } => assert_eq!(trace, None),
            other => panic!("{other:?}"),
        }
        let legacy = r#"{"op": "modelcheck", "structure": "000000000000002a", "formula": "t"}"#;
        match Request::decode(legacy).unwrap() {
            Request::ModelCheck { trace, .. } => assert_eq!(trace, None),
            other => panic!("{other:?}"),
        }
        // And a malformed trace context is rejected, not ignored.
        let bad = concat!(
            r#"{"op": "modelcheck", "structure": "000000000000002a", "formula": "t", "#,
            r#""trace": {"trace_id": "nope"}}"#,
        );
        assert!(Request::decode(bad).is_err());
        let legacy = concat!(
            r#"{"resp": "solved", "cached": false, "error": 0.0, "work": 1, "evaluated": 1, "#,
            r#""pruned": 0, "solver": "s", "hypothesis": {"id": "0000000000000001", "#,
            r#""params": [], "q": 0, "mode": "global", "types": [], "describe": "d"}}"#,
        );
        match Response::decode(legacy).unwrap() {
            Response::Solved(o) => {
                assert_eq!(o.hypothesis.type_keys, Vec::<u64>::new());
                assert_eq!(o.provenance, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn hex_errors_name_the_token_and_the_field() {
        let e = parse_hex64("0xlol").unwrap_err();
        assert!(e.0.contains("\"0xlol\""), "{e}");
        let bad = r#"{"op": "modelcheck", "structure": "nope", "formula": "t"}"#;
        let e = Request::decode(bad).unwrap_err();
        assert!(e.0.contains("\"structure\""), "{e}");
        assert!(e.0.contains("\"nope\""), "{e}");
    }

    #[test]
    fn malformed_messages_are_rejected() {
        assert!(Request::decode("{}").is_err());
        assert!(Request::decode(r#"{"op": "warp"}"#).is_err());
        assert!(Request::decode(r#"{"op": "solve"}"#).is_err());
        assert!(Request::decode(r#"{"op": "register"}"#).is_err());
        assert!(Response::decode(r#"{"resp": "solved"}"#).is_err());
        assert!(Request::decode("not json at all").is_err());
        // Structure ids must be 16-digit hex.
        assert!(Request::decode(r#"{"op": "modelcheck", "structure": "xyz", "formula": "t"}"#).is_err());
    }
}
