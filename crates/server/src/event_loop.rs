//! The nonblocking event core: readiness-loop shards that serve many
//! pipelined connections per thread.
//!
//! The thread-per-connection front door ([`crate::framing::serve_framed`])
//! spends one OS thread per peer blocked in `read_line`; at thousands
//! of connections the scheduler thrash dominates and a failed
//! `thread::spawn` used to kill the daemon outright. This module
//! replaces it for the backend server: the acceptor hands each stream
//! to one of a fixed set of *shard* threads, and each shard drives its
//! connections with nonblocking reads and writes from a hand-rolled
//! readiness loop (std-only polling — no new dependencies, in the same
//! spirit as the vendored shims).
//!
//! Per connection the shard keeps a read buffer and a write buffer.
//! One wakeup decodes *every* complete newline-delimited frame in the
//! read buffer (up to the per-connection in-flight cap), so a
//! pipelining client pays one syscall for a burst of requests.
//! Responses complete out of worker-pool callbacks: each decoded
//! request claims an ordered *slot* in the connection's response queue
//! and a [`Responder`] that fills it from whatever thread finishes the
//! work. Slots flush strictly in order, so pipelined replies can never
//! be reordered no matter how the pool schedules the jobs.
//!
//! The lifecycle semantics of the framed loop survive verbatim: the
//! oversize cap answers `malformed request: line exceeds N bytes` and
//! closes, EOF mid-frame answers `malformed request: truncated frame
//! (EOF before newline)`, the idle clock (which counts partial reads
//! as activity) answers `bye (idle timeout)`, the request budget
//! answers `bye (request limit)`, and daemon shutdown answers `bye
//! (shutdown)` on every connection before the shards exit.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::framing::{ConnEvent, ConnLimits};
use crate::pool::Job;
use crate::proto::{Request, Response};

/// How long a shard sleeps when a full pass over its connections made
/// no progress (no bytes moved, no slots completed). Short enough that
/// an idle daemon answers a lone request in well under a millisecond.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// How long shards keep flushing in-flight responses after shutdown is
/// requested before abandoning the remaining connections.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(10);

/// Read chunk size per `read` syscall.
const READ_CHUNK: usize = 64 * 1024;

/// One ordered response slot in a connection's reply queue.
struct Slot {
    cell: Mutex<Option<Response>>,
    op: &'static str,
    started: Instant,
    /// Whether draining this slot reports to the `observe` callback
    /// (synthetic lifecycle replies — bye, oversize — do not, matching
    /// the framed loop).
    observed: bool,
}

/// Completes one response slot from any thread. Dropping a responder
/// without calling [`Responder::complete`] fills the slot with an
/// error, so a worker dying between dequeue and reply can never wedge
/// the connection's ordered flush.
pub struct Responder {
    slot: Option<Arc<Slot>>,
}

impl Responder {
    /// Fill the slot; the owning shard flushes it in order.
    pub fn complete(mut self, response: Response) {
        if let Some(slot) = self.slot.take() {
            *slot.cell.lock() = Some(response);
        }
    }
}

impl Drop for Responder {
    fn drop(&mut self) {
        if let Some(slot) = self.slot.take() {
            let mut cell = slot.cell.lock();
            if cell.is_none() {
                *cell = Some(Response::error(
                    "request was dropped: server is shutting down",
                ));
            }
        }
    }
}

/// What the handler did with a decoded request.
pub enum Dispatch {
    /// Handled: the responder will complete the slot (it may already
    /// have, for requests answered inline on the loop thread).
    Accepted,
    /// The compute queue was full. The shard parks the prepared job and
    /// re-offers it via [`EventHandler::retry`] each tick, decoding no
    /// further frames from that connection until it is accepted —
    /// backpressure without stalling the whole shard.
    Busy(Job),
}

/// The daemon half of the event core: request dispatch plus the metric
/// and lifecycle callbacks the framed loop took as closures.
pub trait EventHandler: Send + Sync + 'static {
    /// Route one decoded request. Cheap requests should be answered
    /// inline (complete the responder and return [`Dispatch::Accepted`]);
    /// compute-shaped ones should be packaged into a pool job that
    /// completes the responder when it runs.
    fn dispatch(&self, req: Request, responder: Responder) -> Dispatch;

    /// Re-offer a parked job. `Err` hands it back for the next tick.
    fn retry(&self, job: Job) -> Result<(), Job>;

    /// One served request: `(op, µs, ok)`.
    fn observe(&self, op: &'static str, us: u64, ok: bool);

    /// A limit violation that closed a connection.
    fn conn_event(&self, ev: ConnEvent);

    /// A served request asked for daemon-wide shutdown (its `bye` reply
    /// has already been queued on the issuing connection).
    fn wants_shutdown(&self);
}

/// Options for the event core.
#[derive(Clone, Copy, Debug)]
pub struct EventLoopOptions {
    /// Per-connection limits (identical meaning to the framed loop).
    pub limits: ConnLimits,
    /// Pipelined requests a single connection may have in flight before
    /// the shard stops reading from it.
    pub max_inflight_per_conn: usize,
}

/// Why a connection left the loop (internal).
enum ConnFate {
    Alive,
    Closed,
}

/// Per-connection state owned by one shard.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    /// Resume offset for the newline scan (bytes before it are known
    /// newline-free).
    scan_from: usize,
    write_buf: Vec<u8>,
    write_pos: usize,
    slots: VecDeque<Arc<Slot>>,
    /// A parked compute job (queue was full); decoding pauses until the
    /// pool accepts it.
    deferred: Option<Job>,
    served: usize,
    last_activity: Instant,
    /// No more reads; flush the remaining slots and close.
    closing: bool,
    peer_eof: bool,
}

impl Conn {
    fn adopt(stream: TcpStream) -> Option<Self> {
        stream.set_nonblocking(true).ok()?;
        let _ = stream.set_nodelay(true);
        Some(Self {
            stream,
            read_buf: Vec::new(),
            scan_from: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            slots: VecDeque::new(),
            deferred: None,
            served: 0,
            last_activity: Instant::now(),
            closing: false,
            peer_eof: false,
        })
    }

    /// Append a pre-completed reply (lifecycle byes and errors) that
    /// flushes after everything already in flight.
    fn push_synthetic(&mut self, response: Response) {
        self.slots.push_back(Arc::new(Slot {
            cell: Mutex::new(Some(response)),
            op: "",
            started: Instant::now(),
            observed: false,
        }));
    }

    /// Queue the shutdown bye (idempotent via `closing`).
    fn begin_shutdown(&mut self) {
        if self.closing {
            return;
        }
        self.push_synthetic(Response::Bye {
            reason: "shutdown".to_string(),
        });
        self.closing = true;
    }

    /// Whether the shard may read more bytes from this peer.
    fn may_read(&self, max_inflight: usize) -> bool {
        !self.closing
            && !self.peer_eof
            && self.deferred.is_none()
            && self.slots.len() < max_inflight
    }

    /// One full service pass: retry deferred work, read + decode, check
    /// the idle clock, drain completed slots, flush the write buffer.
    fn tick(
        &mut self,
        handler: &dyn EventHandler,
        opts: &EventLoopOptions,
        progress: &mut bool,
    ) -> ConnFate {
        let max_inflight = opts.max_inflight_per_conn.max(1);

        // Re-offer a parked compute job before anything else: its slot
        // is already in the queue and everything behind it is waiting.
        if let Some(job) = self.deferred.take() {
            match handler.retry(job) {
                Ok(()) => *progress = true,
                Err(job) => self.deferred = Some(job),
            }
        }

        // Read while the peer has bytes and the in-flight cap allows.
        let mut chunk = [0u8; READ_CHUNK];
        while self.may_read(max_inflight) {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_eof = true;
                    *progress = true;
                }
                Ok(n) => {
                    *progress = true;
                    self.last_activity = Instant::now();
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    if self.decode_frames(handler, &opts.limits, max_inflight) {
                        return ConnFate::Closed;
                    }
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return ConnFate::Closed,
            }
        }

        // Frames buffered past the in-flight cap (or behind a deferred
        // job) were left undecoded by the read path; pick them up as
        // slots free, even when the peer sends nothing further.
        if !self.closing
            && self.deferred.is_none()
            && !self.read_buf.is_empty()
            && self.slots.len() < max_inflight
            && self.decode_frames(handler, &opts.limits, max_inflight)
        {
            return ConnFate::Closed;
        }

        // Peer EOF: only once no complete buffered frame remains can
        // the leftover be judged (a partial frame is truncated; bare
        // whitespace is a clean hangup).
        if self.peer_eof && !self.closing && !self.read_buf.contains(&b'\n') {
            self.on_eof(handler);
        }

        // Idle: only a connection with nothing pending in either
        // direction can be idle (a request being computed, or a reply
        // mid-flush, is activity — same as the framed loop, where the
        // clock only runs while waiting for the next line).
        if !self.closing
            && self.slots.is_empty()
            && self.write_buf.len() == self.write_pos
            && self.deferred.is_none()
            && self.last_activity.elapsed() >= opts.limits.idle_timeout
        {
            handler.conn_event(ConnEvent::IdleClose);
            self.push_synthetic(Response::Bye {
                reason: "idle timeout".to_string(),
            });
            self.closing = true;
        }

        // Drain completed slots, strictly in order, into the write
        // buffer.
        while let Some(front) = self.slots.front() {
            let response = front.cell.lock().take();
            let Some(response) = response else { break };
            let front = self.slots.pop_front().expect("front exists");
            *progress = true;
            if front.observed {
                let ok = !matches!(response, Response::Error { .. });
                let us = front.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                handler.observe(front.op, us, ok);
            }
            if let Response::Bye { reason } = &response {
                if !self.closing && reason == "shutdown" {
                    // A served shutdown request: tell the daemon after
                    // the bye is queued, exactly like the framed loop
                    // which writes the bye before returning `true`.
                    handler.wants_shutdown();
                }
                self.closing = true;
            }
            let mut line = response.encode();
            line.push('\n');
            self.write_buf.extend_from_slice(line.as_bytes());
        }

        // Flush as much of the write buffer as the socket accepts.
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return ConnFate::Closed,
                Ok(n) => {
                    self.write_pos += n;
                    *progress = true;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return ConnFate::Closed,
            }
        }
        if self.write_pos == self.write_buf.len() && self.write_pos > 0 {
            self.write_buf.clear();
            self.write_pos = 0;
        }

        // Fully drained and told to close (or the peer hung up cleanly
        // with nothing left to answer): done.
        if (self.closing || self.peer_eof)
            && self.slots.is_empty()
            && self.deferred.is_none()
            && self.write_buf.len() == self.write_pos
        {
            return ConnFate::Closed;
        }
        ConnFate::Alive
    }

    /// EOF from the peer: leftover bytes are a truncated frame,
    /// whitespace-only leftovers a clean hangup.
    fn on_eof(&mut self, handler: &dyn EventHandler) {
        if self.closing {
            return;
        }
        let leftover = &self.read_buf[..];
        if !leftover.iter().all(|b| b.is_ascii_whitespace()) {
            handler.conn_event(ConnEvent::TruncatedFrame);
            self.push_synthetic(Response::error(
                "malformed request: truncated frame (EOF before newline)",
            ));
            self.closing = true;
        }
        self.read_buf.clear();
        self.scan_from = 0;
    }

    /// Decode every complete frame in the read buffer (bounded by the
    /// in-flight cap and the lifecycle limits). Returns `true` on a
    /// fatal framing failure (the connection must close with no reply).
    fn decode_frames(
        &mut self,
        handler: &dyn EventHandler,
        limits: &ConnLimits,
        max_inflight: usize,
    ) -> bool {
        loop {
            if self.closing || self.deferred.is_some() || self.slots.len() >= max_inflight {
                return false;
            }
            let nl = self.read_buf[self.scan_from..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|p| self.scan_from + p);
            let Some(nl) = nl else {
                // No complete frame. A partial frame that already blew
                // the cap is answered and closed right now — `read_buf`
                // growth is bounded no matter what arrives.
                if self.read_buf.len() > limits.max_line_bytes {
                    self.oversize(handler, limits);
                }
                self.scan_from = self.read_buf.len();
                return false;
            };
            // Frame length includes the newline, matching `read_line`
            // in the framed loop.
            if nl + 1 > limits.max_line_bytes {
                self.oversize(handler, limits);
                return false;
            }
            let line: Vec<u8> = self.read_buf.drain(..=nl).collect();
            self.scan_from = 0;
            let Ok(text) = std::str::from_utf8(&line) else {
                // The framed loop's `read_line` fails the connection on
                // invalid UTF-8 without a reply; do the same.
                return true;
            };
            if text.trim().is_empty() {
                continue;
            }
            self.served += 1;
            if self.served > limits.max_requests_per_conn {
                handler.conn_event(ConnEvent::OverLimitClose);
                self.push_synthetic(Response::Bye {
                    reason: "request limit".to_string(),
                });
                self.closing = true;
                return false;
            }
            let started = Instant::now();
            match Request::decode(text.trim_end()) {
                Ok(req) => {
                    let slot = Arc::new(Slot {
                        cell: Mutex::new(None),
                        op: req.op(),
                        started,
                        observed: true,
                    });
                    self.slots.push_back(Arc::clone(&slot));
                    match handler.dispatch(req, Responder { slot: Some(slot) }) {
                        Dispatch::Accepted => {}
                        Dispatch::Busy(job) => self.deferred = Some(job),
                    }
                }
                Err(e) => {
                    // The prefix is load-bearing: see the framed loop —
                    // a correct client treats `malformed request` as
                    // proof of in-flight corruption and retries.
                    let slot = Arc::new(Slot {
                        cell: Mutex::new(Some(Response::error(format!(
                            "malformed request: {e}"
                        )))),
                        op: "malformed",
                        started,
                        observed: true,
                    });
                    self.slots.push_back(slot);
                }
            }
        }
    }

    fn oversize(&mut self, handler: &dyn EventHandler, limits: &ConnLimits) {
        handler.conn_event(ConnEvent::OversizeClose);
        self.push_synthetic(Response::error(format!(
            "malformed request: line exceeds {} bytes",
            limits.max_line_bytes
        )));
        self.closing = true;
        self.read_buf.clear();
        self.scan_from = 0;
    }
}

/// Run one shard: adopt connections from `inbox`, tick them until the
/// daemon shuts down, keep `live` in sync so the acceptor's admission
/// check and `tracked_connections` see the true count.
pub fn shard_loop(
    inbox: &Receiver<TcpStream>,
    handler: &Arc<dyn EventHandler>,
    opts: &EventLoopOptions,
    shutdown: &AtomicBool,
    live: &AtomicUsize,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut shutdown_deadline: Option<Instant> = None;
    let mut inbox_closed = false;
    loop {
        let mut progress = false;

        while !inbox_closed {
            match inbox.try_recv() {
                Ok(stream) => {
                    progress = true;
                    match Conn::adopt(stream) {
                        Some(conn) => conns.push(conn),
                        None => {
                            live.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    inbox_closed = true;
                    break;
                }
            }
        }

        if shutdown.load(Ordering::SeqCst) {
            if shutdown_deadline.is_none() {
                shutdown_deadline = Some(Instant::now() + SHUTDOWN_GRACE);
            }
            for conn in &mut conns {
                conn.begin_shutdown();
            }
        }

        conns.retain_mut(|conn| {
            match conn.tick(handler.as_ref(), opts, &mut progress) {
                ConnFate::Alive => true,
                ConnFate::Closed => {
                    live.fetch_sub(1, Ordering::SeqCst);
                    false
                }
            }
        });

        if let Some(deadline) = shutdown_deadline {
            if conns.is_empty() || Instant::now() >= deadline {
                live.fetch_sub(conns.len(), Ordering::SeqCst);
                return;
            }
        }

        if !progress {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A handler that answers pings inline and never offloads.
    struct Echo;
    impl EventHandler for Echo {
        fn dispatch(&self, req: Request, responder: Responder) -> Dispatch {
            let resp = match req {
                Request::Ping => Response::Pong,
                Request::Shutdown => Response::Bye {
                    reason: "shutdown".to_string(),
                },
                _ => Response::error("echo handler only pings"),
            };
            responder.complete(resp);
            Dispatch::Accepted
        }
        fn retry(&self, _job: Job) -> Result<(), Job> {
            Ok(())
        }
        fn observe(&self, _op: &'static str, _us: u64, _ok: bool) {}
        fn conn_event(&self, _ev: ConnEvent) {}
        fn wants_shutdown(&self) {}
    }

    fn harness(
        opts: EventLoopOptions,
    ) -> (
        std::net::SocketAddr,
        Arc<AtomicBool>,
        std::thread::JoinHandle<()>,
    ) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown2 = Arc::clone(&shutdown);
        let handle = std::thread::spawn(move || {
            let (tx, rx) = mpsc::channel();
            let live = Arc::new(AtomicUsize::new(0));
            let handler: Arc<dyn EventHandler> = Arc::new(Echo);
            listener.set_nonblocking(true).unwrap();
            let accept_shutdown = Arc::clone(&shutdown2);
            let accept_live = Arc::clone(&live);
            std::thread::spawn(move || {
                while !accept_shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            accept_live.fetch_add(1, Ordering::SeqCst);
                            let _ = tx.send(stream);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            });
            shard_loop(&rx, &handler, &opts, &shutdown2, &live);
        });
        (addr, shutdown, handle)
    }

    fn opts(limits: ConnLimits) -> EventLoopOptions {
        EventLoopOptions {
            limits,
            max_inflight_per_conn: 32,
        }
    }

    #[test]
    fn pipelined_pings_come_back_in_order() {
        use std::io::{BufRead, BufReader};
        let (addr, shutdown, handle) = harness(opts(ConnLimits {
            max_requests_per_conn: 1000,
            max_line_bytes: 1 << 20,
            idle_timeout: Duration::from_secs(30),
        }));
        let mut stream = TcpStream::connect(addr).unwrap();
        let burst = "{\"op\":\"ping\"}\n".repeat(50);
        stream.write_all(burst.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for _ in 0..50 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("pong"), "got {line:?}");
        }
        drop(reader);
        drop(stream);
        shutdown.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn oversize_mid_pipeline_answers_pending_then_errors() {
        use std::io::{BufRead, BufReader};
        let (addr, shutdown, handle) = harness(opts(ConnLimits {
            max_requests_per_conn: 1000,
            max_line_bytes: 64,
            idle_timeout: Duration::from_secs(30),
        }));
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut burst = String::from("{\"op\":\"ping\"}\n");
        burst.push_str(&"x".repeat(200));
        burst.push('\n');
        stream.write_all(burst.as_bytes()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("pong"), "got {line:?}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("exceeds 64 bytes"), "got {line:?}");
        line.clear();
        assert_eq!(reader.read_line(&mut line).unwrap(), 0, "closed after");
        shutdown.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }
}
