//! Acceptance gate for the tracing layer: with capture enabled, every
//! solver must return bit-identical results to an untraced run, and the
//! run must leave a well-formed span tree behind.
//!
//! This test runs as its own process, so capture starts disabled here no
//! matter what the unit tests of other crates do.

use folearn::bruteforce::BruteForceOpts;
use folearn::ndlearner::NdConfig;
use folearn::problem::{ErmInstance, TrainingSequence};
use folearn::{shared_arena, solve_fo_erm, SolveReport, Solver, TypeMode};
use folearn_graph::{generators, Vocabulary, V};
use folearn_obs::Counter;

fn solvers() -> Vec<Solver> {
    vec![
        // Deterministic work accounting: the whole report must round-trip.
        Solver::BruteForce {
            mode: TypeMode::Global,
            opts: BruteForceOpts {
                threads: Some(1),
                prune: true,
                block_size: None,
            },
        },
        // Parallel sweep: counters are scheduling-dependent (see the
        // bruteforce module docs), so only the learned outcome is compared.
        Solver::BruteForce {
            mode: TypeMode::Global,
            opts: BruteForceOpts {
                threads: Some(3),
                prune: true,
                block_size: Some(3),
            },
        },
        Solver::NowhereDense(NdConfig::default()),
        Solver::LocalAccess {
            param_radius: 2,
            type_radius: 1,
        },
    ]
}

fn run_all() -> Vec<SolveReport> {
    let g = generators::random_tree(18, Vocabulary::empty(), 5);
    let w = V(9);
    let target = |t: &[V]| t[0] == w || g.has_edge(t[0], w);
    let examples = TrainingSequence::label_all_tuples(&g, 1, target);
    let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.2);
    let arena = shared_arena(&g);
    solvers()
        .iter()
        .map(|s| solve_fo_erm(&inst, s, &arena))
        .collect()
}

#[test]
fn traced_runs_are_bit_identical_to_untraced() {
    assert!(!folearn_obs::enabled(), "capture must start disabled");
    let untraced = run_all();
    assert!(
        folearn_obs::take_thread_roots().is_empty(),
        "a disabled run must capture nothing"
    );

    folearn_obs::set_enabled(true);
    let traced = run_all();
    let roots = folearn_obs::take_thread_roots();

    for (i, (t, u)) in traced.iter().zip(&untraced).enumerate() {
        assert_eq!(t.solver_name, u.solver_name);
        assert_eq!(
            t.error.to_bits(),
            u.error.to_bits(),
            "{}: tracing changed the training error",
            t.solver_name
        );
        assert_eq!(
            t.hypothesis.params(),
            u.hypothesis.params(),
            "{}: tracing changed the learned parameters",
            t.solver_name
        );
        if i != 1 {
            assert_eq!(
                t.to_json().render(),
                u.to_json().render(),
                "{}: tracing changed the report rendering",
                t.solver_name
            );
        }
    }

    // One `solve` root per solver run, each carrying the learner's spans.
    assert_eq!(roots.len(), untraced.len());
    for (i, brute) in roots.iter().take(2).enumerate() {
        assert_eq!(brute.name, "solve");
        let sweep = brute.find("erm.sweep").expect("brute force records a sweep");
        assert_eq!(
            sweep.total(Counter::EvaluatedParams) as usize,
            traced[i].evaluated_params,
            "span counters must agree with the report's work accounting"
        );
        assert_eq!(
            sweep.total(Counter::PrunedParams) as usize,
            traced[i].pruned_params,
        );
    }
    assert!(
        roots[2].find("nd.learn").is_some(),
        "the ND learner records a span"
    );
}
