//! `folearn` — parameterized learning of first-order queries.
//!
//! This crate implements the algorithmic content of *"On the Parameterized
//! Complexity of Learning First-Order Logic"* (van Bergerem, Grohe,
//! Ritzert; PODS 2022):
//!
//! * the empirical-risk-minimisation problem `FO-ERM` and its relaxation
//!   `(L,Q)-FO-ERM` over coloured background graphs ([`problem`]);
//! * hypotheses `h_{φ,w̄}` represented as parameter tuples plus sets of
//!   `q`-types, convertible to honest FO formulas ([`hypothesis`]);
//! * exact ERM *given* parameters by type-class majority vote ([`fit`]);
//! * the brute-force learner of Proposition 11 / Algorithm 1
//!   ([`bruteforce`]);
//! * the realisable `k = 1` prefix-search learner of Proposition 12 /
//!   Algorithm 2 ([`realizable`]);
//! * the Vitali-style covering of Lemma 3 ([`covering`]);
//! * the fixed-parameter tractable learner on nowhere dense classes of
//!   Theorem 13, built from Lemmas 14–16 and the splitter game
//!   ([`ndlearner`]);
//! * the (agnostic) PAC layer of Section 3: example distributions,
//!   sampling, generalisation error ([`pac`]);
//! * the sublinear local-access learner of Grohe–Ritzert (reference \[22\],
//!   the bounded-degree baseline) ([`sublinear`]);
//! * exact VC-dimension search for hypothesis classes ([`vc`]).

pub mod bruteforce;
pub mod covering;
pub mod fit;
pub mod hypothesis;
pub mod ndlearner;
pub mod pac;
pub mod problem;
pub mod realizable;
pub mod solver;
pub mod sublinear;
pub mod vc;

pub use bruteforce::{BruteForceOpts, BruteForceResult};
pub use fit::{fit_with_params, fit_with_params_counted, TypeMode};
pub use solver::{solve_fo_erm, solve_fo_erm_with_engine, SolveReport, Solver};
pub use hypothesis::Hypothesis;
pub use problem::{ErmInstance, Example, TrainingSequence};

/// A shared, lockable type arena — the form every learner entry point
/// takes it in (hypotheses keep it alive to classify unseen tuples).
pub type SharedArena = std::sync::Arc<parking_lot::Mutex<folearn_types::TypeArena>>;

/// A fresh [`SharedArena`] over the graph's vocabulary.
pub fn shared_arena(g: &folearn_graph::Graph) -> SharedArena {
    std::sync::Arc::new(parking_lot::Mutex::new(folearn_types::TypeArena::new(
        std::sync::Arc::clone(g.vocab()),
    )))
}
