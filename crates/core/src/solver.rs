//! The top-level `FO-ERM` solver facade.
//!
//! One entry point, [`solve_fo_erm`], dispatching to the workspace's three
//! learners — the exact brute force of Proposition 11, the
//! fixed-parameter-tractable nowhere-dense learner of Theorem 13, and the
//! sublinear local-access learner of reference \[22\] — with a uniform
//! report. Downstream users pick a solver by what they know about their
//! background structure:
//!
//! | you know…                            | pick                      |
//! |--------------------------------------|---------------------------|
//! | nothing (small graph)                | `Solver::BruteForce`      |
//! | a nowhere dense class (e.g. forest)  | `Solver::NowhereDense`    |
//! | bounded degree + few examples        | `Solver::LocalAccess`     |

use folearn_logic::vm::{self, EvalEngine};
use folearn_logic::Var;
use folearn_obs::Json;

use crate::bruteforce::{brute_force_erm_with, BruteForceOpts};
use crate::fit::TypeMode;
use crate::hypothesis::Hypothesis;
use crate::ndlearner::{nd_learn, NdConfig};
use crate::problem::ErmInstance;
use crate::sublinear::local_access_learn;
use crate::SharedArena;

/// Which learning algorithm to run.
#[derive(Debug, Clone)]
pub enum Solver {
    /// Proposition 11: exhaustive over parameter tuples; exact.
    BruteForce {
        /// Type notion used by the inner fit.
        mode: TypeMode,
        /// Engine knobs: thread count, pruning, block size. Every
        /// configuration returns the same hypothesis and error
        /// ([`BruteForceOpts`]); only wall-clock and the work accounting
        /// vary.
        opts: BruteForceOpts,
    },
    /// Theorem 13: the FPT learner for a nowhere dense class.
    NowhereDense(NdConfig),
    /// Reference \[22\]: parameters restricted to the examples'
    /// neighbourhoods; sublinear access on bounded degree.
    LocalAccess {
        /// Radius of the candidate-parameter balls around examples.
        param_radius: usize,
        /// Radius of the local types used for classification.
        type_radius: usize,
    },
}

/// Uniform result of [`solve_fo_erm`].
#[derive(Debug)]
pub struct SolveReport {
    /// The learned hypothesis.
    pub hypothesis: Hypothesis,
    /// Training error achieved.
    pub error: f64,
    /// Solver-specific work measure (parameter tuples touched, branches
    /// explored, or vertices touched). For `BruteForce` this is
    /// `evaluated_params + pruned_params`, so the `n^ℓ` curve of
    /// experiment E3 — and the work accounting cross-checked by the E18
    /// tracing-overhead experiment — stays interpretable with pruning on.
    pub work: usize,
    /// Parameter tuples whose example tally ran to completion. Only the
    /// brute-force engine fills this; other solvers report zero.
    pub evaluated_params: usize,
    /// Parameter tuples abandoned early because their running
    /// misclassification count exceeded the shared bound. Zero when
    /// pruning is off or for non-brute-force solvers.
    pub pruned_params: usize,
    /// Which solver produced this.
    pub solver_name: &'static str,
}

impl SolveReport {
    /// The shared machine-readable rendering used by the `exp_*` binaries
    /// and the CLI (same field names as the wire protocol's `solve`
    /// response).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("solver", Json::str(self.solver_name)),
            ("error", Json::Num(self.error)),
            ("work", Json::int(self.work)),
            ("evaluated_params", Json::int(self.evaluated_params)),
            ("pruned_params", Json::int(self.pruned_params)),
            ("hypothesis", Json::str(self.hypothesis.describe())),
        ])
    }
}

/// Solve an `FO-ERM` instance with the chosen algorithm.
///
/// When [`folearn_obs`] capture is enabled this opens a `solve` span
/// around the dispatched learner (which nests its own spans under it)
/// and tags it with the instance shape and the chosen solver.
pub fn solve_fo_erm(
    inst: &ErmInstance<'_>,
    solver: &Solver,
    arena: &SharedArena,
) -> SolveReport {
    solve_fo_erm_with_engine(inst, solver, arena, EvalEngine::TreeWalk)
}

/// [`solve_fo_erm`] with an explicit formula-evaluation engine.
///
/// The learners' parameter sweeps tally *types*, which are backend-
/// independent, so the engine does not change what is learned. What it
/// selects is the formula-evaluation backend used around the solve: with
/// [`EvalEngine::Vm`] the winning hypothesis is cross-validated — its
/// materialised formula ([`Hypothesis::to_formula`]) is compiled once and
/// batch-evaluated on the bytecode VM over every training example, and
/// the recomputed error must be bit-identical to the solver's. The
/// validation runs inside the `solve` span, so its `vm_*` work counters
/// surface in traces and the server's `stats` aggregate.
///
/// # Panics
/// Panics if the VM cross-validation diverges from the solver's reported
/// error — a committed engine-mismatch is a broken build, not a result.
pub fn solve_fo_erm_with_engine(
    inst: &ErmInstance<'_>,
    solver: &Solver,
    arena: &SharedArena,
    engine: EvalEngine,
) -> SolveReport {
    let sp = folearn_obs::span("solve");
    let report = solve_dispatch(inst, solver, arena);
    if engine == EvalEngine::Vm {
        vm_cross_validate(inst, &report);
    }
    folearn_obs::meta("solver", Json::str(report.solver_name));
    folearn_obs::meta("engine", Json::str(engine.name()));
    folearn_obs::meta("ell", Json::int(inst.ell));
    folearn_obs::meta("q", Json::int(inst.q));
    folearn_obs::meta("examples", Json::int(inst.examples.len()));
    drop(sp);
    report
}

/// Recompute the report's training error on the bytecode VM and assert
/// bit-identity. `k = 1` instances use one batched run (one lane per
/// vertex); higher arities bind each tuple through the environment.
fn vm_cross_validate(inst: &ErmInstance<'_>, report: &SolveReport) {
    // The materialised formula is over x0 … x{k−1} (the example tuple)
    // followed by the hypothesis's parameter variables x{k} … x{k+ℓ−1}.
    let phi = report.hypothesis.to_formula();
    let params = report.hypothesis.params();
    let vg = vm::VmGraph::new(inst.graph);
    let k = inst.k;
    let param_bindings = |base: usize| -> Vec<(Var, folearn_graph::V)> {
        params
            .iter()
            .enumerate()
            .map(|(j, &w)| ((base + j) as Var, w))
            .collect()
    };
    let wrong = if k == 1 {
        let assigned: Vec<Var> = (1..=params.len()).map(|j| j as Var).collect();
        let prog = vm::Program::compile(&phi, 0, &assigned);
        let mut ev = vm::Evaluator::new(&prog, &vg);
        let verdicts = ev.run(&param_bindings(1)).to_vec();
        inst.examples
            .iter()
            .filter(|e| vm::get_bit(&verdicts, e.tuple[0].index()) != e.label)
            .count()
    } else {
        let assigned: Vec<Var> = (0..k + params.len()).map(|j| j as Var).collect();
        let prog = vm::Program::compile_single(&phi, &assigned);
        let mut ev = vm::Evaluator::new(&prog, &vg);
        inst.examples
            .iter()
            .filter(|e| {
                let mut bindings: Vec<(Var, folearn_graph::V)> = e
                    .tuple
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (i as Var, v))
                    .collect();
                bindings.extend(param_bindings(k));
                ev.run_bool(&bindings) != e.label
            })
            .count()
    };
    let vm_error = if inst.examples.is_empty() {
        0.0
    } else {
        wrong as f64 / inst.examples.len() as f64
    };
    assert_eq!(
        vm_error.to_bits(),
        report.error.to_bits(),
        "VM cross-validation diverged: vm error {} vs solver error {}",
        vm_error,
        report.error
    );
}

fn solve_dispatch(
    inst: &ErmInstance<'_>,
    solver: &Solver,
    arena: &SharedArena,
) -> SolveReport {
    match solver {
        Solver::BruteForce { mode, opts } => {
            let res = brute_force_erm_with(inst, *mode, arena, opts);
            SolveReport {
                hypothesis: res.hypothesis,
                error: res.error,
                work: res.evaluated_params + res.pruned_params,
                evaluated_params: res.evaluated_params,
                pruned_params: res.pruned_params,
                solver_name: "brute-force (Prop 11)",
            }
        }
        Solver::NowhereDense(config) => {
            let res = nd_learn(inst, config, arena);
            SolveReport {
                hypothesis: res.hypothesis,
                error: res.error,
                work: res.branches_explored,
                evaluated_params: 0,
                pruned_params: 0,
                solver_name: "nowhere-dense (Thm 13)",
            }
        }
        Solver::LocalAccess {
            param_radius,
            type_radius,
        } => {
            let res = local_access_learn(inst, *param_radius, *type_radius, arena);
            SolveReport {
                hypothesis: res.hypothesis,
                error: res.error,
                work: res.vertices_touched,
                evaluated_params: 0,
                pruned_params: 0,
                solver_name: "local-access ([22])",
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, Vocabulary, V};

    use crate::ndlearner::{FinalRule, SearchMode};
    use crate::problem::TrainingSequence;
    use crate::shared_arena;

    use super::*;

    #[test]
    fn all_solvers_meet_the_bound_on_a_shared_workload() {
        let g = generators::random_tree(24, Vocabulary::empty(), 7);
        let w = V(12);
        let target = |t: &[V]| t[0] == w || g.has_edge(t[0], w);
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.2);
        let arena = shared_arena(&g);
        let eps_star = crate::bruteforce::optimal_error(&inst, &arena);

        let solvers = [
            Solver::BruteForce {
                mode: TypeMode::Global,
                opts: BruteForceOpts::default(),
            },
            Solver::NowhereDense(NdConfig {
                class: folearn_graph::splitter::GraphClass::Forest,
                search: SearchMode::Exhaustive,
                final_rule: FinalRule::LocalAuto,
                locality_radius: Some(1),
                max_rounds: Some(3),
                max_branches: 150,
            }),
            Solver::LocalAccess {
                param_radius: 2,
                type_radius: 1,
            },
        ];
        for solver in &solvers {
            let report = solve_fo_erm(&inst, solver, &arena);
            assert!(
                report.error <= eps_star + inst.epsilon + 1e-9,
                "{}: err {} > ε* {} + ε",
                report.solver_name,
                report.error,
                eps_star
            );
            assert!(report.work >= 1);
        }
    }

    #[test]
    fn vm_engine_cross_validates_every_solver() {
        // The test is the internal bit-identity assertion: with the VM
        // engine, solve_fo_erm_with_engine recomputes the winning
        // hypothesis's error on the bytecode VM and panics on divergence.
        let g = generators::random_tree(24, Vocabulary::empty(), 7);
        let w = V(12);
        let target = |t: &[V]| t[0] == w || g.has_edge(t[0], w);
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.2);
        let arena = shared_arena(&g);
        let solvers = [
            Solver::BruteForce {
                mode: TypeMode::Global,
                opts: BruteForceOpts::default(),
            },
            Solver::NowhereDense(NdConfig {
                class: folearn_graph::splitter::GraphClass::Forest,
                search: SearchMode::Exhaustive,
                final_rule: FinalRule::LocalAuto,
                locality_radius: Some(1),
                max_rounds: Some(3),
                max_branches: 150,
            }),
            Solver::LocalAccess {
                param_radius: 2,
                type_radius: 1,
            },
        ];
        for solver in &solvers {
            let tree = solve_fo_erm_with_engine(&inst, solver, &arena, EvalEngine::TreeWalk);
            let vm = solve_fo_erm_with_engine(&inst, solver, &arena, EvalEngine::Vm);
            assert_eq!(tree.error.to_bits(), vm.error.to_bits(), "{}", vm.solver_name);
        }
    }

    #[test]
    fn vm_engine_cross_validates_pair_instances() {
        // k = 2 exercises the compile_single (per-tuple environment) path
        // of the cross-validation.
        let g = generators::path(8, Vocabulary::empty());
        let examples =
            TrainingSequence::label_all_tuples(&g, 2, |t| g.has_edge(t[0], t[1]));
        let inst = ErmInstance::new(&g, examples, 2, 0, 1, 0.0);
        let arena = shared_arena(&g);
        let report = solve_fo_erm_with_engine(
            &inst,
            &Solver::BruteForce {
                mode: TypeMode::Global,
                opts: BruteForceOpts::default(),
            },
            &arena,
            EvalEngine::Vm,
        );
        assert_eq!(report.error, 0.0);
    }

    #[test]
    fn brute_force_is_exact() {
        let g = generators::path(10, Vocabulary::empty());
        let examples = TrainingSequence::label_all_tuples(&g, 1, |t| t[0].0 < 5);
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.0);
        let arena = shared_arena(&g);
        let report = solve_fo_erm(
            &inst,
            &Solver::BruteForce {
                mode: TypeMode::Global,
                opts: BruteForceOpts::default(),
            },
            &arena,
        );
        assert_eq!(
            report.error,
            crate::bruteforce::optimal_error(&inst, &arena)
        );
    }

    #[test]
    fn brute_force_report_accounts_for_pruned_tuples() {
        // Conflicting labels forbid a perfect fit, so the sweep touches
        // all n^ℓ tuples and pruning shows up in the report.
        let g = generators::path(10, Vocabulary::empty());
        let mut pairs: Vec<(Vec<V>, bool)> =
            g.vertices().map(|v| (vec![v], v == V(4))).collect();
        pairs.push((vec![V(0)], true));
        let examples = TrainingSequence::from_pairs(pairs);
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.0);
        let arena = shared_arena(&g);
        let report = solve_fo_erm(
            &inst,
            &Solver::BruteForce {
                mode: TypeMode::Global,
                opts: crate::bruteforce::BruteForceOpts {
                    threads: Some(1),
                    prune: true,
                    block_size: None,
                },
            },
            &arena,
        );
        assert_eq!(report.work, report.evaluated_params + report.pruned_params);
        assert_eq!(report.work, 10, "no short-circuit: every tuple is touched");
        assert!(report.pruned_params > 0);
    }
}
