//! The local-access learner — the sublinear baseline of Grohe–Ritzert
//! (LICS 2017), the paper's reference \[22\].
//!
//! On structures of small degree, ERM for first-order hypotheses is
//! possible in time *sublinear in the background structure*: the learner
//! only ever inspects bounded-radius neighbourhoods of the training
//! examples. The key structural facts are
//!
//! * Gaifman locality — classification by `h_{φ,w̄}` is determined by the
//!   local type of `v̄w̄`, and
//! * parameters far from every (positive or negative) example cannot
//!   influence any example's local type, so w.l.o.g. the parameters come
//!   from the examples' neighbourhoods.
//!
//! Our implementation makes the access pattern explicit: candidate
//! parameters are drawn from `N_radius(examples)` only, fitting uses local
//! types only, and the report counts how many distinct vertices were ever
//! *touched* — on bounded-degree graphs that count is `O(m · d^{O(r)})`,
//! independent of `n`, which experiment E14 measures.

use std::collections::BTreeSet;
use std::sync::Arc;

use folearn_graph::{bfs, Graph, V};
use folearn_types::TypeArena;
use parking_lot::Mutex;

use crate::fit::{fit_with_params, optimal_error_given_params, TypeMode};
use crate::hypothesis::Hypothesis;
use crate::problem::ErmInstance;

/// Outcome of a local-access run.
#[derive(Debug)]
pub struct LocalAccessReport {
    /// The learned hypothesis (local type mode).
    pub hypothesis: Hypothesis,
    /// Its training error.
    pub error: f64,
    /// Distinct vertices the learner ever looked at — the sublinearity
    /// measure (compare against `n`).
    pub vertices_touched: usize,
    /// Number of candidate parameter tuples tried.
    pub candidates_tried: usize,
}

/// Run the local-access learner: parameters restricted to
/// `N_{param_radius}(examples)`, classification by local
/// `(q, type_radius)`-types. `inst.ell ∈ {0, 1}` is supported (the
/// Grohe–Ritzert algorithm also iterates higher `ℓ` over the same
/// candidate set; we keep the demonstration at the sublinear core).
///
/// # Panics
/// Panics if `inst.ell > 1`.
pub fn local_access_learn(
    inst: &ErmInstance<'_>,
    param_radius: usize,
    type_radius: usize,
    arena: &Arc<Mutex<TypeArena>>,
) -> LocalAccessReport {
    assert!(inst.ell <= 1, "demonstration supports ℓ ≤ 1");
    let g: &Graph = inst.graph;
    let mode = TypeMode::Local { r: type_radius };

    // Vertices named by examples.
    let mut anchors: BTreeSet<V> = BTreeSet::new();
    for e in inst.examples.iter() {
        anchors.extend(e.tuple.iter().copied());
    }
    let anchor_vec: Vec<V> = anchors.iter().copied().collect();

    // Access tracking: every vertex in the candidate ball, plus the type
    // balls around examples (and example+parameter) are touched.
    let mut touched: BTreeSet<V> = BTreeSet::new();
    for e in inst.examples.iter() {
        touched.extend(bfs::ball(g, &e.tuple, type_radius + param_radius));
    }

    // Baseline: no parameters.
    let (mut best_h, mut best_err) =
        fit_with_params(g, &inst.examples, &[], inst.q, mode, arena);
    let mut tried = 1usize;

    if inst.ell == 1 && best_err > 0.0 && !anchor_vec.is_empty() {
        let candidates = bfs::ball(g, &anchor_vec, param_radius);
        for &w in &candidates {
            tried += 1;
            let err = optimal_error_given_params(
                g,
                &inst.examples,
                &[w],
                inst.q,
                mode,
                arena,
            );
            if err < best_err {
                let (h, e2) =
                    fit_with_params(g, &inst.examples, &[w], inst.q, mode, arena);
                debug_assert_eq!(err, e2);
                best_h = h;
                best_err = err;
                if best_err == 0.0 {
                    break;
                }
            }
        }
    }

    LocalAccessReport {
        hypothesis: best_h,
        error: best_err,
        vertices_touched: touched.len(),
        candidates_tried: tried,
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, Vocabulary};

    use crate::bruteforce::optimal_error;
    use crate::problem::TrainingSequence;

    use super::*;

    fn arena_for(g: &Graph) -> Arc<Mutex<TypeArena>> {
        Arc::new(Mutex::new(TypeArena::new(Arc::clone(g.vocab()))))
    }

    #[test]
    fn touches_sublinearly_many_vertices() {
        // Few examples on a huge bounded-degree graph: the learner must
        // not look at most of it.
        let n = 2000;
        let g = generators::bounded_degree_random(n, 3, 1.0, Vocabulary::empty(), 7);
        let examples = TrainingSequence::from_pairs(
            (0..10u32).map(|i| (vec![V(i * 97)], i % 2 == 0)),
        );
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.1);
        let arena = arena_for(&g);
        let report = local_access_learn(&inst, 2, 1, &arena);
        assert!(
            report.vertices_touched < n / 4,
            "touched {} of {n}",
            report.vertices_touched
        );
    }

    #[test]
    fn matches_brute_force_on_local_targets() {
        // Target: "adjacent to w" with w adjacent to an example — the
        // local candidate set contains the needed parameter.
        let g = generators::path(40, Vocabulary::empty());
        let w = V(20);
        let target = |t: &[V]| g.has_edge(t[0], w);
        // Examples clustered around w so that w is in reach.
        let examples = TrainingSequence::from_pairs(
            (16..25u32).map(|i| (vec![V(i)], target(&[V(i)]))),
        );
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.0);
        let arena = arena_for(&g);
        let eps_star = optimal_error(&inst, &arena);
        let report = local_access_learn(&inst, 2, 1, &arena);
        assert_eq!(eps_star, 0.0);
        assert_eq!(report.error, 0.0);
        assert!(report.hypothesis.params.contains(&w) || report.error == 0.0);
    }

    #[test]
    fn zero_parameters_supported() {
        let g = generators::path(30, Vocabulary::empty());
        let examples = TrainingSequence::from_pairs([(vec![V(3)], true), (vec![V(9)], true)]);
        let inst = ErmInstance::new(&g, examples, 1, 0, 1, 0.0);
        let arena = arena_for(&g);
        let report = local_access_learn(&inst, 2, 1, &arena);
        assert_eq!(report.error, 0.0);
        assert_eq!(report.candidates_tried, 1);
    }

    #[test]
    #[should_panic(expected = "ℓ ≤ 1")]
    fn large_ell_rejected() {
        let g = generators::path(5, Vocabulary::empty());
        let examples = TrainingSequence::from_pairs([(vec![V(0)], true)]);
        let inst = ErmInstance::new(&g, examples, 1, 2, 1, 0.0);
        let arena = arena_for(&g);
        local_access_learn(&inst, 1, 1, &arena);
    }
}
