//! The fixed-parameter tractable learner on nowhere dense classes —
//! Theorem 13 (= Theorem 2), with Lemmas 14, 15 and 16.
//!
//! Pipeline, following Section 5 of the paper:
//!
//! 1. Derive the constants: the locality radius `r = r(q*)` (Fact 5), the
//!    splitter-game radius `R = 3^{ℓ*−1}·(k+2)(2r+1)`, the round count
//!    `s` from the class's splitter bound, and the output hyper-parameters
//!    `ℓ = ℓ*·s`, `q = q* + ⌈log₂ R⌉` — the `(L,Q)`-relaxation.
//! 2. Per round `i` on the derived graph `G^i`:
//!    * compute local types `ltp_{q*,r}` of all examples; *conflicts* are
//!      positive/negative pairs with equal local type, *critical* examples
//!      those involved in conflicts;
//!    * **Lemma 14**: greedily select a small set `X` of pairwise
//!      `>4r+2`-separated centres maximising the number of critical tuples
//!      they affect — outside `N_{4r+2}(X)` no vertex affects more than an
//!      `ε/(ℓ*s)` fraction of conflicts;
//!    * guess `Y ⊆ X`, `|Y| ≤ ℓ*` (exhaustively or greedily — simulating
//!      the paper's non-deterministic guess);
//!    * **Lemma 3**: a Vitali cover turns `Y` into centres `Z` with
//!      pairwise-disjoint `R'`-balls covering `N_{(k+2)(2r+1)}(Y)`;
//!    * play the splitter game: Connector (the learner) picks each `z_j`
//!      with radius `R'`; Splitter's answers `w_j` become this round's
//!      parameters;
//!    * **Lemma 16**: the next graph `G^{i+1}` is the union of the
//!      `R'`-neighbourhoods of `Z` with the answers cut out (isolated,
//!      marked by fresh `B`/`C` colours; distances to `Y` recorded in `D`
//!      colours), plus isolated *type vertices* `t_{I,θ}` standing in for
//!      far-away fragments of surviving critical examples.
//! 3. Finally, all collected answers `w̄` parameterise a type-majority fit
//!    (see [`crate::fit`]) on the *original* graph — the paper's "test all
//!    formulas of rank q" step, done exactly on types.
//!
//! The guarantee `err ≤ ε* + ε` is asserted against brute force in tests
//! and measured in experiment E5; DESIGN.md §4 documents the two
//! engineering modes (greedy guessing, local final rule).

use std::collections::HashMap;
use std::ops::ControlFlow;
use std::sync::Arc;

use folearn_graph::splitter::GraphClass;
use folearn_graph::{bfs, ops, Graph, V};
use folearn_obs::{Counter, Json};
use folearn_types::{gaifman_radius, local::local_type, TypeArena, TypeId};
use parking_lot::Mutex;

use crate::fit::{fit_with_params, TypeMode};
use crate::hypothesis::Hypothesis;
use crate::problem::ErmInstance;

/// How the non-deterministic guess of `Y ⊆ X` is simulated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SearchMode {
    /// Enumerate all `Y ⊆ X` with `|Y| ≤ ℓ*` in every round (the paper's
    /// deterministic simulation; branch count bounded by
    /// [`NdConfig::max_branches`]).
    Exhaustive,
    /// One branch per round: `Y` = the `ℓ*` centres affecting the most
    /// critical tuples. Linear work; quality validated empirically (E11).
    Greedy,
}

/// How the final hypothesis classifies on the original graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FinalRule {
    /// Exact `q`-type partition with `q = q_out` — matches the theorem's
    /// hypothesis space exactly; `O(n^q)` cost (small graphs only).
    Global,
    /// Local `(q*, ρ)`-types with `ρ = 2r + 1` — FPT on sparse graphs;
    /// the engineering default (DESIGN.md §4).
    LocalAuto,
    /// Local `(q*, ρ)`-types with an explicit radius `ρ`.
    Local(usize),
}

/// Configuration of the nowhere-dense learner.
#[derive(Clone, Debug)]
pub struct NdConfig {
    /// The (effectively) nowhere dense class of the background graph —
    /// supplies the splitter round bound and strategy (Fact 4).
    pub class: GraphClass,
    /// Guessing mode for `Y ⊆ X`.
    pub search: SearchMode,
    /// Final classification rule.
    pub final_rule: FinalRule,
    /// Override the locality radius `r(q*)` (Gaifman's bound is already
    /// huge for `q* = 2`; experiment E11 sweeps this).
    pub locality_radius: Option<usize>,
    /// Cap on learner rounds (the theoretical `s` is astronomically safe;
    /// the learner always stops early once conflicts vanish).
    pub max_rounds: Option<usize>,
    /// Cap on explored guess branches in exhaustive mode.
    pub max_branches: usize,
}

impl Default for NdConfig {
    fn default() -> Self {
        Self {
            class: GraphClass::Forest,
            search: SearchMode::Exhaustive,
            final_rule: FinalRule::LocalAuto,
            locality_radius: None,
            max_rounds: Some(4),
            max_branches: 64,
        }
    }
}

/// The derived constants of a run (reported by the experiments).
#[derive(Clone, Copy, Debug)]
pub struct DerivedParams {
    /// Locality radius `r` for conflict detection.
    pub r: usize,
    /// Splitter-game radius `R = 3^{ℓ*−1}·(k+2)(2r+1)`.
    pub big_r: usize,
    /// Round budget `s` (after the practical cap).
    pub s: usize,
    /// Theoretical round budget `s(R)` from the class.
    pub s_theory: usize,
    /// Output parameter bound `ℓ = ℓ*·s` (`L(k,ℓ*,q*)`).
    pub ell_out: usize,
    /// Output quantifier rank `q = q* + ⌈log₂ R⌉` (`Q(k,ℓ*,q*)`).
    pub q_out: usize,
}

/// Outcome of a learner run.
#[derive(Debug)]
pub struct NdReport {
    /// The learned hypothesis.
    pub hypothesis: Hypothesis,
    /// Its training error on the input sequence.
    pub error: f64,
    /// Rounds used on the winning branch.
    pub rounds_used: usize,
    /// Derived constants.
    pub derived: DerivedParams,
    /// Guess branches (leaf evaluations) explored.
    pub branches_explored: usize,
}

impl NdReport {
    /// The shared machine-readable rendering used by the `exp_*` binaries
    /// (derived-constant names match [`DerivedParams`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("error", Json::Num(self.error)),
            ("rounds_used", Json::int(self.rounds_used)),
            ("branches_explored", Json::int(self.branches_explored)),
            (
                "derived",
                Json::obj([
                    ("r", Json::int(self.derived.r)),
                    ("big_r", Json::int(self.derived.big_r)),
                    ("s", Json::int(self.derived.s)),
                    ("s_theory", Json::int(self.derived.s_theory)),
                    ("ell_out", Json::int(self.derived.ell_out)),
                    ("q_out", Json::int(self.derived.q_out)),
                ]),
            ),
            ("hypothesis", Json::str(self.hypothesis.describe())),
        ])
    }
}

/// Run the Theorem 13 learner on an `(L,Q)-FO-ERM` instance: `inst.ell`
/// is `ℓ*` and `inst.q` is `q*`; the returned hypothesis may use up to
/// `ℓ*·s` parameters and (materialised) quantifier rank up to `q_out`.
pub fn nd_learn(
    inst: &ErmInstance<'_>,
    config: &NdConfig,
    arena: &Arc<Mutex<TypeArena>>,
) -> NdReport {
    let k = inst.k.max(1);
    let ell_star = inst.ell;
    let q_star = inst.q;
    let eps = if inst.epsilon > 0.0 { inst.epsilon } else { 0.1 };

    let r = config
        .locality_radius
        .unwrap_or_else(|| gaifman_radius(q_star))
        .max(1);
    let base = (k + 2) * (2 * r + 1);
    let big_r = 3usize.saturating_pow(ell_star.saturating_sub(1) as u32) * base;
    let s_theory = config.class.splitter_rounds(big_r);
    let s = config
        .max_rounds
        .map_or(s_theory, |m| m.min(s_theory))
        .max(1);
    let q_out = q_star + (usize::BITS - big_r.max(2).leading_zeros()) as usize;
    let derived = DerivedParams {
        r,
        big_r,
        s,
        s_theory,
        ell_out: ell_star * s,
        q_out,
    };
    let sp = folearn_obs::span("nd.learn");
    folearn_obs::meta("r", Json::int(derived.r));
    folearn_obs::meta("big_r", Json::int(derived.big_r));
    folearn_obs::meta("s", Json::int(derived.s));
    folearn_obs::meta("ell_out", Json::int(derived.ell_out));
    folearn_obs::meta("q_out", Json::int(derived.q_out));

    let final_mode = match config.final_rule {
        FinalRule::Global => TypeMode::Global,
        FinalRule::LocalAuto => TypeMode::Local { r: 2 * r + 1 },
        FinalRule::Local(rho) => TypeMode::Local { r: rho },
    };
    // In global mode the fit may use the full output rank; locally we keep
    // rank q* and lean on the radius (see module docs).
    let fit_q = match final_mode.radius() {
        None => q_out.min(q_star + 2),
        Some(_) => q_star,
    };

    // Baseline branch: no parameters (covers ℓ* = 0, conflict-free inputs,
    // and Remark 17's non-critical examples).
    let (mut best_h, mut best_err) =
        fit_with_params(inst.graph, &inst.examples, &[], fit_q, final_mode, arena);
    let mut best_rounds = 0usize;
    let mut branches = 1usize;

    if ell_star > 0 && best_err > 0.0 && !inst.examples.is_empty() {
        let root = RoundState::initial(inst);
        let mut ctx = SearchCtx {
            inst,
            config,
            derived,
            eps,
            final_mode,
            fit_q,
            arena,
            branches: &mut branches,
            best_h: &mut best_h,
            best_err: &mut best_err,
            best_rounds: &mut best_rounds,
        };
        explore(&mut ctx, &root, Vec::new(), 0);
    }

    folearn_obs::count(Counter::Branches, branches as u64);
    drop(sp);
    NdReport {
        error: best_err,
        hypothesis: best_h,
        rounds_used: best_rounds,
        derived,
        branches_explored: branches,
    }
}

// ---------------------------------------------------------------------------
// Search driver
// ---------------------------------------------------------------------------

struct SearchCtx<'a, 'g> {
    inst: &'a ErmInstance<'g>,
    config: &'a NdConfig,
    derived: DerivedParams,
    eps: f64,
    final_mode: TypeMode,
    fit_q: usize,
    arena: &'a Arc<Mutex<TypeArena>>,
    branches: &'a mut usize,
    best_h: &'a mut Hypothesis,
    best_err: &'a mut f64,
    best_rounds: &'a mut usize,
}

fn evaluate_leaf(ctx: &mut SearchCtx<'_, '_>, params: &[V], rounds: usize) {
    *ctx.branches += 1;
    let (h, err) = fit_with_params(
        ctx.inst.graph,
        &ctx.inst.examples,
        params,
        ctx.fit_q,
        ctx.final_mode,
        ctx.arena,
    );
    if err < *ctx.best_err {
        *ctx.best_h = h;
        *ctx.best_err = err;
        *ctx.best_rounds = rounds;
    }
}

fn explore(ctx: &mut SearchCtx<'_, '_>, state: &RoundState, params: Vec<V>, round: usize) {
    if *ctx.best_err == 0.0 || *ctx.branches >= ctx.config.max_branches {
        return;
    }
    // Every parameter prefix is a candidate hypothesis: stopping early is
    // always allowed (later rounds only refine the remaining conflicts).
    if !params.is_empty() {
        evaluate_leaf(ctx, &params, round);
        if *ctx.best_err == 0.0 {
            return;
        }
    }
    if round >= ctx.derived.s {
        return;
    }
    let critical = critical_tuples(state, ctx.derived.r, ctx.inst.q);
    folearn_obs::count(Counter::CriticalTuples, critical.len() as u64);
    if critical.is_empty() {
        return; // conflict-free: nothing left to resolve
    }
    let cap_theory = ((ctx.inst.k.max(1) * ctx.inst.ell.max(1) * ctx.derived.s) as f64
        / ctx.eps)
        .ceil() as usize;
    let critical_refs: Vec<&[V]> = critical
        .iter()
        .map(|&i| state.examples[i].tuple.as_slice())
        .collect();
    let x = select_centers(
        &state.graph,
        &critical_refs,
        ctx.derived.r,
        cap_theory.clamp(1, 12),
    );
    folearn_obs::count(Counter::Centers, x.len() as u64);
    if x.is_empty() {
        return;
    }
    let y_choices: Vec<Vec<V>> = match ctx.config.search {
        SearchMode::Greedy => {
            vec![x.iter().copied().take(ctx.inst.ell.max(1)).collect()]
        }
        SearchMode::Exhaustive => subsets_up_to(&x, ctx.inst.ell.max(1)),
    };
    for y in y_choices {
        if *ctx.best_err == 0.0 || *ctx.branches >= ctx.config.max_branches {
            return;
        }
        let step = advance_round(state, &y, ctx.derived.r, ctx.inst, ctx.derived.big_r, ctx.config);
        if step.new_params.is_empty() {
            continue;
        }
        let mut next_params = params.clone();
        next_params.extend(step.new_params.iter().copied());
        explore(ctx, &step.next, next_params, round + 1);
    }
}

fn subsets_up_to(x: &[V], max_size: usize) -> Vec<Vec<V>> {
    let cap = x.len().min(16);
    let mut out: Vec<Vec<V>> = (1u32..(1u32 << cap))
        .filter(|m| (m.count_ones() as usize) <= max_size)
        .map(|mask| {
            (0..cap)
                .filter(|i| mask >> i & 1 == 1)
                .map(|i| x[i])
                .collect()
        })
        .collect();
    // Larger guesses first: they tend to resolve more conflicts per round.
    out.sort_by_key(|s: &Vec<V>| std::cmp::Reverse(s.len()));
    out
}

// ---------------------------------------------------------------------------
// Round state: the derived graphs G^i and training sequences Λ^i
// ---------------------------------------------------------------------------

/// Provenance of a vertex of a derived graph `G^i`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Origin {
    /// Corresponds to this vertex of the original graph.
    Real(V),
    /// A cut-out splitter answer (kept isolated, `B`-coloured).
    Marker(V),
    /// A type vertex `t_{I,θ}` standing in for a far example fragment.
    TypeVertex,
}

#[derive(Clone, Debug)]
struct RoundExample {
    tuple: Vec<V>,
    label: bool,
}

struct RoundState {
    graph: Graph,
    origin: Vec<Origin>,
    examples: Vec<RoundExample>,
}

impl RoundState {
    fn initial(inst: &ErmInstance<'_>) -> Self {
        Self {
            graph: inst.graph.clone(),
            origin: inst.graph.vertices().map(Origin::Real).collect(),
            examples: inst
                .examples
                .iter()
                .map(|e| RoundExample {
                    tuple: e.tuple.clone(),
                    label: e.label,
                })
                .collect(),
        }
    }
}

/// Indices of examples whose local `(q*, r)`-type is realised with both
/// labels — the critical examples `Γ^i`.
fn critical_tuples(state: &RoundState, r: usize, q_star: usize) -> Vec<usize> {
    if state.examples.is_empty() {
        return Vec::new();
    }
    // Per-example local types are independent — compute them in parallel
    // over sharded arenas. The batch helper is id-identical to the
    // sequential loop, so conflict grouping is unaffected.
    let mut round_arena = TypeArena::new(Arc::clone(state.graph.vocab()));
    let tuples: Vec<Vec<V>> = state.examples.iter().map(|e| e.tuple.clone()).collect();
    let types: Vec<TypeId> = folearn_types::par::par_counting_local_types(
        &state.graph,
        &mut round_arena,
        &tuples,
        q_star,
        r,
        1,
    );
    let mut seen: HashMap<TypeId, (bool, bool)> = HashMap::new();
    for (e, &t) in state.examples.iter().zip(&types) {
        let entry = seen.entry(t).or_insert((false, false));
        if e.label {
            entry.0 = true;
        } else {
            entry.1 = true;
        }
    }
    state
        .examples
        .iter()
        .zip(&types)
        .enumerate()
        .filter(|(_, (_, t))| {
            let (p, n) = seen[*t];
            p && n
        })
        .map(|(i, _)| i)
        .collect()
}

/// Lemma 14: greedily pick pairwise `>4r+2`-separated centres maximising
/// `|Γ^i(x)|` (the number of critical tuples whose `(2r+1)`-ball contains
/// the centre), capped at `cap ≈ ⌈kℓ*s/ε⌉`.
pub(crate) fn select_centers(
    g: &Graph,
    critical_tuples: &[&[V]],
    r: usize,
    cap: usize,
) -> Vec<V> {
    let n = g.num_vertices();
    // Γ scores in parallel: each critical tuple adds 1 to every vertex of
    // its (2r+1)-ball. Workers reuse pooled BFS buffers and accumulate
    // partial score vectors; summing the partials is commutative, so the
    // scores are scheduling-independent.
    let partials = rayon::sweep::worker_sweep(
        critical_tuples.len(),
        rayon::sweep::default_block_size(critical_tuples.len()),
        |_| (bfs::DistanceBuffers::new(), vec![0u32; n]),
        |(bufs, partial): &mut (bfs::DistanceBuffers, Vec<u32>), range| {
            for i in range {
                let dist = bufs.bounded_distances_in(g, critical_tuples[i], 2 * r + 1);
                for (score, &d) in partial.iter_mut().zip(dist) {
                    *score += u32::from(d != u32::MAX);
                }
            }
            ControlFlow::Continue(())
        },
    );
    let mut gamma = vec![0u32; n];
    for (_, partial) in partials {
        for (total, p) in gamma.iter_mut().zip(&partial) {
            *total += p;
        }
    }
    // The greedy separation phase is inherently sequential (each pick
    // blocks a ball for later picks) but short: at most `cap` BFS runs.
    let mut bufs = bfs::DistanceBuffers::new();
    let mut chosen: Vec<V> = Vec::new();
    let mut blocked = vec![false; n];
    while chosen.len() < cap {
        let Some(best) = g
            .vertices()
            .filter(|v| !blocked[v.index()] && gamma[v.index()] > 0)
            .max_by_key(|v| gamma[v.index()])
        else {
            break;
        };
        chosen.push(best);
        let near = bufs.bounded_distances_in(g, &[best], 4 * r + 2);
        for (b, &d) in blocked.iter_mut().zip(near) {
            *b |= d != u32::MAX;
        }
    }
    chosen
}

/// One learner round's outputs.
struct RoundStep {
    /// Splitter answers mapped back to *original-graph* vertices.
    new_params: Vec<V>,
    /// The next state `(G^{i+1}, Λ^{i+1})`.
    next: RoundState,
}

#[derive(Clone, Copy)]
enum Slot {
    Mapped(V),
    TypeVertex(usize),
    Unassigned,
}

/// Lemma 3 + splitter answers + the Lemma 16 construction.
fn advance_round(
    state: &RoundState,
    y: &[V],
    r: usize,
    inst: &ErmInstance<'_>,
    big_r: usize,
    config: &NdConfig,
) -> RoundStep {
    let g = &state.graph;
    let k = inst.k.max(1);
    let base = (k + 2) * (2 * r + 1);
    let cover = crate::covering::vitali_cover(g, y, base);
    let r_prime = cover.radius.min(big_r);
    let z = &cover.centers;

    // Splitter answers to the Connector picks (z_j, R').
    let mut strategy = config.class.make_splitter(g);
    let answers: Vec<V> = z.iter().map(|&zj| strategy.answer(g, zj, r_prime)).collect();
    let new_params: Vec<V> = answers
        .iter()
        .filter_map(|&w| match state.origin[w.index()] {
            Origin::Real(orig) => Some(orig),
            _ => None,
        })
        .collect();

    // --- Lemma 16 construction -------------------------------------------
    // Vertex set: N_{R'}(Z) plus the previously isolated vertices U*.
    let covered = bfs::bounded_distances(g, z, r_prime);
    let keep: Vec<V> = g
        .vertices()
        .filter(|&v| covered[v.index()] != u32::MAX || g.is_isolated(v))
        .collect();

    let sub = ops::induced_subgraph(g, &keep);
    // Step 3: cut out the splitter answers.
    let answers_in_sub: Vec<V> = answers.iter().filter_map(|&w| sub.to_new(w)).collect();
    let cut = ops::delete_incident_edges(&sub.graph, &answers_in_sub);

    // Steps 1–3 colours: D (distance to each y_j up to (k+2)(2r+1)),
    // C (old neighbourhoods of the answers), B (the answers). The current
    // vocabulary size tags the names so successive rounds never collide.
    let tag = g.vocab().num_colors();
    let mut new_colors: Vec<(String, Vec<V>)> = Vec::new();
    for (j, &yj) in y.iter().enumerate() {
        let dj = bfs::bounded_distances(g, &[yj], base);
        for d in 0..=base {
            let marked: Vec<V> = keep
                .iter()
                .filter(|&&v| dj[v.index()] != u32::MAX && dj[v.index()] as usize == d)
                .filter_map(|&v| sub.to_new(v))
                .collect();
            if !marked.is_empty() {
                new_colors.push((format!("__D{tag}_{j}_{d}"), marked));
            }
        }
    }
    for (j, &w) in answers.iter().enumerate() {
        let neigh: Vec<V> = g
            .neighbors(w)
            .iter()
            .filter_map(|&u| sub.to_new(V(u)))
            .collect();
        new_colors.push((format!("__C{tag}_{j}"), neigh));
        if let Some(wn) = sub.to_new(w) {
            new_colors.push((format!("__B{tag}_{j}"), vec![wn]));
        }
    }
    let colored = {
        let refs: Vec<(&str, Vec<V>)> = new_colors
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect();
        ops::expand_colors(&cut, &refs)
    };

    // Step 4 + example projection (Λ^{i+1}): keep critical examples
    // touching N_{6r+3}(Y); replace far-away fragments by type vertices.
    let horizon = (6 * r + 3).min(base);
    let dist_y = bfs::bounded_distances(g, y, base);
    let mut round_arena = TypeArena::new(Arc::clone(g.vocab()));
    let mut registry: HashMap<(Vec<usize>, TypeId), usize> = HashMap::new();
    let mut planned: Vec<(Vec<Slot>, bool)> = Vec::new();
    let mut bufs = bfs::DistanceBuffers::new();
    for e in &state.examples {
        let touches = e
            .tuple
            .iter()
            .any(|v| (dist_y[v.index()] as usize).le(&horizon) && dist_y[v.index()] != u32::MAX);
        if !touches {
            continue;
        }
        let comps = linkage_components(g, &e.tuple, 2 * r + 1, &mut bufs);
        let mut slots = vec![Slot::Unassigned; e.tuple.len()];
        let mut ok = true;
        for comp in comps {
            let near = comp.iter().any(|&a| {
                let d = dist_y[e.tuple[a].index()];
                d != u32::MAX && (d as usize) <= horizon
            });
            if near {
                for &a in &comp {
                    match sub.to_new(e.tuple[a]) {
                        Some(nv) => slots[a] = Slot::Mapped(nv),
                        None => ok = false,
                    }
                }
            } else {
                let restricted: Vec<V> = comp.iter().map(|&a| e.tuple[a]).collect();
                let theta = local_type(g, &mut round_arena, &restricted, inst.q, r);
                let next_id = registry.len();
                let tv = *registry.entry((comp.clone(), theta)).or_insert(next_id);
                for &a in &comp {
                    slots[a] = Slot::TypeVertex(tv);
                }
            }
        }
        if ok {
            planned.push((slots, e.label));
        }
    }

    // Materialise the type vertices as fresh isolated coloured vertices
    // (each colour `A_{I,θ}` encodes which fragment-type it represents).
    let (with_tv, first_tv) = ops::add_isolated_vertices(&colored, registry.len());
    let tv_colors: Vec<(String, Vec<V>)> = registry
        .iter()
        .map(|((comp, theta), idx)| {
            (
                format!("__A{tag}_{}_{}", fmt_comp(comp), theta.0),
                vec![V(first_tv.0 + *idx as u32)],
            )
        })
        .collect();
    let final_graph = {
        let refs: Vec<(&str, Vec<V>)> = tv_colors
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect();
        ops::expand_colors(&with_tv, &refs)
    };

    // Provenance of the new graph's vertices.
    let mut origin: Vec<Origin> = sub
        .to_old
        .iter()
        .map(|&old| match state.origin[old.index()] {
            Origin::Real(v) => {
                if answers.contains(&old) {
                    Origin::Marker(v)
                } else {
                    Origin::Real(v)
                }
            }
            other => other,
        })
        .collect();
    origin.extend(std::iter::repeat_n(Origin::TypeVertex, registry.len()));

    let examples = planned
        .into_iter()
        .map(|(slots, label)| RoundExample {
            tuple: slots
                .into_iter()
                .map(|s| match s {
                    Slot::Mapped(v) => v,
                    Slot::TypeVertex(i) => V(first_tv.0 + i as u32),
                    Slot::Unassigned => unreachable!("all slots are assigned"),
                })
                .collect(),
            label,
        })
        .collect();

    RoundStep {
        new_params,
        next: RoundState {
            graph: final_graph,
            origin,
            examples,
        },
    }
}

fn fmt_comp(comp: &[usize]) -> String {
    comp.iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join("-")
}

/// The linkage graph `H_v̄` of Lemma 16: positions `a, b` are linked when
/// `dist(v_a, v_b) ≤ 2r+1` (equal vertices are distance 0 and must
/// project together); returns connected components as sorted index lists.
fn linkage_components(
    g: &Graph,
    tuple: &[V],
    threshold: usize,
    bufs: &mut bfs::DistanceBuffers,
) -> Vec<Vec<usize>> {
    let k = tuple.len();
    let mut adj = vec![Vec::new(); k];
    for a in 0..k {
        let dist = bufs.bounded_distances_in(g, &[tuple[a]], threshold);
        for b in (a + 1)..k {
            if dist[tuple[b].index()] != u32::MAX {
                adj[a].push(b);
                adj[b].push(a);
            }
        }
    }
    let mut comp_id = vec![usize::MAX; k];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    for start in 0..k {
        if comp_id[start] != usize::MAX {
            continue;
        }
        let id = comps.len();
        comp_id[start] = id;
        let mut stack = vec![start];
        let mut members = Vec::new();
        while let Some(a) = stack.pop() {
            members.push(a);
            for &b in &adj[a] {
                if comp_id[b] == usize::MAX {
                    comp_id[b] = id;
                    stack.push(b);
                }
            }
        }
        members.sort_unstable();
        comps.push(members);
    }
    comps
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ColorId, Vocabulary};

    use crate::bruteforce::optimal_error;
    use crate::problem::TrainingSequence;

    use super::*;

    fn arena_for(g: &Graph) -> Arc<Mutex<TypeArena>> {
        Arc::new(Mutex::new(TypeArena::new(Arc::clone(g.vocab()))))
    }

    fn config() -> NdConfig {
        NdConfig {
            class: GraphClass::Forest,
            search: SearchMode::Exhaustive,
            final_rule: FinalRule::LocalAuto,
            locality_radius: Some(1),
            max_rounds: Some(3),
            max_branches: 200,
        }
    }

    #[test]
    fn linkage_components_split_far_positions() {
        let g = generators::path(20, Vocabulary::empty());
        let mut bufs = bfs::DistanceBuffers::new();
        let comps = linkage_components(&g, &[V(0), V(1), V(15)], 3, &mut bufs);
        assert_eq!(comps, vec![vec![0, 1], vec![2]]);
        let comps2 = linkage_components(&g, &[V(0), V(0)], 3, &mut bufs);
        assert_eq!(comps2, vec![vec![0, 1]]);
    }

    #[test]
    fn center_selection_is_separated() {
        let g = generators::path(40, Vocabulary::empty());
        let t1: &[V] = &[V(5)];
        let t2: &[V] = &[V(30)];
        let r = 1;
        let centers = select_centers(&g, &[t1, t2], r, 8);
        assert!(!centers.is_empty());
        for (i, &a) in centers.iter().enumerate() {
            for &b in &centers[i + 1..] {
                let d = bfs::distance(&g, a, b).unwrap_or(usize::MAX);
                assert!(d > 4 * r + 2, "centres too close: {a} {b}");
            }
        }
    }

    #[test]
    fn conflict_free_input_needs_no_parameters() {
        let vocab = Vocabulary::new(["Red"]);
        let g = generators::periodically_colored(
            &generators::path(12, vocab),
            ColorId(0),
            3,
        );
        let examples = TrainingSequence::label_all_tuples(&g, 1, |t| {
            g.has_color(t[0], ColorId(0))
        });
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.05);
        let arena = arena_for(&g);
        let report = nd_learn(&inst, &config(), &arena);
        assert_eq!(report.error, 0.0);
        assert_eq!(report.rounds_used, 0);
        assert!(report.hypothesis.params.is_empty());
    }

    #[test]
    fn learns_hidden_vertex_target_within_bound() {
        // Target "x is adjacent to w or equals w" for a hidden w — needs a
        // parameter; ε* = 0 with ℓ* = 1, q* = 1.
        let g = generators::path(16, Vocabulary::empty());
        let w = V(8);
        let target = |t: &[V]| t[0] == w || g.has_edge(t[0], w);
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.2);
        let arena = arena_for(&g);
        let eps_star = optimal_error(&inst, &arena);
        assert_eq!(eps_star, 0.0);
        let report = nd_learn(&inst, &config(), &arena);
        assert!(
            report.error <= eps_star + inst.epsilon + 1e-9,
            "err {} > ε* {} + ε {}",
            report.error,
            eps_star,
            inst.epsilon
        );
        assert!(!report.hypothesis.params.is_empty());
    }

    #[test]
    fn learns_on_random_tree() {
        let g = generators::random_tree(24, Vocabulary::empty(), 5);
        let w = V(11);
        let target = |t: &[V]| t[0] == w || g.has_edge(t[0], w);
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.2);
        let arena = arena_for(&g);
        let eps_star = optimal_error(&inst, &arena);
        let report = nd_learn(&inst, &config(), &arena);
        assert!(
            report.error <= eps_star + inst.epsilon + 1e-9,
            "err {} > ε* {} + ε",
            report.error,
            eps_star
        );
    }

    #[test]
    fn agnostic_noise_is_tolerated() {
        // Flip a few labels: ε* > 0; the learner must stay within ε.
        let g = generators::path(14, Vocabulary::empty());
        let w = V(7);
        let mut examples = TrainingSequence::new();
        for v in g.vertices() {
            let mut label = v == w || g.has_edge(v, w);
            if v == V(0) {
                label = !label; // adversarial noise
            }
            examples.push(crate::problem::Example::new(vec![v], label));
        }
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.25);
        let arena = arena_for(&g);
        let eps_star = optimal_error(&inst, &arena);
        let report = nd_learn(&inst, &config(), &arena);
        assert!(
            report.error <= eps_star + inst.epsilon + 1e-9,
            "err {} > ε* {} + ε",
            report.error,
            eps_star
        );
    }

    #[test]
    fn greedy_mode_close_to_exhaustive() {
        let g = generators::random_tree(20, Vocabulary::empty(), 9);
        let w = V(10);
        let target = |t: &[V]| t[0] == w || g.has_edge(t[0], w);
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.25);
        let arena = arena_for(&g);
        let mut cfg = config();
        cfg.search = SearchMode::Greedy;
        let greedy = nd_learn(&inst, &cfg, &arena);
        let exhaustive = nd_learn(&inst, &config(), &arena);
        assert!(greedy.error + 1e-9 >= exhaustive.error);
        assert!(greedy.branches_explored <= exhaustive.branches_explored);
    }

    #[test]
    fn learns_pair_query_with_parameter() {
        // k = 2: "x0 and x1 are both within distance 1 of w" — exercises
        // the Lemma 16 projection with genuine tuple linkage components
        // (positions can fall in different fragments).
        let g = generators::path(12, Vocabulary::empty());
        let w = V(6);
        let near = |v: V| v == w || g.has_edge(v, w);
        let target = |t: &[V]| near(t[0]) && near(t[1]);
        let examples = TrainingSequence::label_all_tuples(&g, 2, target);
        let inst = ErmInstance::new(&g, examples, 2, 1, 1, 0.2);
        let arena = arena_for(&g);
        let eps_star = optimal_error(&inst, &arena);
        let mut cfg = config();
        cfg.max_branches = 120;
        let report = nd_learn(&inst, &cfg, &arena);
        assert!(
            report.error <= eps_star + inst.epsilon + 1e-9,
            "err {} > ε* {} + ε",
            report.error,
            eps_star
        );
    }

    #[test]
    fn somewhere_dense_heuristic_degrades_gracefully() {
        // On a clique (not nowhere dense) with the heuristic class the
        // learner must still return *some* hypothesis no worse than the
        // parameterless baseline.
        let g = generators::clique(8, Vocabulary::empty());
        let examples = TrainingSequence::label_all_tuples(&g, 1, |t| t[0].0 < 4);
        let inst = ErmInstance::new(&g, examples.clone(), 1, 1, 1, 0.2);
        let arena = arena_for(&g);
        let cfg = NdConfig {
            class: GraphClass::Heuristic { assumed_rounds: 3 },
            ..config()
        };
        let report = nd_learn(&inst, &cfg, &arena);
        let (_, baseline) = crate::fit::fit_with_params(
            &g,
            &examples,
            &[],
            1,
            crate::fit::TypeMode::Local { r: 3 },
            &arena,
        );
        assert!(report.error <= baseline + 1e-9);
    }

    #[test]
    fn derived_constants_follow_the_paper() {
        let g = generators::path(6, Vocabulary::empty());
        let examples = TrainingSequence::label_all_tuples(&g, 1, |_| true);
        let inst = ErmInstance::new(&g, examples, 1, 2, 1, 0.1);
        let arena = arena_for(&g);
        let cfg = NdConfig {
            locality_radius: None, // use Gaifman's r(1) = 1
            ..config()
        };
        let report = nd_learn(&inst, &cfg, &arena);
        // r(1) = 4, base = (k+2)(2r+1) = 27, R = 3^{ℓ*−1}·27 = 81.
        assert_eq!(report.derived.r, 4);
        assert_eq!(report.derived.big_r, 81);
        assert_eq!(report.derived.s_theory, 81 + 2); // forest bound r+2
        assert_eq!(report.derived.ell_out, 2 * report.derived.s);
        assert!(report.derived.q_out > 7); // q* + ⌈log₂ 81⌉
    }
}
