//! The realisable `k = 1` learner — Proposition 12 / Algorithm 2.
//!
//! Under the promise that some `h_{φ,w̄} ∈ H_{1,ℓ,q}(G)` is consistent
//! with the training data, Algorithm 2 finds a consistent hypothesis with
//! `O(|Φ'| · ℓ · n)` model-checking calls instead of `n^ℓ` brute force:
//! for each candidate formula it grows the parameter tuple one entry at a
//! time, keeping a prefix only if a model-checking query certifies that it
//! *extends* to a fully consistent parameter setting.
//!
//! The certificate is the paper's sentence (over `G` expanded with unary
//! relations `P_+`/`P_-` marking the positive/negative examples):
//!
//! ```text
//! ∃y_{i+1} … ∃y_ℓ ∀x ((P_+ x → φ_i) ∧ (P_- x → ¬φ_i))
//! ```
//!
//! The paper additionally encodes the already-fixed prefix `w_1 … w_i`
//! via singleton colours `S_j` so the query is a *sentence*; we bind the
//! prefix directly in the evaluator's assignment, which is semantically
//! identical (the colour-guarded sentence builder is exercised in tests
//! via [`feasibility_sentence`]).
//!
//! The candidate set `Φ'` is the finite normal-form family of the paper;
//! callers pass the finite candidate family to search (see DESIGN.md §4 on
//! why we never enumerate all normal-form formulas).

use folearn_graph::{ops, Graph, V};
use folearn_logic::eval::{eval, Assignment};
use folearn_logic::transform::bind_params_with_colors;
use folearn_logic::vm::{get_bit, iter_ones, EvalEngine, Evaluator, Program, VmGraph};
use folearn_logic::{Formula, Var};

use crate::problem::TrainingSequence;

/// Names used for the example-marker colours.
pub const POS_COLOR: &str = "__lambda_pos";
/// Negative-example marker colour name.
pub const NEG_COLOR: &str = "__lambda_neg";

/// Result of the realisable search.
#[derive(Debug, Clone)]
pub struct RealizableResult {
    /// The consistent candidate formula `φ(x_0; x_1 … x_ℓ)`.
    pub formula: Formula,
    /// The parameter assignment `w̄` (for variables `x_1 … x_ℓ`).
    pub params: Vec<V>,
    /// Model-checking calls performed.
    pub mc_calls: usize,
}

/// Run Algorithm 2: find a candidate formula and parameters consistent
/// with all examples, or `None` when no candidate admits any (the promise
/// is violated or `Φ'` is too small).
///
/// Candidates use variable `x0` for the instance and `x1 … xℓ` for the
/// parameters.
///
/// # Panics
/// Panics if the examples are not unary.
pub fn realizable_k1(
    g: &Graph,
    examples: &TrainingSequence,
    candidates: &[Formula],
    ell: usize,
) -> Option<RealizableResult> {
    realizable_k1_with_engine(g, examples, candidates, ell, EvalEngine::TreeWalk)
}

/// [`realizable_k1`] with an explicit formula-evaluation engine.
///
/// Both engines run the same prefix-growth search and return the same
/// `(formula, params)` (vertices are scanned in ascending order either
/// way). They differ in how a prefix level is certified: the tree-walker
/// model-checks one candidate vertex at a time (up to `n` calls per
/// level), while the VM compiles the feasibility formula with `x_i` as
/// the batch axis and answers *all* `n` candidate vertices in one run —
/// so `mc_calls` counts one batched scan per level instead of per-vertex
/// queries.
pub fn realizable_k1_with_engine(
    g: &Graph,
    examples: &TrainingSequence,
    candidates: &[Formula],
    ell: usize,
    engine: EvalEngine,
) -> Option<RealizableResult> {
    assert!(
        examples.is_empty() || examples.arity() == 1,
        "Proposition 12 is the k = 1 case"
    );
    let marked = mark_examples(g, examples);
    let pos = marked.vocab().color_by_name(POS_COLOR).expect("just added");
    let neg = marked.vocab().color_by_name(NEG_COLOR).expect("just added");
    let vg_marked = match engine {
        EvalEngine::TreeWalk => None,
        EvalEngine::Vm => Some(VmGraph::new(&marked)),
    };
    let mut mc_calls = 0usize;

    for phi in candidates {
        // consistency(x0) = (P_+ x0 → φ) ∧ (P_- x0 → ¬φ)
        let consistency = Formula::and([
            Formula::Color(pos, 0).implies(phi.clone()),
            Formula::Color(neg, 0).implies(phi.clone().not()),
        ]);
        let all_consistent = Formula::forall(0, consistency);

        let params = match &vg_marked {
            None => prefix_search_tree(&marked, &all_consistent, ell, &mut mc_calls),
            Some(vg) => prefix_search_vm(vg, &all_consistent, ell, &mut mc_calls),
        };
        let Some(params) = params else { continue };

        // Final sanity: the hypothesis really is consistent.
        let err = match engine {
            EvalEngine::TreeWalk => {
                let mut scratch = Assignment::new();
                examples.error_of(|t| {
                    scratch.reset_to_tuple(t);
                    for (j, &w) in params.iter().enumerate() {
                        scratch.set((j + 1) as Var, w);
                    }
                    eval(g, phi, &mut scratch)
                })
            }
            EvalEngine::Vm => {
                // One batched run classifies every vertex; examples then
                // index into the verdict bitset.
                let assigned: Vec<Var> = (1..=ell).map(|j| j as Var).collect();
                let prog = Program::compile(phi, 0, &assigned);
                let vg = VmGraph::new(g);
                let bindings: Vec<(Var, V)> = params
                    .iter()
                    .enumerate()
                    .map(|(j, &w)| ((j + 1) as Var, w))
                    .collect();
                let mut ev = Evaluator::new(&prog, &vg);
                let verdicts = ev.run(&bindings).to_vec();
                examples.error_of(|t| get_bit(&verdicts, t[0].index()))
            }
        };
        if err == 0.0 {
            return Some(RealizableResult {
                formula: phi.clone(),
                params,
                mc_calls,
            });
        }
    }
    None
}

/// Grow the parameter prefix with per-vertex tree-walker queries; returns
/// the full parameter tuple or `None` on a dead end.
fn prefix_search_tree(
    marked: &Graph,
    all_consistent: &Formula,
    ell: usize,
    mc_calls: &mut usize,
) -> Option<Vec<V>> {
    let mut assignment = Assignment::new();
    let mut params: Vec<V> = Vec::with_capacity(ell);
    for i in 1..=ell {
        // Try to fix x_i := u such that the remainder stays feasible. The
        // feasibility formula depends only on the level, so build it once.
        let mut check = all_consistent.clone();
        for j in (i + 1)..=ell {
            check = Formula::exists(j as Var, check);
        }
        let mut found = false;
        for u in marked.vertices() {
            assignment.set(i as Var, u);
            *mc_calls += 1;
            if eval(marked, &check, &mut assignment) {
                params.push(u);
                found = true;
                break;
            }
        }
        if !found {
            return None;
        }
    }
    // ℓ = 0 case: still must verify the candidate itself.
    if ell == 0 {
        *mc_calls += 1;
        if !eval(marked, all_consistent, &mut assignment) {
            return None;
        }
    }
    Some(params)
}

/// Grow the parameter prefix on the VM: each level compiles the
/// feasibility formula with `x_i` as the batch axis, and one run yields a
/// bitset of feasible vertices — the lowest set lane is exactly the first
/// vertex the tree-walker's ascending scan would accept.
fn prefix_search_vm(
    vg: &VmGraph,
    all_consistent: &Formula,
    ell: usize,
    mc_calls: &mut usize,
) -> Option<Vec<V>> {
    if ell == 0 {
        *mc_calls += 1;
        let prog = Program::compile_single(all_consistent, &[]);
        let mut ev = Evaluator::new(&prog, vg);
        return ev.run_bool(&[]).then(Vec::new);
    }
    let mut params: Vec<V> = Vec::with_capacity(ell);
    for i in 1..=ell {
        let mut check = all_consistent.clone();
        for j in (i + 1)..=ell {
            check = Formula::exists(j as Var, check);
        }
        let assigned: Vec<Var> = (1..i).map(|j| j as Var).collect();
        let prog = Program::compile(&check, i as Var, &assigned);
        let bindings: Vec<(Var, V)> = params
            .iter()
            .enumerate()
            .map(|(j, &w)| ((j + 1) as Var, w))
            .collect();
        let mut ev = Evaluator::new(&prog, vg);
        *mc_calls += 1;
        let verdicts = ev.run(&bindings).to_vec();
        let first = iter_ones(&verdicts).next();
        match first {
            Some(lane) => params.push(V(lane as u32)),
            None => return None,
        }
    }
    Some(params)
}

/// The paper's literal colour-guarded feasibility *sentence* for a fixed
/// prefix length `i`: `∃y_{i+1} … ∃y_ℓ ∀x ((P_+x → φ_i) ∧ (P_-x → ¬φ_i))`
/// with `φ_i = ∃y_1 … ∃y_i (⋀_j S_j y_j ∧ φ)`. Requires the graph to carry
/// singleton colours `S_1 … S_i` for the prefix; used to cross-check the
/// direct-binding implementation.
pub fn feasibility_sentence(
    phi: &Formula,
    ell: usize,
    prefix_len: usize,
    s_colors: &[folearn_graph::ColorId],
    pos: folearn_graph::ColorId,
    neg: folearn_graph::ColorId,
) -> Formula {
    assert!(prefix_len <= ell && s_colors.len() >= prefix_len);
    let guarded: Vec<(Var, folearn_graph::ColorId)> = (1..=prefix_len)
        .map(|j| (j as Var, s_colors[j - 1]))
        .collect();
    let phi_i = bind_params_with_colors(phi, &guarded);
    let consistency = Formula::and([
        Formula::Color(pos, 0).implies(phi_i.clone()),
        Formula::Color(neg, 0).implies(phi_i.not()),
    ]);
    let mut out = Formula::forall(0, consistency);
    for j in ((prefix_len + 1)..=ell).rev() {
        out = Formula::exists(j as Var, out);
    }
    out
}

/// Expand `g` with the `P_+`/`P_-` marker colours for a unary training
/// sequence.
pub fn mark_examples(g: &Graph, examples: &TrainingSequence) -> Graph {
    let pos: Vec<V> = examples.positives().map(|e| e.tuple[0]).collect();
    let neg: Vec<V> = examples.negatives().map(|e| e.tuple[0]).collect();
    ops::expand_colors(g, &[(POS_COLOR, pos), (NEG_COLOR, neg)])
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ColorId, Vocabulary};
    use folearn_logic::eval::models;
    use folearn_logic::parse;

    use crate::problem::Example;

    use super::*;

    fn red_path(n: usize, stride: usize) -> Graph {
        let g = generators::path(n, Vocabulary::new(["Red"]));
        generators::periodically_colored(&g, ColorId(0), stride)
    }

    #[test]
    fn learns_parameter_free_target() {
        let g = red_path(8, 3);
        let vocab = g.vocab().as_ref().clone();
        let target = parse("exists x9. E(x0, x9) & Red(x9)", &vocab).unwrap();
        let examples = TrainingSequence::label_all_tuples(&g, 1, |t| {
            folearn_logic::eval::satisfies(&g, &target, t)
        });
        let candidates = vec![
            parse("Red(x0)", &vocab).unwrap(),
            target.clone(),
            parse("true", &vocab).unwrap(),
        ];
        let res = realizable_k1(&g, &examples, &candidates, 0).expect("realisable");
        assert_eq!(res.params, Vec::<V>::new());
        let err = examples.error_of(|t| {
            folearn_logic::eval::satisfies(&g, &res.formula, t)
        });
        assert_eq!(err, 0.0);
    }

    #[test]
    fn learns_parametric_target() {
        // Target: "x0 is adjacent to the hidden centre w" with w = V(5).
        let g = generators::star(9, Vocabulary::empty());
        let w = V(0); // the star centre
        let examples = TrainingSequence::label_all_tuples(&g, 1, |t| g.has_edge(t[0], w));
        let vocab = g.vocab().as_ref().clone();
        let candidates = vec![
            parse("E(x0, x1)", &vocab).unwrap(), // φ(x0; y1) = E(x0, y1)
        ];
        let res = realizable_k1(&g, &examples, &candidates, 1).expect("realisable");
        assert_eq!(res.params.len(), 1);
        assert_eq!(res.params[0], w);
    }

    #[test]
    fn two_parameters() {
        // Target: x0 = w1 ∨ x0 = w2 on a path.
        let g = generators::path(8, Vocabulary::empty());
        let (w1, w2) = (V(2), V(6));
        let examples =
            TrainingSequence::label_all_tuples(&g, 1, |t| t[0] == w1 || t[0] == w2);
        let vocab = g.vocab().as_ref().clone();
        let candidates = vec![parse("x0 = x1 | x0 = x2", &vocab).unwrap()];
        let res = realizable_k1(&g, &examples, &candidates, 2).expect("realisable");
        let set: std::collections::BTreeSet<V> = res.params.iter().copied().collect();
        assert_eq!(set, [w1, w2].into_iter().collect());
    }

    #[test]
    fn unrealisable_returns_none() {
        let g = generators::clique(4, Vocabulary::empty());
        // Inconsistent labels on symmetric vertices, candidate too weak.
        let examples = TrainingSequence::from_pairs([
            (vec![V(0)], true),
            (vec![V(1)], false),
        ]);
        let vocab = g.vocab().as_ref().clone();
        let candidates = vec![parse("true", &vocab).unwrap()];
        assert!(realizable_k1(&g, &examples, &candidates, 0).is_none());
    }

    #[test]
    fn prefix_search_prunes_dead_prefixes() {
        // mc_calls must stay O(|Φ'| · ℓ · n), far below n^ℓ.
        let g = generators::path(12, Vocabulary::empty());
        let (w1, w2) = (V(3), V(9));
        let examples =
            TrainingSequence::label_all_tuples(&g, 1, |t| t[0] == w1 || t[0] == w2);
        let vocab = g.vocab().as_ref().clone();
        let candidates = vec![parse("x0 = x1 | x0 = x2", &vocab).unwrap()];
        let res = realizable_k1(&g, &examples, &candidates, 2).expect("realisable");
        let n = g.num_vertices();
        assert!(res.mc_calls <= 2 * n, "mc_calls = {}", res.mc_calls);
    }

    #[test]
    fn colour_guarded_sentence_matches_direct_binding() {
        let g = red_path(7, 2);
        let examples = TrainingSequence::from_pairs([
            (vec![V(0)], true),
            (vec![V(1)], false),
            (vec![V(2)], true),
        ]);
        let marked = mark_examples(&g, &examples);
        let pos = marked.vocab().color_by_name(POS_COLOR).unwrap();
        let neg = marked.vocab().color_by_name(NEG_COLOR).unwrap();
        let vocab = g.vocab().as_ref().clone();
        // φ(x0; y1) = "x0 red or adjacent to y1".
        let phi = parse("Red(x0) | E(x0, x1)", &vocab).unwrap();
        for w in marked.vertices().take(4) {
            // Direct binding.
            let mut a = Assignment::new();
            a.set(1, w);
            let consistency = Formula::and([
                Formula::Color(pos, 0).implies(phi.clone()),
                Formula::Color(neg, 0).implies(phi.clone().not()),
            ]);
            let direct = eval(&marked, &Formula::forall(0, consistency), &mut a);
            // Colour-guarded sentence.
            let with_s = ops::expand_colors(&marked, &[("S1", vec![w])]);
            let s1 = with_s.vocab().color_by_name("S1").unwrap();
            let sentence = feasibility_sentence(&phi, 1, 1, &[s1], pos, neg);
            assert_eq!(models(&with_s, &sentence), direct, "w={w}");
        }
    }

    #[test]
    fn vm_engine_matches_tree_walker() {
        // Same search on both engines: identical winning formula and
        // parameters, because the VM's lowest set lane is the first
        // vertex the tree-walker's ascending scan accepts.
        let g = generators::path(8, Vocabulary::empty());
        let (w1, w2) = (V(2), V(6));
        let examples =
            TrainingSequence::label_all_tuples(&g, 1, |t| t[0] == w1 || t[0] == w2);
        let vocab = g.vocab().as_ref().clone();
        let candidates = vec![
            parse("E(x0, x1) & E(x0, x2)", &vocab).unwrap(),
            parse("x0 = x1 | x0 = x2", &vocab).unwrap(),
        ];
        let tree = realizable_k1_with_engine(
            &g, &examples, &candidates, 2, EvalEngine::TreeWalk,
        )
        .expect("realisable");
        let vm = realizable_k1_with_engine(
            &g, &examples, &candidates, 2, EvalEngine::Vm,
        )
        .expect("realisable");
        assert_eq!(tree.formula, vm.formula);
        assert_eq!(tree.params, vm.params);
        // One batched scan per prefix level instead of per-vertex calls.
        assert!(vm.mc_calls <= candidates.len() * 2, "{}", vm.mc_calls);
        assert!(vm.mc_calls < tree.mc_calls);
    }

    #[test]
    fn vm_engine_matches_tree_walker_at_ell_zero() {
        let g = red_path(8, 3);
        let vocab = g.vocab().as_ref().clone();
        let examples = TrainingSequence::label_all_tuples(&g, 1, |t| {
            g.has_color(t[0], ColorId(0))
        });
        let candidates = vec![
            parse("true", &vocab).unwrap(),
            parse("Red(x0)", &vocab).unwrap(),
        ];
        let tree = realizable_k1_with_engine(
            &g, &examples, &candidates, 0, EvalEngine::TreeWalk,
        )
        .expect("realisable");
        let vm =
            realizable_k1_with_engine(&g, &examples, &candidates, 0, EvalEngine::Vm)
                .expect("realisable");
        assert_eq!(tree.formula, vm.formula);
        assert_eq!(vm.params, Vec::<V>::new());
        // Unrealisable stays unrealisable on the VM too.
        let bad = TrainingSequence::from_pairs([
            (vec![V(0)], true),
            (vec![V(0)], false),
        ]);
        assert!(realizable_k1_with_engine(
            &g,
            &bad,
            &candidates,
            0,
            EvalEngine::Vm
        )
        .is_none());
    }

    #[test]
    fn works_with_explicit_examples() {
        let g = red_path(10, 4);
        let mut examples = TrainingSequence::new();
        for v in [0u32, 4, 8] {
            examples.push(Example::new(vec![V(v)], true));
        }
        for v in [1u32, 2, 3, 5] {
            examples.push(Example::new(vec![V(v)], false));
        }
        let vocab = g.vocab().as_ref().clone();
        let candidates = vec![parse("Red(x0)", &vocab).unwrap()];
        let res = realizable_k1(&g, &examples, &candidates, 0).expect("realisable");
        assert_eq!(res.formula, candidates[0]);
    }
}
