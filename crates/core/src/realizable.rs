//! The realisable `k = 1` learner — Proposition 12 / Algorithm 2.
//!
//! Under the promise that some `h_{φ,w̄} ∈ H_{1,ℓ,q}(G)` is consistent
//! with the training data, Algorithm 2 finds a consistent hypothesis with
//! `O(|Φ'| · ℓ · n)` model-checking calls instead of `n^ℓ` brute force:
//! for each candidate formula it grows the parameter tuple one entry at a
//! time, keeping a prefix only if a model-checking query certifies that it
//! *extends* to a fully consistent parameter setting.
//!
//! The certificate is the paper's sentence (over `G` expanded with unary
//! relations `P_+`/`P_-` marking the positive/negative examples):
//!
//! ```text
//! ∃y_{i+1} … ∃y_ℓ ∀x ((P_+ x → φ_i) ∧ (P_- x → ¬φ_i))
//! ```
//!
//! The paper additionally encodes the already-fixed prefix `w_1 … w_i`
//! via singleton colours `S_j` so the query is a *sentence*; we bind the
//! prefix directly in the evaluator's assignment, which is semantically
//! identical (the colour-guarded sentence builder is exercised in tests
//! via [`feasibility_sentence`]).
//!
//! The candidate set `Φ'` is the finite normal-form family of the paper;
//! callers pass the finite candidate family to search (see DESIGN.md §4 on
//! why we never enumerate all normal-form formulas).

use folearn_graph::{ops, Graph, V};
use folearn_logic::eval::{eval, Assignment};
use folearn_logic::transform::bind_params_with_colors;
use folearn_logic::{Formula, Var};

use crate::problem::TrainingSequence;

/// Names used for the example-marker colours.
pub const POS_COLOR: &str = "__lambda_pos";
/// Negative-example marker colour name.
pub const NEG_COLOR: &str = "__lambda_neg";

/// Result of the realisable search.
#[derive(Debug, Clone)]
pub struct RealizableResult {
    /// The consistent candidate formula `φ(x_0; x_1 … x_ℓ)`.
    pub formula: Formula,
    /// The parameter assignment `w̄` (for variables `x_1 … x_ℓ`).
    pub params: Vec<V>,
    /// Model-checking calls performed.
    pub mc_calls: usize,
}

/// Run Algorithm 2: find a candidate formula and parameters consistent
/// with all examples, or `None` when no candidate admits any (the promise
/// is violated or `Φ'` is too small).
///
/// Candidates use variable `x0` for the instance and `x1 … xℓ` for the
/// parameters.
///
/// # Panics
/// Panics if the examples are not unary.
pub fn realizable_k1(
    g: &Graph,
    examples: &TrainingSequence,
    candidates: &[Formula],
    ell: usize,
) -> Option<RealizableResult> {
    assert!(
        examples.is_empty() || examples.arity() == 1,
        "Proposition 12 is the k = 1 case"
    );
    let marked = mark_examples(g, examples);
    let pos = marked.vocab().color_by_name(POS_COLOR).expect("just added");
    let neg = marked.vocab().color_by_name(NEG_COLOR).expect("just added");
    let mut mc_calls = 0usize;

    for phi in candidates {
        // consistency(x0) = (P_+ x0 → φ) ∧ (P_- x0 → ¬φ)
        let consistency = Formula::and([
            Formula::Color(pos, 0).implies(phi.clone()),
            Formula::Color(neg, 0).implies(phi.clone().not()),
        ]);
        let all_consistent = Formula::forall(0, consistency);

        let mut assignment = Assignment::new();
        let mut params: Vec<V> = Vec::with_capacity(ell);
        let mut dead_end = false;
        for i in 1..=ell {
            // Try to fix x_i := u such that the remainder stays feasible.
            let mut found = false;
            for u in marked.vertices() {
                assignment.set(i as Var, u);
                let mut check = all_consistent.clone();
                for j in (i + 1)..=ell {
                    check = Formula::exists(j as Var, check);
                }
                mc_calls += 1;
                if eval(&marked, &check, &mut assignment) {
                    params.push(u);
                    found = true;
                    break;
                }
            }
            if !found {
                dead_end = true;
                break;
            }
        }
        if dead_end {
            continue;
        }
        // ℓ = 0 case: still must verify the candidate itself.
        if ell == 0 {
            mc_calls += 1;
            if !eval(&marked, &all_consistent, &mut assignment) {
                continue;
            }
        }
        // Final sanity: the hypothesis really is consistent.
        let err = examples.error_of(|t| {
            let mut a = Assignment::from_tuple(t);
            for (j, &w) in params.iter().enumerate() {
                a.set((j + 1) as Var, w);
            }
            eval(g, phi, &mut a)
        });
        if err == 0.0 {
            return Some(RealizableResult {
                formula: phi.clone(),
                params,
                mc_calls,
            });
        }
    }
    None
}

/// The paper's literal colour-guarded feasibility *sentence* for a fixed
/// prefix length `i`: `∃y_{i+1} … ∃y_ℓ ∀x ((P_+x → φ_i) ∧ (P_-x → ¬φ_i))`
/// with `φ_i = ∃y_1 … ∃y_i (⋀_j S_j y_j ∧ φ)`. Requires the graph to carry
/// singleton colours `S_1 … S_i` for the prefix; used to cross-check the
/// direct-binding implementation.
pub fn feasibility_sentence(
    phi: &Formula,
    ell: usize,
    prefix_len: usize,
    s_colors: &[folearn_graph::ColorId],
    pos: folearn_graph::ColorId,
    neg: folearn_graph::ColorId,
) -> Formula {
    assert!(prefix_len <= ell && s_colors.len() >= prefix_len);
    let guarded: Vec<(Var, folearn_graph::ColorId)> = (1..=prefix_len)
        .map(|j| (j as Var, s_colors[j - 1]))
        .collect();
    let phi_i = bind_params_with_colors(phi, &guarded);
    let consistency = Formula::and([
        Formula::Color(pos, 0).implies(phi_i.clone()),
        Formula::Color(neg, 0).implies(phi_i.not()),
    ]);
    let mut out = Formula::forall(0, consistency);
    for j in ((prefix_len + 1)..=ell).rev() {
        out = Formula::exists(j as Var, out);
    }
    out
}

/// Expand `g` with the `P_+`/`P_-` marker colours for a unary training
/// sequence.
pub fn mark_examples(g: &Graph, examples: &TrainingSequence) -> Graph {
    let pos: Vec<V> = examples.positives().map(|e| e.tuple[0]).collect();
    let neg: Vec<V> = examples.negatives().map(|e| e.tuple[0]).collect();
    ops::expand_colors(g, &[(POS_COLOR, pos), (NEG_COLOR, neg)])
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ColorId, Vocabulary};
    use folearn_logic::eval::models;
    use folearn_logic::parse;

    use crate::problem::Example;

    use super::*;

    fn red_path(n: usize, stride: usize) -> Graph {
        let g = generators::path(n, Vocabulary::new(["Red"]));
        generators::periodically_colored(&g, ColorId(0), stride)
    }

    #[test]
    fn learns_parameter_free_target() {
        let g = red_path(8, 3);
        let vocab = g.vocab().as_ref().clone();
        let target = parse("exists x9. E(x0, x9) & Red(x9)", &vocab).unwrap();
        let examples = TrainingSequence::label_all_tuples(&g, 1, |t| {
            folearn_logic::eval::satisfies(&g, &target, t)
        });
        let candidates = vec![
            parse("Red(x0)", &vocab).unwrap(),
            target.clone(),
            parse("true", &vocab).unwrap(),
        ];
        let res = realizable_k1(&g, &examples, &candidates, 0).expect("realisable");
        assert_eq!(res.params, Vec::<V>::new());
        let err = examples.error_of(|t| {
            folearn_logic::eval::satisfies(&g, &res.formula, t)
        });
        assert_eq!(err, 0.0);
    }

    #[test]
    fn learns_parametric_target() {
        // Target: "x0 is adjacent to the hidden centre w" with w = V(5).
        let g = generators::star(9, Vocabulary::empty());
        let w = V(0); // the star centre
        let examples = TrainingSequence::label_all_tuples(&g, 1, |t| g.has_edge(t[0], w));
        let vocab = g.vocab().as_ref().clone();
        let candidates = vec![
            parse("E(x0, x1)", &vocab).unwrap(), // φ(x0; y1) = E(x0, y1)
        ];
        let res = realizable_k1(&g, &examples, &candidates, 1).expect("realisable");
        assert_eq!(res.params.len(), 1);
        assert_eq!(res.params[0], w);
    }

    #[test]
    fn two_parameters() {
        // Target: x0 = w1 ∨ x0 = w2 on a path.
        let g = generators::path(8, Vocabulary::empty());
        let (w1, w2) = (V(2), V(6));
        let examples =
            TrainingSequence::label_all_tuples(&g, 1, |t| t[0] == w1 || t[0] == w2);
        let vocab = g.vocab().as_ref().clone();
        let candidates = vec![parse("x0 = x1 | x0 = x2", &vocab).unwrap()];
        let res = realizable_k1(&g, &examples, &candidates, 2).expect("realisable");
        let set: std::collections::BTreeSet<V> = res.params.iter().copied().collect();
        assert_eq!(set, [w1, w2].into_iter().collect());
    }

    #[test]
    fn unrealisable_returns_none() {
        let g = generators::clique(4, Vocabulary::empty());
        // Inconsistent labels on symmetric vertices, candidate too weak.
        let examples = TrainingSequence::from_pairs([
            (vec![V(0)], true),
            (vec![V(1)], false),
        ]);
        let vocab = g.vocab().as_ref().clone();
        let candidates = vec![parse("true", &vocab).unwrap()];
        assert!(realizable_k1(&g, &examples, &candidates, 0).is_none());
    }

    #[test]
    fn prefix_search_prunes_dead_prefixes() {
        // mc_calls must stay O(|Φ'| · ℓ · n), far below n^ℓ.
        let g = generators::path(12, Vocabulary::empty());
        let (w1, w2) = (V(3), V(9));
        let examples =
            TrainingSequence::label_all_tuples(&g, 1, |t| t[0] == w1 || t[0] == w2);
        let vocab = g.vocab().as_ref().clone();
        let candidates = vec![parse("x0 = x1 | x0 = x2", &vocab).unwrap()];
        let res = realizable_k1(&g, &examples, &candidates, 2).expect("realisable");
        let n = g.num_vertices();
        assert!(res.mc_calls <= 2 * n, "mc_calls = {}", res.mc_calls);
    }

    #[test]
    fn colour_guarded_sentence_matches_direct_binding() {
        let g = red_path(7, 2);
        let examples = TrainingSequence::from_pairs([
            (vec![V(0)], true),
            (vec![V(1)], false),
            (vec![V(2)], true),
        ]);
        let marked = mark_examples(&g, &examples);
        let pos = marked.vocab().color_by_name(POS_COLOR).unwrap();
        let neg = marked.vocab().color_by_name(NEG_COLOR).unwrap();
        let vocab = g.vocab().as_ref().clone();
        // φ(x0; y1) = "x0 red or adjacent to y1".
        let phi = parse("Red(x0) | E(x0, x1)", &vocab).unwrap();
        for w in marked.vertices().take(4) {
            // Direct binding.
            let mut a = Assignment::new();
            a.set(1, w);
            let consistency = Formula::and([
                Formula::Color(pos, 0).implies(phi.clone()),
                Formula::Color(neg, 0).implies(phi.clone().not()),
            ]);
            let direct = eval(&marked, &Formula::forall(0, consistency), &mut a);
            // Colour-guarded sentence.
            let with_s = ops::expand_colors(&marked, &[("S1", vec![w])]);
            let s1 = with_s.vocab().color_by_name("S1").unwrap();
            let sentence = feasibility_sentence(&phi, 1, 1, &[s1], pos, neg);
            assert_eq!(models(&with_s, &sentence), direct, "w={w}");
        }
    }

    #[test]
    fn works_with_explicit_examples() {
        let g = red_path(10, 4);
        let mut examples = TrainingSequence::new();
        for v in [0u32, 4, 8] {
            examples.push(Example::new(vec![V(v)], true));
        }
        for v in [1u32, 2, 3, 5] {
            examples.push(Example::new(vec![V(v)], false));
        }
        let vocab = g.vocab().as_ref().clone();
        let candidates = vec![parse("Red(x0)", &vocab).unwrap()];
        let res = realizable_k1(&g, &examples, &candidates, 0).expect("realisable");
        assert_eq!(res.formula, candidates[0]);
    }
}
