//! Exact ERM given a fixed parameter tuple, by type-class majority.
//!
//! For fixed parameters `w̄`, the hypotheses
//! `{ h_{φ,w̄} : φ(x̄;ȳ) of quantifier rank ≤ q }` classify `v̄` purely by
//! `tp_q(G, v̄w̄)` (Section 2), and *every* union of realised type classes
//! is achievable (as a disjunction of Hintikka formulas). The empirical
//! risk minimiser over this family is therefore the majority vote per type
//! class:
//!
//! ```text
//! err*(w̄) = (1/m) Σ_θ min(pos_θ, neg_θ)
//! ```
//!
//! This replaces the paper's "step through all possible formulas" (proof
//! of Theorem 13; Algorithm 1) with an *equivalent exact* minimisation —
//! see DESIGN.md §4. Ties inside a class break towards negative, matching
//! the materialised formula's "unknown type ⇒ false" semantics.

pub use crate::hypothesis::TypeMode;

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use folearn_graph::{Graph, V};
use folearn_types::{TypeArena, TypeId};
use parking_lot::Mutex;

use crate::hypothesis::Hypothesis;
use crate::problem::TrainingSequence;

/// Fit the optimal type-majority hypothesis for fixed parameters.
/// Returns the hypothesis and its training error.
///
/// ```
/// use folearn::{fit_with_params, TypeMode, TrainingSequence, shared_arena};
/// use folearn_graph::{generators, Vocabulary, V};
///
/// let g = generators::path(8, Vocabulary::empty());
/// // Target: "is an endpoint" — expressible at quantifier rank 2.
/// let examples = TrainingSequence::label_all_tuples(&g, 1, |t| g.degree(t[0]) == 1);
/// let arena = shared_arena(&g);
/// let (h, err) = fit_with_params(&g, &examples, &[], 2, TypeMode::Global, &arena);
/// assert_eq!(err, 0.0);
/// assert!(h.predict(&g, &[V(0)]));
/// assert!(!h.predict(&g, &[V(3)]));
/// ```
pub fn fit_with_params(
    g: &Graph,
    examples: &TrainingSequence,
    params: &[V],
    q: usize,
    mode: TypeMode,
    arena: &Arc<Mutex<TypeArena>>,
) -> (Hypothesis, f64) {
    let (hypothesis, wrong) = fit_with_params_counted(g, examples, params, q, mode, arena);
    (hypothesis, error_rate(wrong, examples.len()))
}

/// Like [`fit_with_params`], but reporting the training error as the raw
/// misclassification *count*. Search loops compare and merge candidates
/// on this integer (exact, totally ordered) and divide once at the end —
/// float equality on derived error rates is how the old brute-force
/// engine's cross-check went wrong.
pub fn fit_with_params_counted(
    g: &Graph,
    examples: &TrainingSequence,
    params: &[V],
    q: usize,
    mode: TypeMode,
    arena: &Arc<Mutex<TypeArena>>,
) -> (Hypothesis, usize) {
    let (positive, wrong) = {
        let mut arena = arena.lock();
        tally_in(g, examples, params, q, mode, &mut arena)
    };
    (
        Hypothesis::new(params.to_vec(), q, mode, positive, Arc::clone(arena)),
        wrong,
    )
}

/// The optimal training error achievable with the given parameters,
/// without building the hypothesis (used by parameter search loops).
pub fn optimal_error_given_params(
    g: &Graph,
    examples: &TrainingSequence,
    params: &[V],
    q: usize,
    mode: TypeMode,
    arena: &Arc<Mutex<TypeArena>>,
) -> f64 {
    let (_, wrong) = {
        let mut arena = arena.lock();
        tally_in(g, examples, params, q, mode, &mut arena)
    };
    error_rate(wrong, examples.len())
}

/// `wrong / m` as the error rate, with the empty-sequence convention.
pub(crate) fn error_rate(wrong: usize, m: usize) -> f64 {
    if m == 0 {
        0.0
    } else {
        wrong as f64 / m as f64
    }
}

/// The type of `v̄w̄` under `mode`, interned into `arena`.
#[inline]
fn type_of_combined(
    g: &Graph,
    arena: &mut TypeArena,
    combined: &[V],
    q: usize,
    mode: TypeMode,
) -> TypeId {
    match mode.radius() {
        None => folearn_types::compute::counting_type_of(g, arena, combined, q, mode.cap()),
        Some(r) => {
            folearn_types::local::counting_local_type(g, arena, combined, q, r, mode.cap())
        }
    }
}

/// Majority tally against a caller-held (unlocked) arena: the set of
/// majority-positive type classes and the misclassification count.
pub(crate) fn tally_in(
    g: &Graph,
    examples: &TrainingSequence,
    params: &[V],
    q: usize,
    mode: TypeMode,
    arena: &mut TypeArena,
) -> (BTreeSet<TypeId>, usize) {
    let mut counts: HashMap<TypeId, (usize, usize)> = HashMap::new();
    let mut combined: Vec<V> = Vec::with_capacity(examples.arity() + params.len());
    for e in examples.iter() {
        combined.clear();
        combined.extend_from_slice(&e.tuple);
        combined.extend_from_slice(params);
        let t = type_of_combined(g, arena, &combined, q, mode);
        let entry = counts.entry(t).or_insert((0, 0));
        if e.label {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
    }
    let mut positive = BTreeSet::new();
    let mut wrong = 0usize;
    for (t, (pos, neg)) in counts {
        if pos > neg {
            positive.insert(t);
            wrong += neg;
        } else {
            wrong += pos;
        }
    }
    (positive, wrong)
}

/// The misclassification count of the majority fit for `params`, aborting
/// early (returning `None`) as soon as it provably exceeds `bound`.
///
/// The running tally `Σ_θ min(pos_θ, neg_θ)` is monotone non-decreasing as
/// examples stream in, so aborting on `> bound` is sound: a tuple whose
/// final count is `≤ bound` is never aborted. Parameter sweeps exploit
/// this with `bound` = best count seen so far — strictly worse tuples stop
/// after a prefix of the examples, tied tuples still complete (tie-breaks
/// stay exact). `bound = usize::MAX` never aborts.
pub fn misclassifications_bounded(
    g: &Graph,
    examples: &TrainingSequence,
    params: &[V],
    q: usize,
    mode: TypeMode,
    arena: &mut TypeArena,
    bound: usize,
) -> Option<usize> {
    let mut counts: HashMap<TypeId, (usize, usize)> = HashMap::new();
    let mut combined: Vec<V> = Vec::with_capacity(examples.arity() + params.len());
    let mut wrong = 0usize;
    for e in examples.iter() {
        combined.clear();
        combined.extend_from_slice(&e.tuple);
        combined.extend_from_slice(params);
        let t = type_of_combined(g, arena, &combined, q, mode);
        let entry = counts.entry(t).or_insert((0, 0));
        let before = entry.0.min(entry.1);
        if e.label {
            entry.0 += 1;
        } else {
            entry.1 += 1;
        }
        wrong += entry.0.min(entry.1) - before;
        if wrong > bound {
            return None;
        }
    }
    Some(wrong)
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ColorId, Vocabulary};

    use super::*;

    fn arena_for(g: &Graph) -> Arc<Mutex<TypeArena>> {
        Arc::new(Mutex::new(TypeArena::new(Arc::clone(g.vocab()))))
    }

    #[test]
    fn majority_is_minimal() {
        // Force an unrealisable workload: one type class, mixed labels.
        let g = generators::clique(4, Vocabulary::empty());
        let arena = arena_for(&g);
        let examples = TrainingSequence::from_pairs([
            (vec![V(0)], true),
            (vec![V(1)], true),
            (vec![V(2)], true),
            (vec![V(3)], false),
        ]);
        // All clique vertices share every q-type, so err* = 1/4.
        let (h, err) = fit_with_params(&g, &examples, &[], 2, TypeMode::Global, &arena);
        assert_eq!(err, 0.25);
        // The majority is positive, so the lone negative is the error.
        assert!(h.predict(&g, &[V(3)]));
    }

    #[test]
    fn ties_break_negative() {
        let g = generators::clique(2, Vocabulary::empty());
        let arena = arena_for(&g);
        let examples =
            TrainingSequence::from_pairs([(vec![V(0)], true), (vec![V(1)], false)]);
        let (h, err) = fit_with_params(&g, &examples, &[], 1, TypeMode::Global, &arena);
        assert_eq!(err, 0.5);
        assert!(!h.predict(&g, &[V(0)]));
    }

    #[test]
    fn richer_types_fit_better() {
        // Labels = "is an endpoint" on a path: q=1 cannot express it
        // (single unary 1-type), q=2 can.
        let g = generators::path(8, Vocabulary::empty());
        let arena = arena_for(&g);
        let target = |t: &[V]| g.degree(t[0]) == 1;
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let (_, err1) = fit_with_params(&g, &examples, &[], 1, TypeMode::Global, &arena);
        let (_, err2) = fit_with_params(&g, &examples, &[], 2, TypeMode::Global, &arena);
        assert!(err1 > 0.0, "q=1 unexpectedly fits endpoints");
        assert_eq!(err2, 0.0);
    }

    #[test]
    fn local_mode_matches_global_for_local_targets() {
        let vocab = Vocabulary::new(["Red"]);
        let g = generators::periodically_colored(
            &generators::path(10, vocab),
            ColorId(0),
            4,
        );
        let arena = arena_for(&g);
        let target = |t: &[V]| g.has_color(t[0], ColorId(0));
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let (_, eg) = fit_with_params(&g, &examples, &[], 1, TypeMode::Global, &arena);
        let (_, el) = fit_with_params(&g, &examples, &[], 1, TypeMode::Local { r: 1 }, &arena);
        assert_eq!(eg, 0.0);
        assert_eq!(el, 0.0);
    }

    #[test]
    fn counting_mode_learns_degree_thresholds() {
        // Target: "x has at least 2 red neighbours" — inexpressible with
        // one FO quantifier, but one *counting* quantifier (cap 2) fits it.
        let vocab = Vocabulary::new(["Red"]);
        let mut b = folearn_graph::GraphBuilder::with_vertices(vocab, 7);
        // Star-ish: V0 adjacent to V1..V4; V5 adjacent to V4, V6.
        for i in 1..=4 {
            b.add_edge(V(0), V(i));
        }
        b.add_edge(V(5), V(4));
        b.add_edge(V(5), V(6));
        for i in [1u32, 2, 6] {
            b.set_color(V(i), ColorId(0)); // reds: V1, V2, V6
        }
        let g = b.build();
        let arena = arena_for(&g);
        let target = |t: &[V]| {
            g.neighbors(t[0])
                .iter()
                .filter(|&&w| g.has_color(V(w), ColorId(0)))
                .count()
                >= 2
        };
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let (_, fo_err) = fit_with_params(&g, &examples, &[], 1, TypeMode::Global, &arena);
        let (ch, c_err) = fit_with_params(
            &g,
            &examples,
            &[],
            1,
            TypeMode::GlobalCounting { cap: 2 },
            &arena,
        );
        assert!(fo_err > 0.0, "FO q=1 should not fit a degree-2 threshold");
        assert_eq!(c_err, 0.0);
        for v in g.vertices() {
            assert_eq!(ch.predict(&g, &[v]), target(&[v]), "at {v}");
        }
    }

    #[test]
    fn counting_hypothesis_materialises_to_counting_formula() {
        let g = generators::star(5, Vocabulary::empty());
        let arena = arena_for(&g);
        // "x has ≥ 3 neighbours" — only the centre.
        let target = |t: &[V]| g.degree(t[0]) >= 3;
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let (h, err) = fit_with_params(
            &g,
            &examples,
            &[],
            1,
            TypeMode::GlobalCounting { cap: 3 },
            &arena,
        );
        assert_eq!(err, 0.0);
        let phi = h.to_formula();
        assert_eq!(phi.quantifier_rank(), 1);
        for v in g.vertices() {
            assert_eq!(
                folearn_logic::eval::satisfies(&g, &phi, &[v]),
                target(&[v]),
                "formula at {v}"
            );
        }
    }

    #[test]
    fn local_counting_mode_works() {
        let g = generators::star(6, Vocabulary::empty());
        let arena = arena_for(&g);
        let target = |t: &[V]| g.degree(t[0]) >= 2;
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let (_, err) = fit_with_params(
            &g,
            &examples,
            &[],
            1,
            TypeMode::LocalCounting { r: 1, cap: 2 },
            &arena,
        );
        assert_eq!(err, 0.0);
    }

    #[test]
    fn bounded_tally_matches_unbounded_and_aborts() {
        let g = generators::path(7, Vocabulary::empty());
        let arena = arena_for(&g);
        let examples = TrainingSequence::label_all_tuples(&g, 1, |t| t[0].0 < 3);
        let mut a = arena.lock();
        let (_, wrong) = tally_in(&g, &examples, &[], 1, TypeMode::Global, &mut a);
        assert!(wrong > 0, "q=1 should not separate 'index < 3' on a path");
        // Any bound at or above the true count completes with the exact count.
        for bound in [wrong, wrong + 1, usize::MAX] {
            assert_eq!(
                misclassifications_bounded(
                    &g,
                    &examples,
                    &[],
                    1,
                    TypeMode::Global,
                    &mut a,
                    bound
                ),
                Some(wrong)
            );
        }
        // Any bound strictly below it aborts.
        assert_eq!(
            misclassifications_bounded(
                &g,
                &examples,
                &[],
                1,
                TypeMode::Global,
                &mut a,
                wrong - 1
            ),
            None
        );
    }

    #[test]
    fn optimal_error_matches_fit() {
        let g = generators::path(6, Vocabulary::empty());
        let arena = arena_for(&g);
        let examples = TrainingSequence::label_all_tuples(&g, 1, |t| t[0].0 % 2 == 0);
        let a = optimal_error_given_params(&g, &examples, &[], 1, TypeMode::Global, &arena);
        let (_, b) = fit_with_params(&g, &examples, &[], 1, TypeMode::Global, &arena);
        assert_eq!(a, b);
    }
}
