//! The learning problem: training sequences and ERM instances.
//!
//! Section 3 of the paper: a training sequence
//! `Λ = ((v̄_1, λ_1), …, (v̄_m, λ_m)) ∈ (V(G)^k × {0,1})^m`, the training
//! error `err_Λ(h) = |{i : h(v̄_i) ≠ λ_i}| / m`, and the `FO-ERM` problem:
//! given `G, Λ, k, ℓ, q, ε`, return `h_{φ,w̄} ∈ H_{k,ℓ,q}(G)` with
//! `err_Λ(h) ≤ ε* + ε` where `ε*` is the class optimum.

use folearn_graph::{Graph, V};

/// One labelled example `(v̄, λ)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Example {
    /// The `k`-tuple of vertices.
    pub tuple: Vec<V>,
    /// The Boolean label.
    pub label: bool,
}

impl Example {
    /// Construct an example.
    pub fn new(tuple: impl Into<Vec<V>>, label: bool) -> Self {
        Self {
            tuple: tuple.into(),
            label,
        }
    }
}

/// A training sequence `Λ` of `k`-tuples with Boolean labels.
#[derive(Clone, Debug, Default)]
pub struct TrainingSequence {
    examples: Vec<Example>,
}

impl TrainingSequence {
    /// An empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(tuple, label)` pairs.
    ///
    /// # Panics
    /// Panics if the tuples do not all have the same arity.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Vec<V>, bool)>) -> Self {
        let mut s = Self::new();
        for (t, l) in pairs {
            s.push(Example::new(t, l));
        }
        s
    }

    /// Append an example.
    ///
    /// # Panics
    /// Panics on arity mismatch with existing examples.
    pub fn push(&mut self, e: Example) {
        if let Some(first) = self.examples.first() {
            assert_eq!(
                first.tuple.len(),
                e.tuple.len(),
                "all examples must have the same arity"
            );
        }
        self.examples.push(e);
    }

    /// Number of examples `m`.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// The arity `k` (0 for an empty sequence).
    pub fn arity(&self) -> usize {
        self.examples.first().map_or(0, |e| e.tuple.len())
    }

    /// Iterate over examples.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &Example> {
        self.examples.iter()
    }

    /// The examples slice.
    pub fn examples(&self) -> &[Example] {
        &self.examples
    }

    /// The positive examples `Λ⁺` (tuples only).
    pub fn positives(&self) -> impl Iterator<Item = &Example> {
        self.examples.iter().filter(|e| e.label)
    }

    /// The negative examples `Λ⁻` (tuples only).
    pub fn negatives(&self) -> impl Iterator<Item = &Example> {
        self.examples.iter().filter(|e| !e.label)
    }

    /// Training error of an arbitrary predictor: the fraction of examples
    /// it misclassifies.
    pub fn error_of(&self, mut predict: impl FnMut(&[V]) -> bool) -> f64 {
        if self.examples.is_empty() {
            return 0.0;
        }
        let wrong = self
            .examples
            .iter()
            .filter(|e| predict(&e.tuple) != e.label)
            .count();
        wrong as f64 / self.examples.len() as f64
    }

    /// Label all `k`-tuples of `g` by a target predicate — the canonical
    /// way to build realisable workloads.
    pub fn label_all_tuples(g: &Graph, k: usize, mut target: impl FnMut(&[V]) -> bool) -> Self {
        let mut s = Self::new();
        let mut tuple = vec![V(0); k];
        fn rec(
            g: &Graph,
            tuple: &mut Vec<V>,
            pos: usize,
            target: &mut impl FnMut(&[V]) -> bool,
            s: &mut TrainingSequence,
        ) {
            if pos == tuple.len() {
                let label = target(tuple);
                s.push(Example::new(tuple.clone(), label));
                return;
            }
            for v in g.vertices() {
                tuple[pos] = v;
                rec(g, tuple, pos + 1, target, s);
            }
        }
        rec(g, &mut tuple, 0, &mut target, &mut s);
        s
    }
}

impl FromIterator<Example> for TrainingSequence {
    fn from_iter<I: IntoIterator<Item = Example>>(iter: I) -> Self {
        let mut s = Self::new();
        for e in iter {
            s.push(e);
        }
        s
    }
}

/// A complete `FO-ERM` instance: background graph, training sequence, and
/// the hyper-parameters `k, ℓ, q, ε`.
#[derive(Clone, Debug)]
pub struct ErmInstance<'g> {
    /// The background graph `G`.
    pub graph: &'g Graph,
    /// The training sequence `Λ`.
    pub examples: TrainingSequence,
    /// Arity of the target query.
    pub k: usize,
    /// Number of parameters allowed.
    pub ell: usize,
    /// Quantifier-rank bound.
    pub q: usize,
    /// Additive approximation slack `ε`.
    pub epsilon: f64,
}

impl<'g> ErmInstance<'g> {
    /// Construct and validate an instance.
    ///
    /// # Panics
    /// Panics if the example arity differs from `k`, a tuple mentions an
    /// out-of-range vertex, or `ε < 0`.
    pub fn new(
        graph: &'g Graph,
        examples: TrainingSequence,
        k: usize,
        ell: usize,
        q: usize,
        epsilon: f64,
    ) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        assert!(
            examples.is_empty() || examples.arity() == k,
            "example arity {} does not match k = {k}",
            examples.arity()
        );
        for e in examples.iter() {
            for &v in &e.tuple {
                assert!(
                    v.index() < graph.num_vertices(),
                    "example vertex {v} out of range"
                );
            }
        }
        Self {
            graph,
            examples,
            k,
            ell,
            q,
            epsilon,
        }
    }

    /// The number of training examples `m`.
    pub fn m(&self) -> usize {
        self.examples.len()
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, Vocabulary};

    use super::*;

    #[test]
    fn error_counts_mismatches() {
        let s = TrainingSequence::from_pairs([
            (vec![V(0)], true),
            (vec![V(1)], false),
            (vec![V(2)], true),
            (vec![V(3)], false),
        ]);
        // Predictor: index even => true.
        let err = s.error_of(|t| t[0].0 % 2 == 0);
        assert_eq!(err, 0.0);
        let err = s.error_of(|_| true);
        assert_eq!(err, 0.5);
        assert_eq!(s.positives().count(), 2);
        assert_eq!(s.negatives().count(), 2);
    }

    #[test]
    fn empty_sequence_error_zero() {
        let s = TrainingSequence::new();
        assert_eq!(s.error_of(|_| true), 0.0);
        assert_eq!(s.arity(), 0);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "same arity")]
    fn arity_mismatch_panics() {
        let mut s = TrainingSequence::new();
        s.push(Example::new(vec![V(0)], true));
        s.push(Example::new(vec![V(0), V(1)], false));
    }

    #[test]
    fn label_all_tuples_covers_domain() {
        let g = generators::path(3, Vocabulary::empty());
        let s = TrainingSequence::label_all_tuples(&g, 2, |t| t[0] == t[1]);
        assert_eq!(s.len(), 9);
        assert_eq!(s.positives().count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn instance_validates_vertices() {
        let g = generators::path(2, Vocabulary::empty());
        let s = TrainingSequence::from_pairs([(vec![V(7)], true)]);
        ErmInstance::new(&g, s, 1, 0, 1, 0.1);
    }

    #[test]
    fn instance_accessors() {
        let g = generators::path(4, Vocabulary::empty());
        let s = TrainingSequence::from_pairs([(vec![V(0)], true), (vec![V(1)], false)]);
        let inst = ErmInstance::new(&g, s, 1, 1, 2, 0.25);
        assert_eq!(inst.m(), 2);
        assert_eq!(inst.k, 1);
    }
}
