//! The (agnostic) PAC layer of Section 3.
//!
//! The paper frames learning statistically: examples are drawn i.i.d.
//! from an unknown distribution `D` on `V(G)^k × {0,1}`, and by uniform
//! convergence an (approximate) empirical risk minimiser is an (agnostic)
//! PAC learner once `m = O(log |H_{k,ℓ,q}(G)|) = O(ℓ · log n)` examples
//! are seen. This module provides the distributions, sampling, and risk
//! estimation that the E6 experiments use to *measure* that convergence.

use folearn_graph::{Graph, V};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::problem::{Example, TrainingSequence};

/// A data-generating distribution on `V(G)^k × {0,1}`.
pub trait ExampleDistribution {
    /// Tuple arity `k`.
    fn arity(&self) -> usize;
    /// Draw one labelled example.
    fn sample(&self, rng: &mut StdRng) -> (Vec<V>, bool);
}

/// Uniform tuples labelled by a target query, with optional symmetric
/// label noise `η` (making the problem agnostic for `η > 0`).
pub struct QueryDistribution<'g, F> {
    graph: &'g Graph,
    k: usize,
    target: F,
    noise: f64,
}

impl<'g, F: Fn(&[V]) -> bool> QueryDistribution<'g, F> {
    /// Uniform-over-tuples distribution labelled by `target`, flipping
    /// each label independently with probability `noise`.
    ///
    /// # Panics
    /// Panics if the graph is empty or `noise ∉ [0, 1]`.
    pub fn new(graph: &'g Graph, k: usize, target: F, noise: f64) -> Self {
        assert!(graph.num_vertices() > 0, "cannot sample an empty graph");
        assert!((0.0..=1.0).contains(&noise));
        Self {
            graph,
            k,
            target,
            noise,
        }
    }

    /// The noiseless target label of a tuple.
    pub fn clean_label(&self, tuple: &[V]) -> bool {
        (self.target)(tuple)
    }

    /// The Bayes-optimal risk of this distribution (= `η`).
    pub fn bayes_risk(&self) -> f64 {
        self.noise.min(1.0 - self.noise)
    }

    /// The exact generalisation error of a predictor under this
    /// distribution: with disagreement rate `d` against the clean target
    /// over uniform tuples, the risk is `d(1−η) + (1−d)η`.
    pub fn exact_risk(&self, mut predict: impl FnMut(&[V]) -> bool) -> f64 {
        let mut tuple = vec![V(0); self.k];
        let mut total = 0usize;
        let mut disagree = 0usize;
        count_disagreements(
            self.graph,
            &mut tuple,
            0,
            &mut |t| (self.target)(t),
            &mut predict,
            &mut total,
            &mut disagree,
        );
        let d = disagree as f64 / total.max(1) as f64;
        d * (1.0 - self.noise) + (1.0 - d) * self.noise
    }
}

#[allow(clippy::too_many_arguments)]
fn count_disagreements(
    g: &Graph,
    tuple: &mut Vec<V>,
    pos: usize,
    target: &mut impl FnMut(&[V]) -> bool,
    predict: &mut impl FnMut(&[V]) -> bool,
    total: &mut usize,
    disagree: &mut usize,
) {
    if pos == tuple.len() {
        *total += 1;
        if target(tuple) != predict(tuple) {
            *disagree += 1;
        }
        return;
    }
    for v in g.vertices() {
        tuple[pos] = v;
        count_disagreements(g, tuple, pos + 1, target, predict, total, disagree);
    }
}

impl<F: Fn(&[V]) -> bool> ExampleDistribution for QueryDistribution<'_, F> {
    fn arity(&self) -> usize {
        self.k
    }

    fn sample(&self, rng: &mut StdRng) -> (Vec<V>, bool) {
        let n = self.graph.num_vertices() as u32;
        let tuple: Vec<V> = (0..self.k).map(|_| V(rng.random_range(0..n))).collect();
        let mut label = (self.target)(&tuple);
        if self.noise > 0.0 && rng.random_bool(self.noise) {
            label = !label;
        }
        (tuple, label)
    }
}

/// An explicit finite distribution (arbitrary `D`, fully agnostic):
/// weighted atoms on `(tuple, label)` pairs.
pub struct TableDistribution {
    atoms: Vec<(Vec<V>, bool, f64)>,
    total: f64,
}

impl TableDistribution {
    /// Build from weighted atoms.
    ///
    /// # Panics
    /// Panics on empty input, non-positive weights, or mixed arities.
    pub fn new(atoms: Vec<(Vec<V>, bool, f64)>) -> Self {
        assert!(!atoms.is_empty());
        let k = atoms[0].0.len();
        assert!(atoms.iter().all(|(t, _, w)| t.len() == k && *w > 0.0));
        let total = atoms.iter().map(|(_, _, w)| w).sum();
        Self { atoms, total }
    }

    /// Exact risk of a predictor under the table.
    pub fn exact_risk(&self, mut predict: impl FnMut(&[V]) -> bool) -> f64 {
        self.atoms
            .iter()
            .filter(|(t, l, _)| predict(t) != *l)
            .map(|(_, _, w)| w)
            .sum::<f64>()
            / self.total
    }
}

impl ExampleDistribution for TableDistribution {
    fn arity(&self) -> usize {
        self.atoms[0].0.len()
    }

    fn sample(&self, rng: &mut StdRng) -> (Vec<V>, bool) {
        let mut x = rng.random_range(0.0..self.total);
        for (t, l, w) in &self.atoms {
            if x < *w {
                return (t.clone(), *l);
            }
            x -= w;
        }
        let last = self.atoms.last().unwrap();
        (last.0.clone(), last.1)
    }
}

/// Draw an i.i.d. training sequence of length `m`.
pub fn sample_sequence(
    dist: &dyn ExampleDistribution,
    m: usize,
    seed: u64,
) -> TrainingSequence {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let (t, l) = dist.sample(&mut rng);
            Example::new(t, l)
        })
        .collect()
}

/// Monte-Carlo estimate of the generalisation error of a predictor.
pub fn estimate_risk(
    dist: &dyn ExampleDistribution,
    mut predict: impl FnMut(&[V]) -> bool,
    n_test: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wrong = 0usize;
    for _ in 0..n_test {
        let (t, l) = dist.sample(&mut rng);
        if predict(&t) != l {
            wrong += 1;
        }
    }
    wrong as f64 / n_test.max(1) as f64
}

/// The sample-size heuristic from Section 3 for finite classes:
/// `m = ⌈(ln |H| + ln(1/δ)) / (2ε²)⌉` with
/// `|H_{k,ℓ,q}(G)| ≤ f · n^ℓ` — callers supply `ln f` (a type-count
/// census gives it empirically).
pub fn uniform_convergence_sample_size(
    ln_f: f64,
    ell: usize,
    n: usize,
    epsilon: f64,
    delta: f64,
) -> usize {
    let ln_h = ln_f + ell as f64 * (n as f64).ln();
    ((ln_h + (1.0 / delta).ln()) / (2.0 * epsilon * epsilon)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, Vocabulary};

    use super::*;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let g = generators::path(10, Vocabulary::empty());
        let d = QueryDistribution::new(&g, 1, |t: &[V]| t[0].0 < 5, 0.0);
        let a = sample_sequence(&d, 20, 7);
        let b = sample_sequence(&d, 20, 7);
        assert_eq!(a.examples(), b.examples());
    }

    #[test]
    fn clean_labels_match_target() {
        let g = generators::path(10, Vocabulary::empty());
        let d = QueryDistribution::new(&g, 1, |t: &[V]| t[0].0 % 2 == 0, 0.0);
        let s = sample_sequence(&d, 50, 3);
        for e in s.iter() {
            assert_eq!(e.label, e.tuple[0].0 % 2 == 0);
        }
    }

    #[test]
    fn noise_flips_some_labels() {
        let g = generators::path(10, Vocabulary::empty());
        let d = QueryDistribution::new(&g, 1, |_: &[V]| true, 0.3);
        let s = sample_sequence(&d, 300, 5);
        let flipped = s.iter().filter(|e| !e.label).count();
        assert!((50..130).contains(&flipped), "flipped = {flipped}");
    }

    #[test]
    fn exact_risk_of_target_is_noise() {
        let g = generators::path(8, Vocabulary::empty());
        let target = |t: &[V]| t[0].0 < 4;
        let d = QueryDistribution::new(&g, 1, target, 0.1);
        let r = d.exact_risk(target);
        assert!((r - 0.1).abs() < 1e-12);
        assert!((d.exact_risk(|_| true) - (0.5 * 0.9 + 0.5 * 0.1)).abs() < 1e-12);
    }

    #[test]
    fn estimate_converges_to_exact() {
        let g = generators::path(8, Vocabulary::empty());
        let target = |t: &[V]| t[0].0 < 4;
        let d = QueryDistribution::new(&g, 1, target, 0.0);
        let est = estimate_risk(&d, |_| false, 20_000, 11);
        assert!((est - 0.5).abs() < 0.02, "est = {est}");
    }

    #[test]
    fn table_distribution_weights() {
        let t = TableDistribution::new(vec![
            (vec![V(0)], true, 3.0),
            (vec![V(1)], false, 1.0),
        ]);
        // Predicting constantly true errs on the weight-1 atom: risk 0.25.
        assert!((t.exact_risk(|_| true) - 0.25).abs() < 1e-12);
        let est = estimate_risk(&t, |_| true, 40_000, 2);
        assert!((est - 0.25).abs() < 0.02, "est = {est}");
    }

    #[test]
    fn sample_size_grows_logarithmically_in_n() {
        let m1 = uniform_convergence_sample_size(2.0, 1, 100, 0.1, 0.05);
        let m2 = uniform_convergence_sample_size(2.0, 1, 10_000, 0.1, 0.05);
        assert!(m2 < 2 * m1, "m1={m1} m2={m2}");
        assert!(m2 > m1);
    }
}
