//! Learned hypotheses `h_{φ,w̄}`.
//!
//! A hypothesis is a parameter tuple `w̄ ∈ V(G)^ℓ` together with a set of
//! `(k+ℓ)`-ary types: it classifies `v̄` positively iff the type of the
//! combined tuple `v̄w̄` lies in the set. By Section 2 of the paper this is
//! *exactly* the expressive power of `h_{φ,w̄}` for FO formulas `φ(x̄; ȳ)`
//! of the corresponding quantifier rank:
//!
//! * with **global** `q`-types, the hypothesis equals `h_{φ,w̄}` for the
//!   disjunction `φ` of the Hintikka formulas of the chosen types
//!   (quantifier rank exactly `q`);
//! * with **local** `(q, r)`-types, the materialised formula relativises
//!   each Hintikka formula to the `r`-ball of `x̄ȳ` and has quantifier rank
//!   `q + O(log r)` — precisely the `(L,Q)`-relaxation the paper's
//!   Theorem 13 produces.
//!
//! [`Hypothesis::to_formula`] performs that materialisation, so users who
//! need a real FO query get one; prediction itself stays on types, which
//! is exponentially cheaper.

use std::collections::BTreeSet;
use std::sync::Arc;

use folearn_graph::{Graph, V};
use folearn_logic::transform::localize_multi;
use folearn_logic::{Formula, Var};
use folearn_types::hintikka::hintikka;
use folearn_types::{TypeArena, TypeId};
use parking_lot::Mutex;

use crate::problem::TrainingSequence;

/// Which notion of type a hypothesis classifies by.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TypeMode {
    /// Global `q`-types `tp_q(G, v̄w̄)` — exact `H_{k,ℓ,q}` semantics.
    Global,
    /// Local `(q, r)`-types `ltp_{q,r}(G, v̄w̄)` — the `(L,Q)`-relaxed
    /// semantics with quantifier rank `q + O(log r)` after
    /// materialisation.
    Local {
        /// Ball radius.
        r: usize,
    },
    /// Global FO+C types with counting quantifiers up to the cap — the
    /// richer-logic extension named in the paper's conclusion.
    GlobalCounting {
        /// Counting saturation threshold (1 = classical FO).
        cap: u32,
    },
    /// Local FO+C types.
    LocalCounting {
        /// Ball radius.
        r: usize,
        /// Counting saturation threshold.
        cap: u32,
    },
}

/// Renders the CLI/wire string form: `global`, `local=R`, `counting=CAP`,
/// or `local-counting=R,CAP` — the inverse of the [`std::str::FromStr`]
/// impl, so modes survive a trip through flags and protocol messages.
impl std::fmt::Display for TypeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TypeMode::Global => write!(f, "global"),
            TypeMode::Local { r } => write!(f, "local={r}"),
            TypeMode::GlobalCounting { cap } => write!(f, "counting={cap}"),
            TypeMode::LocalCounting { r, cap } => write!(f, "local-counting={r},{cap}"),
        }
    }
}

impl std::str::FromStr for TypeMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        if s == "global" {
            return Ok(TypeMode::Global);
        }
        if let Some(r) = s.strip_prefix("local=") {
            let r = r.parse().map_err(|_| "bad radius in local=R".to_string())?;
            return Ok(TypeMode::Local { r });
        }
        if let Some(cap) = s.strip_prefix("counting=") {
            let cap = cap.parse().map_err(|_| "bad cap in counting=CAP".to_string())?;
            return Ok(TypeMode::GlobalCounting { cap });
        }
        if let Some(rest) = s.strip_prefix("local-counting=") {
            let (r, cap) = rest
                .split_once(',')
                .ok_or_else(|| "expected local-counting=R,CAP".to_string())?;
            return Ok(TypeMode::LocalCounting {
                r: r.parse().map_err(|_| "bad radius".to_string())?,
                cap: cap.parse().map_err(|_| "bad cap".to_string())?,
            });
        }
        Err(format!(
            "unknown type mode {s:?}; expected global | local=R | counting=CAP | local-counting=R,CAP"
        ))
    }
}

impl TypeMode {
    /// The counting cap of the mode (1 for classical FO modes).
    pub fn cap(&self) -> u32 {
        match self {
            TypeMode::Global | TypeMode::Local { .. } => 1,
            TypeMode::GlobalCounting { cap } | TypeMode::LocalCounting { cap, .. } => *cap,
        }
    }

    /// The locality radius, if the mode is local.
    pub fn radius(&self) -> Option<usize> {
        match self {
            TypeMode::Global | TypeMode::GlobalCounting { .. } => None,
            TypeMode::Local { r } | TypeMode::LocalCounting { r, .. } => Some(*r),
        }
    }
}

/// A learned first-order hypothesis.
#[derive(Clone)]
pub struct Hypothesis {
    /// The parameter tuple `w̄`.
    pub params: Vec<V>,
    /// Quantifier rank of the type layer.
    pub q: usize,
    /// Global or local types.
    pub mode: TypeMode,
    positive: BTreeSet<TypeId>,
    arena: Arc<Mutex<TypeArena>>,
}

impl Hypothesis {
    /// Assemble a hypothesis from parts (used by the fitting routines).
    pub fn new(
        params: Vec<V>,
        q: usize,
        mode: TypeMode,
        positive: BTreeSet<TypeId>,
        arena: Arc<Mutex<TypeArena>>,
    ) -> Self {
        Self {
            params,
            q,
            mode,
            positive,
            arena,
        }
    }

    /// The constantly-false hypothesis (no parameters, empty type set).
    pub fn always_false(q: usize, mode: TypeMode, arena: Arc<Mutex<TypeArena>>) -> Self {
        Self::new(Vec::new(), q, mode, BTreeSet::new(), arena)
    }

    /// The positive type set.
    pub fn positive_types(&self) -> &BTreeSet<TypeId> {
        &self.positive
    }

    /// The parameter tuple `w̄` the hypothesis was fit with.
    pub fn params(&self) -> &[V] {
        &self.params
    }

    /// The shared arena (for callers that want to inspect types).
    pub fn arena(&self) -> &Arc<Mutex<TypeArena>> {
        &self.arena
    }

    /// The type of `v̄w̄` in `g` under this hypothesis's mode.
    pub fn type_of(&self, g: &Graph, tuple: &[V]) -> TypeId {
        let mut combined = Vec::with_capacity(tuple.len() + self.params.len());
        combined.extend_from_slice(tuple);
        combined.extend_from_slice(&self.params);
        let mut arena = self.arena.lock();
        match self.mode.radius() {
            None => folearn_types::compute::counting_type_of(
                g,
                &mut arena,
                &combined,
                self.q,
                self.mode.cap(),
            ),
            Some(r) => folearn_types::local::counting_local_type(
                g,
                &mut arena,
                &combined,
                self.q,
                r,
                self.mode.cap(),
            ),
        }
    }

    /// Classify a `k`-tuple: positive iff the type of `v̄w̄` is in the
    /// positive set. Types never seen during fitting classify negative —
    /// the same semantics as the materialised formula.
    pub fn predict(&self, g: &Graph, tuple: &[V]) -> bool {
        self.positive.contains(&self.type_of(g, tuple))
    }

    /// `err_Λ(h)` on a training sequence over `g`.
    pub fn training_error(&self, g: &Graph, examples: &TrainingSequence) -> f64 {
        examples.error_of(|t| self.predict(g, t))
    }

    /// A stable identity for comparing hypotheses (used by the hardness
    /// reduction's Ramsey step, which groups oracle answers by the
    /// *formula* returned): two hypotheses over the same arena with equal
    /// keys classify identically.
    pub fn canonical_key(&self) -> (Vec<TypeId>, Vec<V>, usize, Option<usize>) {
        (
            self.positive.iter().copied().collect(),
            self.params.clone(),
            self.q,
            self.mode.radius(),
        )
    }

    /// Materialise the hypothesis as an FO formula `φ(x̄; ȳ)` with
    /// instance variables `x_0 … x_{k−1}` and parameter variables
    /// `x_k … x_{k+ℓ−1}` (the paper's `ȳ`), where `k` is inferred from the
    /// stored types' arity.
    ///
    /// Global mode yields quantifier rank exactly `q`; local mode
    /// relativises to the `r`-ball of all `k+ℓ` variables, adding
    /// `O(log r)` quantifier rank. Formula size is exponential in `q` —
    /// materialise for presentation, predict with [`Self::predict`].
    pub fn to_formula(&self) -> Formula {
        let arena = self.arena.lock();
        let disjuncts: Vec<Formula> = self
            .positive
            .iter()
            .map(|&t| {
                let hin = hintikka(&arena, t);
                match self.mode.radius() {
                    None => hin,
                    Some(r) => {
                        let arity = arena.node(t).arity as usize;
                        let centers: Vec<Var> = (0..arity as u16).collect();
                        localize_multi(&hin, &centers, r)
                    }
                }
            })
            .collect();
        Formula::or(disjuncts)
    }

    /// Human-readable summary.
    pub fn describe(&self) -> String {
        let mode = match (self.mode.radius(), self.mode.cap()) {
            (None, 1) => format!("global q={}", self.q),
            (Some(r), 1) => format!("local q={} r={}", self.q, r),
            (None, cap) => format!("global counting q={} cap={cap}", self.q),
            (Some(r), cap) => format!("local counting q={} r={r} cap={cap}", self.q),
        };
        format!(
            "Hypothesis({} positive types, params={:?}, {mode})",
            self.positive.len(),
            self.params
        )
    }
}

impl std::fmt::Debug for Hypothesis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.describe())
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ColorId, Vocabulary};
    use folearn_logic::eval;

    use crate::fit::fit_with_params;

    use super::*;

    fn shared_arena(g: &Graph) -> Arc<Mutex<TypeArena>> {
        Arc::new(Mutex::new(TypeArena::new(Arc::clone(g.vocab()))))
    }

    fn red_path() -> Graph {
        let g = generators::path(8, Vocabulary::new(["Red"]));
        generators::periodically_colored(&g, ColorId(0), 3) // V0, V3, V6
    }

    #[test]
    fn predict_matches_fit_labels() {
        let g = red_path();
        let arena = shared_arena(&g);
        // Target: "is red".
        let examples = TrainingSequence::label_all_tuples(&g, 1, |t| {
            g.has_color(t[0], ColorId(0))
        });
        let (h, err) = fit_with_params(&g, &examples, &[], 0, TypeMode::Global, &arena);
        assert_eq!(err, 0.0);
        for v in g.vertices() {
            assert_eq!(h.predict(&g, &[v]), g.has_color(v, ColorId(0)));
        }
        assert_eq!(h.training_error(&g, &examples), 0.0);
    }

    #[test]
    fn global_formula_agrees_with_predict() {
        let g = red_path();
        let arena = shared_arena(&g);
        // Target: "adjacent to a red vertex", needs q = 1.
        let target = |t: &[V]| {
            g.neighbors(t[0])
                .iter()
                .any(|&w| g.has_color(V(w), ColorId(0)))
        };
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let (h, err) = fit_with_params(&g, &examples, &[], 1, TypeMode::Global, &arena);
        assert_eq!(err, 0.0);
        let phi = h.to_formula();
        assert!(phi.quantifier_rank() <= 1);
        for v in g.vertices() {
            assert_eq!(
                eval::satisfies(&g, &phi, &[v]),
                h.predict(&g, &[v]),
                "at {v}"
            );
        }
    }

    #[test]
    fn local_formula_agrees_with_predict() {
        let g = red_path();
        let arena = shared_arena(&g);
        let target = |t: &[V]| {
            g.neighbors(t[0])
                .iter()
                .any(|&w| g.has_color(V(w), ColorId(0)))
        };
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let (h, err) =
            fit_with_params(&g, &examples, &[], 1, TypeMode::Local { r: 1 }, &arena);
        assert_eq!(err, 0.0);
        let phi = h.to_formula();
        for v in g.vertices() {
            assert_eq!(
                eval::satisfies(&g, &phi, &[v]),
                h.predict(&g, &[v]),
                "at {v}"
            );
        }
    }

    #[test]
    fn parameters_enter_the_type() {
        let g = generators::path(7, Vocabulary::empty());
        let arena = shared_arena(&g);
        // Target: "is adjacent to w" for w = V(3) — inexpressible without
        // parameters (q=0), trivial with the parameter.
        let target = |t: &[V]| g.has_edge(t[0], V(3));
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let (h, err) = fit_with_params(&g, &examples, &[V(3)], 0, TypeMode::Global, &arena);
        assert_eq!(err, 0.0);
        let (_, err_no_params) =
            fit_with_params(&g, &examples, &[], 0, TypeMode::Global, &arena);
        assert!(err_no_params > 0.0);
        assert_eq!(h.params, vec![V(3)]);
    }

    #[test]
    fn type_mode_strings_round_trip() {
        let modes = [
            TypeMode::Global,
            TypeMode::Local { r: 3 },
            TypeMode::GlobalCounting { cap: 2 },
            TypeMode::LocalCounting { r: 1, cap: 4 },
        ];
        for m in modes {
            assert_eq!(m.to_string().parse::<TypeMode>().unwrap(), m);
        }
        assert!("nonsense".parse::<TypeMode>().is_err());
        assert!("local=".parse::<TypeMode>().is_err());
        assert!("local-counting=1".parse::<TypeMode>().is_err());
    }

    #[test]
    fn always_false_predicts_false() {
        let g = red_path();
        let arena = shared_arena(&g);
        let h = Hypothesis::always_false(1, TypeMode::Global, arena);
        assert!(!h.predict(&g, &[V(0)]));
        assert_eq!(h.to_formula(), Formula::FALSE);
    }

    #[test]
    fn canonical_keys_distinguish() {
        let g = red_path();
        let arena = shared_arena(&g);
        let examples = TrainingSequence::label_all_tuples(&g, 1, |t| {
            g.has_color(t[0], ColorId(0))
        });
        let (h1, _) = fit_with_params(&g, &examples, &[], 0, TypeMode::Global, &arena);
        let (h2, _) = fit_with_params(&g, &examples, &[], 0, TypeMode::Global, &arena);
        let flipped = TrainingSequence::label_all_tuples(&g, 1, |t| {
            !g.has_color(t[0], ColorId(0))
        });
        let (h3, _) = fit_with_params(&g, &flipped, &[], 0, TypeMode::Global, &arena);
        assert_eq!(h1.canonical_key(), h2.canonical_key());
        assert_ne!(h1.canonical_key(), h3.canonical_key());
    }
}
