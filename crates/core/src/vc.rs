//! Exact VC-dimension search for hypothesis classes `H_{k,ℓ,q}(G)`.
//!
//! Section 3 of the paper: on nowhere dense classes the VC dimension of
//! `H_{k,ℓ,q}(G)` is uniformly bounded by a constant `d(C, k, ℓ, q)`
//! (Adler–Adler), so ERM needs only `O(d)` examples. Experiment E7
//! *measures* this: VC stays flat as `n` grows on trees, but climbs on
//! cliques with many colours.
//!
//! The search is exact and exponential (`O(binom(n^k, d) · 2^d · n^ℓ)`):
//! a set `S` of `k`-tuples is shattered iff **every** labelling of `S` is
//! realised by some hypothesis — i.e. for every labelling there exists a
//! parameter tuple `w̄` such that no `q`-type class of `{v̄w̄ : v̄ ∈ S}`
//! mixes labels (type-constant labellings are exactly the realisable ones,
//! by the type-majority characterisation in [`crate::fit`]).

use std::sync::Arc;

use folearn_graph::{Graph, V};
use folearn_types::{TypeArena, TypeId};
use parking_lot::Mutex;

use crate::bruteforce::ParamTuples;

/// Compute the exact VC dimension of `H_{k,ℓ,q}(G)`, capped at `cap`
/// (returns `cap` if some `cap`-sized set is shattered).
pub fn vc_dimension(
    g: &Graph,
    k: usize,
    ell: usize,
    q: usize,
    cap: usize,
    arena: &Arc<Mutex<TypeArena>>,
) -> usize {
    let points = all_tuples(g, k);
    let mut best = 0usize;
    for d in 1..=cap.min(points.len()) {
        if exists_shattered_subset(g, &points, d, ell, q, arena) {
            best = d;
        } else {
            break;
        }
    }
    best
}

/// Whether the specific set `s` of `k`-tuples is shattered by
/// `H_{k,ℓ,q}(G)`.
pub fn is_shattered(
    g: &Graph,
    s: &[Vec<V>],
    ell: usize,
    q: usize,
    arena: &Arc<Mutex<TypeArena>>,
) -> bool {
    let d = s.len();
    // Pre-compute, for each parameter tuple, the type partition of s.
    // A labelling is realisable iff *some* partition is label-constant.
    let mut partitions: Vec<Vec<TypeId>> = Vec::new();
    for params in ParamTuples::new(g.num_vertices(), ell) {
        let mut arena = arena.lock();
        let part: Vec<TypeId> = s
            .iter()
            .map(|t| {
                let mut combined = t.clone();
                combined.extend_from_slice(&params);
                folearn_types::compute::type_of(g, &mut arena, &combined, q)
            })
            .collect();
        partitions.push(part);
    }
    // Deduplicate partitions (many parameter tuples induce the same one).
    partitions.sort_unstable();
    partitions.dedup();
    'labelings: for bits in 0..(1u32 << d) {
        for part in &partitions {
            if labeling_constant_on_classes(part, bits, d) {
                continue 'labelings;
            }
        }
        return false;
    }
    true
}

fn labeling_constant_on_classes(part: &[TypeId], bits: u32, d: usize) -> bool {
    for i in 0..d {
        for j in (i + 1)..d {
            if part[i] == part[j] && (bits >> i & 1) != (bits >> j & 1) {
                return false;
            }
        }
    }
    true
}

fn exists_shattered_subset(
    g: &Graph,
    points: &[Vec<V>],
    d: usize,
    ell: usize,
    q: usize,
    arena: &Arc<Mutex<TypeArena>>,
) -> bool {
    let mut idx: Vec<usize> = (0..d).collect();
    loop {
        let subset: Vec<Vec<V>> = idx.iter().map(|&i| points[i].clone()).collect();
        if is_shattered(g, &subset, ell, q, arena) {
            return true;
        }
        // Next combination.
        let mut i = d;
        loop {
            if i == 0 {
                return false;
            }
            i -= 1;
            if idx[i] + (d - i) < points.len() {
                idx[i] += 1;
                for j in (i + 1)..d {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

fn all_tuples(g: &Graph, k: usize) -> Vec<Vec<V>> {
    let mut out = Vec::new();
    let mut tuple = vec![V(0); k];
    fn rec(g: &Graph, tuple: &mut Vec<V>, pos: usize, out: &mut Vec<Vec<V>>) {
        if pos == tuple.len() {
            out.push(tuple.clone());
            return;
        }
        for v in g.vertices() {
            tuple[pos] = v;
            rec(g, tuple, pos + 1, out);
        }
    }
    rec(g, &mut tuple, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, Vocabulary};

    use super::*;

    fn arena_for(g: &Graph) -> Arc<Mutex<TypeArena>> {
        Arc::new(Mutex::new(TypeArena::new(Arc::clone(g.vocab()))))
    }

    #[test]
    fn clique_without_colors_has_tiny_vc() {
        // All clique vertices share every q-type; with ℓ = 0 only the two
        // constant hypotheses exist on K_n, so VC = 1.
        let g = generators::clique(5, Vocabulary::empty());
        let arena = arena_for(&g);
        assert_eq!(vc_dimension(&g, 1, 0, 1, 3, &arena), 1);
    }

    #[test]
    fn parameters_add_capacity() {
        // With one parameter on a path, "x = w" style hypotheses let us
        // shatter pairs: VC ≥ 2.
        let g = generators::path(6, Vocabulary::empty());
        let arena = arena_for(&g);
        let vc0 = vc_dimension(&g, 1, 0, 1, 3, &arena);
        let vc1 = vc_dimension(&g, 1, 1, 1, 3, &arena);
        assert!(vc1 >= vc0, "vc0={vc0} vc1={vc1}");
        assert!(vc1 >= 2, "vc1={vc1}");
    }

    #[test]
    fn shattering_specific_set() {
        let g = generators::path(6, Vocabulary::empty());
        let arena = arena_for(&g);
        // {V0 (endpoint), V2 (inner)} with q = 2, ℓ = 0: endpoint vs inner
        // types differ, so both singleton labellings are realisable —
        // shattered.
        let s = vec![vec![V(0)], vec![V(2)]];
        assert!(is_shattered(&g, &s, 0, 2, &arena));
        // Two symmetric endpoints share a type: not shatterable without
        // parameters.
        let s2 = vec![vec![V(0)], vec![V(5)]];
        assert!(!is_shattered(&g, &s2, 0, 2, &arena));
        // ...but one parameter separates them.
        assert!(is_shattered(&g, &s2, 1, 1, &arena));
    }

    #[test]
    fn vc_stable_across_path_length() {
        // Nowhere dense stability: growing the path does not grow VC
        // (ℓ = 0, q = 1 ⇒ at most the type count bounds it).
        let arena = arena_for(&generators::path(4, Vocabulary::empty()));
        let v4 = vc_dimension(&generators::path(4, Vocabulary::empty()), 1, 0, 1, 3, &arena);
        let v8 = vc_dimension(&generators::path(8, Vocabulary::empty()), 1, 0, 1, 3, &arena);
        assert_eq!(v4, v8);
    }
}
