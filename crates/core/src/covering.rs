//! The Vitali-style covering of Lemma 3.
//!
//! Given `X ⊆ V(G)` and `r ≥ 1`, Lemma 3 produces `Z ⊆ X` and
//! `R = 3^i r` with `i ≤ |X| − 1` such that
//!
//! 1. the `R`-balls around distinct `z, z' ∈ Z` are disjoint, and
//! 2. `N_r(X) ⊆ N_R(Z)`.
//!
//! The learner (Theorem 13) applies this to the guessed centre set `Y`
//! with `r = (k+2)(2r_loc+1)` to obtain the disjoint neighbourhoods whose
//! union becomes the next graph `G^{i+1}`; disjointness is what lets each
//! neighbourhood play its own branch of the splitter game.

use folearn_graph::{bfs, Graph, V};

/// Result of the Lemma 3 construction.
#[derive(Debug, Clone)]
pub struct Covering {
    /// The selected centres `Z ⊆ X`.
    pub centers: Vec<V>,
    /// The final radius `R = 3^i · r`.
    pub radius: usize,
    /// The number of tripling steps `i` performed.
    pub steps: usize,
}

/// Compute `(Z, R)` per Lemma 3.
///
/// Exactly the proof's construction: start with `Z_0 = X, R_0 = r`; while
/// some pair of `R_i`-balls intersects, keep an inclusion-maximal
/// sub-family with pairwise disjoint `R_i`-balls (greedy) and triple the
/// radius. Terminates after at most `|X| − 1` steps because each step
/// drops at least one centre.
///
/// # Panics
/// Panics if `r == 0` or `X` is empty.
pub fn vitali_cover(g: &Graph, x: &[V], r: usize) -> Covering {
    assert!(r >= 1, "Lemma 3 requires r ≥ 1");
    assert!(!x.is_empty(), "Lemma 3 requires a non-empty X");
    let mut centers: Vec<V> = {
        // Deduplicate while keeping order.
        let mut seen = std::collections::HashSet::new();
        x.iter().copied().filter(|v| seen.insert(*v)).collect()
    };
    let mut radius = r;
    let mut steps = 0usize;
    loop {
        if balls_pairwise_disjoint(g, &centers, radius) {
            return Covering {
                centers,
                radius,
                steps,
            };
        }
        // Greedy inclusion-maximal sub-family with disjoint radius-balls.
        let mut kept: Vec<V> = Vec::with_capacity(centers.len());
        for &z in &centers {
            let clash = kept
                .iter()
                .any(|&z2| bfs::distance_to_tuple(g, z, &[z2], 2 * radius).is_some());
            if !clash {
                kept.push(z);
            }
        }
        debug_assert!(kept.len() < centers.len(), "no progress in Lemma 3 loop");
        centers = kept;
        radius *= 3;
        steps += 1;
    }
}

fn balls_pairwise_disjoint(g: &Graph, centers: &[V], radius: usize) -> bool {
    for (i, &a) in centers.iter().enumerate() {
        let dist = bfs::bounded_distances(g, &[a], 2 * radius);
        for &b in &centers[i + 1..] {
            if dist[b.index()] != u32::MAX {
                return false;
            }
        }
    }
    true
}

/// Verify the two Lemma 3 guarantees (used by tests and the experiment
/// harness): disjointness of the `R`-balls of `Z` and coverage
/// `N_r(X) ⊆ N_R(Z)`.
pub fn verify_covering(g: &Graph, x: &[V], r: usize, c: &Covering) -> bool {
    if !balls_pairwise_disjoint(g, &c.centers, c.radius) {
        return false;
    }
    let n_r_x = bfs::ball(g, x, r);
    let covered = bfs::bounded_distances(g, &c.centers, c.radius);
    n_r_x.iter().all(|v| covered[v.index()] != u32::MAX)
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, Vocabulary};

    use super::*;

    #[test]
    fn trivial_when_far_apart() {
        let g = generators::path(30, Vocabulary::empty());
        let x = vec![V(0), V(15), V(29)];
        let c = vitali_cover(&g, &x, 2);
        assert_eq!(c.centers, x);
        assert_eq!(c.radius, 2);
        assert_eq!(c.steps, 0);
        assert!(verify_covering(&g, &x, 2, &c));
    }

    #[test]
    fn merges_close_centres() {
        let g = generators::path(30, Vocabulary::empty());
        let x = vec![V(10), V(11), V(12)];
        let c = vitali_cover(&g, &x, 2);
        assert!(c.centers.len() < 3);
        assert!(verify_covering(&g, &x, 2, &c));
        assert!(c.radius >= 6);
    }

    #[test]
    fn radius_is_power_of_three_times_r() {
        let g = generators::path(60, Vocabulary::empty());
        let x: Vec<V> = (0..10).map(|i| V(i * 3)).collect();
        let r = 2;
        let c = vitali_cover(&g, &x, r);
        let mut expected = r;
        for _ in 0..c.steps {
            expected *= 3;
        }
        assert_eq!(c.radius, expected);
        assert!(c.steps < x.len());
        assert!(verify_covering(&g, &x, r, &c));
    }

    #[test]
    fn worst_case_geometric_spacing() {
        // The proof's worst case: x_i at position ~3^i r on a path forces
        // repeated merging.
        let r = 1;
        let positions = [0usize, 1, 3, 9, 27];
        let g = generators::path(82, Vocabulary::empty());
        let x: Vec<V> = positions.iter().map(|&p| V(p as u32)).collect();
        let c = vitali_cover(&g, &x, r);
        assert!(verify_covering(&g, &x, r, &c));
        assert!(c.steps >= 2, "expected several merge rounds, got {}", c.steps);
        assert!(c.steps < x.len());
    }

    #[test]
    fn random_trees_always_verify() {
        for seed in 0..6 {
            let g = generators::random_tree(60, Vocabulary::empty(), seed);
            let x: Vec<V> = (0..8).map(|i| V(i * 7 % 60)).collect();
            for r in [1usize, 2, 4] {
                let c = vitali_cover(&g, &x, r);
                assert!(verify_covering(&g, &x, r, &c), "seed={seed} r={r}");
            }
        }
    }

    #[test]
    fn duplicates_in_x_are_tolerated() {
        let g = generators::path(10, Vocabulary::empty());
        let c = vitali_cover(&g, &[V(2), V(2), V(2)], 1);
        assert_eq!(c.centers, vec![V(2)]);
        assert_eq!(c.radius, 1);
    }
}
