//! Brute-force ERM — Proposition 11 / Algorithm 1.
//!
//! For constant `ℓ`, trying all `n^ℓ` parameter tuples and, for each,
//! minimising over formulas is fixed-parameter tractable whenever model
//! checking is. Our inner minimisation is the exact type-majority fit (see
//! [`crate::fit`]), so this solver computes the *true optimum* `ε*` over
//! `H_{k,ℓ,q}(G)` — which is also how every other learner in this
//! workspace is validated.

use std::sync::Arc;

use folearn_graph::V;
use folearn_types::TypeArena;
use parking_lot::Mutex;

use crate::fit::{fit_with_params, optimal_error_given_params, TypeMode};
use crate::hypothesis::Hypothesis;
use crate::problem::ErmInstance;

/// Outcome of a brute-force search.
#[derive(Debug)]
pub struct BruteForceResult {
    /// The best hypothesis found.
    pub hypothesis: Hypothesis,
    /// Its training error (`= ε*` for exhaustive search in global mode).
    pub error: f64,
    /// Number of parameter tuples evaluated.
    pub evaluated_params: usize,
}

/// Exhaustive ERM over all parameter tuples `w̄ ∈ V(G)^ℓ` (Algorithm 1).
/// Runs in `O(n^ℓ · m · type-cost)`; stops early on a perfect fit.
pub fn brute_force_erm(
    inst: &ErmInstance<'_>,
    mode: TypeMode,
    arena: &Arc<Mutex<TypeArena>>,
) -> BruteForceResult {
    let g = inst.graph;
    let mut best: Option<(f64, Vec<V>)> = None;
    let mut evaluated = 0usize;
    for params in ParamTuples::new(g.num_vertices(), inst.ell) {
        evaluated += 1;
        let err =
            optimal_error_given_params(g, &inst.examples, &params, inst.q, mode, arena);
        let better = match &best {
            None => true,
            Some((e, _)) => err < *e,
        };
        if better {
            best = Some((err, params.clone()));
            if err == 0.0 {
                break;
            }
        }
    }
    let (error, params) = best.expect("parameter enumeration is never empty");
    let (hypothesis, err2) =
        fit_with_params(g, &inst.examples, &params, inst.q, mode, arena);
    debug_assert_eq!(error, err2);
    BruteForceResult {
        hypothesis,
        error,
        evaluated_params: evaluated,
    }
}

/// The exact class optimum `ε* = min_{h ∈ H_{k,ℓ,q}(G)} err_Λ(h)`,
/// used as ground truth when validating approximate learners.
pub fn optimal_error(inst: &ErmInstance<'_>, arena: &Arc<Mutex<TypeArena>>) -> f64 {
    brute_force_erm(inst, TypeMode::Global, arena).error
}

/// Iterator over all `ℓ`-tuples of vertices (odometer order). Yields the
/// empty tuple exactly once when `ℓ = 0`.
pub struct ParamTuples {
    n: usize,
    current: Vec<u32>,
    done: bool,
}

impl ParamTuples {
    /// All `ℓ`-tuples over `0..n`.
    pub fn new(n: usize, ell: usize) -> Self {
        Self {
            n,
            current: vec![0; ell],
            done: n == 0 && ell > 0,
        }
    }
}

impl Iterator for ParamTuples {
    type Item = Vec<V>;

    fn next(&mut self) -> Option<Vec<V>> {
        if self.done {
            return None;
        }
        let out: Vec<V> = self.current.iter().map(|&i| V(i)).collect();
        // Advance the odometer.
        let mut pos = self.current.len();
        loop {
            if pos == 0 {
                self.done = true;
                break;
            }
            pos -= 1;
            self.current[pos] += 1;
            if (self.current[pos] as usize) < self.n {
                break;
            }
            self.current[pos] = 0;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ColorId, Vocabulary};

    use crate::problem::TrainingSequence;

    use super::*;

    fn arena_for(g: &folearn_graph::Graph) -> Arc<Mutex<TypeArena>> {
        Arc::new(Mutex::new(TypeArena::new(Arc::clone(g.vocab()))))
    }

    #[test]
    fn param_tuples_enumerate_all() {
        let all: Vec<_> = ParamTuples::new(3, 2).collect();
        assert_eq!(all.len(), 9);
        assert_eq!(all[0], vec![V(0), V(0)]);
        assert_eq!(all[8], vec![V(2), V(2)]);
        let empty: Vec<_> = ParamTuples::new(5, 0).collect();
        assert_eq!(empty, vec![Vec::<V>::new()]);
    }

    #[test]
    fn finds_needed_parameter() {
        // Target "dist(x, w) ≤ 1" for a hidden w: zero error requires
        // choosing w (or a type-equivalent vertex) as parameter.
        let g = generators::path(9, Vocabulary::empty());
        let w = V(4);
        let target = |t: &[V]| t[0] == w || g.has_edge(t[0], w);
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.0);
        let arena = arena_for(&g);
        let res = brute_force_erm(&inst, TypeMode::Global, &arena);
        assert_eq!(res.error, 0.0);
        for v in g.vertices() {
            assert_eq!(res.hypothesis.predict(&g, &[v]), target(&[v]));
        }
    }

    #[test]
    fn zero_params_cannot_point() {
        let g = generators::path(9, Vocabulary::empty());
        let w = V(4);
        let target = |t: &[V]| t[0] == w;
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let inst = ErmInstance::new(&g, examples, 1, 0, 1, 0.0);
        let arena = arena_for(&g);
        let res = brute_force_erm(&inst, TypeMode::Global, &arena);
        // V(4) shares its 1-type with other interior vertices, so some
        // error is unavoidable without parameters.
        assert!(res.error > 0.0);
    }

    #[test]
    fn early_exit_on_perfect_fit() {
        let g = generators::path(6, Vocabulary::empty());
        let examples = TrainingSequence::label_all_tuples(&g, 1, |_| true);
        let inst = ErmInstance::new(&g, examples, 1, 1, 0, 0.0);
        let arena = arena_for(&g);
        let res = brute_force_erm(&inst, TypeMode::Global, &arena);
        assert_eq!(res.error, 0.0);
        assert_eq!(res.evaluated_params, 1); // the very first tuple fits
    }

    #[test]
    fn pair_query_with_color() {
        // k = 2: learn "x0 and x1 are both red" exactly.
        let vocab = Vocabulary::new(["Red"]);
        let g = generators::periodically_colored(
            &generators::path(5, vocab),
            ColorId(0),
            2,
        );
        let target = |t: &[V]| {
            g.has_color(t[0], ColorId(0)) && g.has_color(t[1], ColorId(0))
        };
        let examples = TrainingSequence::label_all_tuples(&g, 2, target);
        let inst = ErmInstance::new(&g, examples, 2, 0, 0, 0.0);
        let arena = arena_for(&g);
        let res = brute_force_erm(&inst, TypeMode::Global, &arena);
        assert_eq!(res.error, 0.0);
        assert!(!res.hypothesis.predict(&g, &[V(0), V(1)]));
        assert!(res.hypothesis.predict(&g, &[V(0), V(2)]));
    }

    #[test]
    fn optimal_error_is_a_lower_bound() {
        let g = generators::random_tree(12, Vocabulary::empty(), 3);
        let examples = TrainingSequence::label_all_tuples(&g, 1, |t| t[0].0 % 3 == 0);
        let inst = ErmInstance::new(&g, examples.clone(), 1, 1, 1, 0.0);
        let arena = arena_for(&g);
        let eps_star = optimal_error(&inst, &arena);
        // Any fixed-parameter fit is at least as bad.
        let e0 = optimal_error_given_params(&g, &examples, &[V(0)], 1, TypeMode::Global, &arena);
        assert!(eps_star <= e0 + 1e-12);
    }
}
