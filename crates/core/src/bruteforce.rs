//! Brute-force ERM — Proposition 11 / Algorithm 1, as a parallel sweep.
//!
//! For constant `ℓ`, trying all `n^ℓ` parameter tuples and, for each,
//! minimising over formulas is fixed-parameter tractable whenever model
//! checking is. Our inner minimisation is the exact type-majority fit (see
//! [`crate::fit`]), so this solver computes the *true optimum* `ε*` over
//! `H_{k,ℓ,q}(G)` — which is also how every other learner in this
//! workspace is validated.
//!
//! # Execution model
//!
//! The parameter space `0..n^ℓ` (tuple `i` = digits of `i` base `n`,
//! most-significant first — exactly [`ParamTuples`] order) is swept in
//! blocks by a worker pool ([`rayon::sweep::worker_sweep`]). Three design
//! points keep the parallel result *bit-identical* to the sequential scan:
//!
//! * **Sharded arenas.** Each worker interns types into a private
//!   [`TypeArena`] instead of contending on the caller's mutex. The
//!   misclassification count of a tuple does not depend on how types are
//!   numbered, so worker arenas are simply dropped after the sweep and the
//!   winning tuple is re-fit once against the caller's shared arena.
//! * **Monotone pruning.** Workers share an atomic best-count bound; per
//!   tuple, the example tally aborts as soon as the running count strictly
//!   exceeds it ([`crate::fit::misclassifications_bounded`]). The running
//!   count is monotone in the example stream, so a tuple tying or beating
//!   the optimum is never aborted — pruning cannot change the result.
//! * **Deterministic tie-breaking.** Candidates are merged by minimising
//!   the pair `(count, tuple index)`, so the lowest-index optimum wins no
//!   matter how blocks were scheduled — the same tuple the sequential
//!   first-strictly-better scan returns. A perfect fit (`count == 0`)
//!   publishes its index through a second atomic; workers skip indices
//!   above the smallest published one, which converges to the global
//!   minimum perfect index.
//!
//! Only the *counters* ([`BruteForceResult::evaluated_params`] /
//! [`BruteForceResult::pruned_params`]) depend on scheduling: how many
//! tuples a worker tallies before observing a bound published by another
//! worker is timing-dependent. With one thread (or pruning off) they are
//! deterministic too.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use folearn_graph::V;
use folearn_obs::{Counter, Json, LocalStats};
use folearn_types::TypeArena;
use parking_lot::Mutex;

use crate::fit::{
    error_rate, fit_with_params_counted, misclassifications_bounded, TypeMode,
};
use crate::hypothesis::Hypothesis;
use crate::problem::ErmInstance;

/// Tuning knobs for the parallel brute-force sweep.
///
/// The default configuration (ambient thread count, pruning on) is what
/// [`brute_force_erm`] uses. Every configuration returns the same
/// hypothesis and error; the knobs only trade wall-clock for work
/// accounting.
#[derive(Clone, Debug)]
pub struct BruteForceOpts {
    /// Worker threads: `None` inherits the ambient rayon thread count
    /// (respects an enclosing `ThreadPool::install`), `Some(0)` means one
    /// per core, `Some(t)` exactly `t`.
    pub threads: Option<usize>,
    /// Share a best-count bound across workers and abort per-tuple
    /// tallies that provably exceed it. Never changes the optimum; see
    /// the module docs for why.
    pub prune: bool,
    /// Tuple indices per dispatched block; `None` picks a size balancing
    /// dispatch overhead against load balance.
    pub block_size: Option<usize>,
}

impl Default for BruteForceOpts {
    fn default() -> Self {
        Self {
            threads: None,
            prune: true,
            block_size: None,
        }
    }
}

/// Outcome of a brute-force search.
#[derive(Debug)]
pub struct BruteForceResult {
    /// The best hypothesis found.
    pub hypothesis: Hypothesis,
    /// Its training error (`= ε*` for exhaustive search in global mode).
    pub error: f64,
    /// Parameter tuples whose tally ran to completion.
    pub evaluated_params: usize,
    /// Parameter tuples abandoned early: their running misclassification
    /// count exceeded the shared bound partway through the examples.
    /// `evaluated_params + pruned_params` is the number of tuples touched.
    pub pruned_params: usize,
}

/// Exhaustive ERM over all parameter tuples `w̄ ∈ V(G)^ℓ` (Algorithm 1).
/// Runs in `O(n^ℓ · m · type-cost)` total work, parallelised over tuples;
/// stops early on a perfect fit. Equivalent to
/// [`brute_force_erm_with`] under [`BruteForceOpts::default`].
pub fn brute_force_erm(
    inst: &ErmInstance<'_>,
    mode: TypeMode,
    arena: &Arc<Mutex<TypeArena>>,
) -> BruteForceResult {
    brute_force_erm_with(inst, mode, arena, &BruteForceOpts::default())
}

/// [`brute_force_erm`] with explicit engine knobs.
pub fn brute_force_erm_with(
    inst: &ErmInstance<'_>,
    mode: TypeMode,
    arena: &Arc<Mutex<TypeArena>>,
    opts: &BruteForceOpts,
) -> BruteForceResult {
    match opts.threads {
        None => sweep(inst, mode, arena, opts),
        Some(t) => rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("building a thread pool cannot fail")
            .install(|| sweep(inst, mode, arena, opts)),
    }
}

/// Per-worker sweep state: a private arena plus the worker's running
/// champion and work counters.
struct Worker {
    arena: TypeArena,
    params: Vec<V>,
    /// Best `(misclassification count, tuple index)` seen by this worker.
    best: Option<(usize, usize)>,
    evaluated: usize,
    pruned: usize,
    /// Folded per-block span measurements (empty when capture is off).
    stats: LocalStats,
}

fn sweep(
    inst: &ErmInstance<'_>,
    mode: TypeMode,
    arena: &Arc<Mutex<TypeArena>>,
    opts: &BruteForceOpts,
) -> BruteForceResult {
    let g = inst.graph;
    let n = g.num_vertices();
    let ell = inst.ell;
    let q = inst.q;
    let examples = &inst.examples;
    let total = n
        .checked_pow(u32::try_from(ell).expect("ℓ overflows u32"))
        .expect("parameter space n^ℓ overflows usize");
    assert!(total > 0, "parameter enumeration is never empty");
    let vocab = Arc::clone(arena.lock().vocab());
    let block = opts
        .block_size
        .unwrap_or_else(|| rayon::sweep::default_block_size(total));
    let prune = opts.prune;

    // Best completed misclassification count across all workers (an upper
    // bound on the optimum at all times), and the smallest index known to
    // fit perfectly (`usize::MAX` = none yet).
    let best_bound = AtomicUsize::new(usize::MAX);
    let perfect = AtomicUsize::new(usize::MAX);

    let sweep_span = folearn_obs::span("erm.sweep");
    folearn_obs::meta("total_params", Json::int(total));
    folearn_obs::meta("block", Json::int(block));
    folearn_obs::meta("prune", Json::Bool(prune));

    let states = rayon::sweep::worker_sweep(
        total,
        block,
        |_| Worker {
            arena: TypeArena::new(Arc::clone(&vocab)),
            params: vec![V(0); ell],
            best: None,
            evaluated: 0,
            pruned: 0,
            stats: LocalStats::new(),
        },
        |w, range| {
            // One detached span per dispatched block: finished on the
            // worker thread, folded into the worker's `Send` stats, and
            // re-attached under `erm.sweep` by the coordinator below.
            // Capture off: one relaxed load here and two no-op counts.
            let block_span = folearn_obs::span("erm.block");
            let (ev0, pr0) = (w.evaluated, w.pruned);
            let mut flow = ControlFlow::Continue(());
            for idx in range {
                if idx > perfect.load(Ordering::Relaxed) {
                    // Some index ≤ idx fits perfectly; this worker only
                    // gets higher indices from here on.
                    flow = ControlFlow::Break(());
                    break;
                }
                decode_param_tuple(idx, n, &mut w.params);
                let bound = if prune {
                    best_bound.load(Ordering::Relaxed)
                } else {
                    usize::MAX
                };
                match misclassifications_bounded(
                    g,
                    examples,
                    &w.params,
                    q,
                    mode,
                    &mut w.arena,
                    bound,
                ) {
                    Some(wrong) => {
                        w.evaluated += 1;
                        if w.best.is_none_or(|b| (wrong, idx) < b) {
                            w.best = Some((wrong, idx));
                        }
                        best_bound.fetch_min(wrong, Ordering::Relaxed);
                        if wrong == 0 {
                            perfect.fetch_min(idx, Ordering::Relaxed);
                            flow = ControlFlow::Break(());
                            break;
                        }
                    }
                    None => w.pruned += 1,
                }
            }
            folearn_obs::count(Counter::EvaluatedParams, (w.evaluated - ev0) as u64);
            folearn_obs::count(Counter::PrunedParams, (w.pruned - pr0) as u64);
            w.stats.absorb(block_span.finish());
            flow
        },
    );

    let workers = states.len();
    let mut evaluated = 0usize;
    let mut pruned = 0usize;
    let mut best: Option<(usize, usize)> = None;
    for (wid, w) in states.into_iter().enumerate() {
        evaluated += w.evaluated;
        pruned += w.pruned;
        if let Some(b) = w.best {
            if best.is_none_or(|cur| b < cur) {
                best = Some(b);
            }
        }
        if let Some(mut rec) = w.stats.into_record("erm.worker") {
            rec.meta.push(("worker".to_string(), Json::int(wid)));
            folearn_obs::adopt(rec);
        }
        // `w.arena` drops here: counts never depended on its type ids, and
        // the final fit below re-derives everything in the shared arena,
        // so the hypothesis is bit-identical to a sequential run.
    }
    folearn_obs::meta("workers", Json::int(workers));
    drop(sweep_span);
    let (wrong, idx) = best.expect("the optimal tuple is never pruned");
    let mut params = vec![V(0); ell];
    decode_param_tuple(idx, n, &mut params);
    let (hypothesis, wrong2) =
        fit_with_params_counted(g, examples, &params, q, mode, arena);
    debug_assert_eq!(
        wrong, wrong2,
        "sweep and final fit disagree on the misclassification count"
    );
    BruteForceResult {
        hypothesis,
        error: error_rate(wrong, examples.len()),
        evaluated_params: evaluated,
        pruned_params: pruned,
    }
}

/// Reference implementation: the plain sequential scan of [`ParamTuples`]
/// with no pruning, kept verbatim for differential testing of the
/// parallel engine.
pub fn brute_force_erm_sequential(
    inst: &ErmInstance<'_>,
    mode: TypeMode,
    arena: &Arc<Mutex<TypeArena>>,
) -> BruteForceResult {
    let g = inst.graph;
    let mut best: Option<(usize, Vec<V>)> = None;
    let mut evaluated = 0usize;
    {
        let mut shared = arena.lock();
        for params in ParamTuples::new(g.num_vertices(), inst.ell) {
            evaluated += 1;
            let wrong = misclassifications_bounded(
                g,
                &inst.examples,
                &params,
                inst.q,
                mode,
                &mut shared,
                usize::MAX,
            )
            .expect("an unbounded tally never aborts");
            if best.as_ref().is_none_or(|(b, _)| wrong < *b) {
                let stop = wrong == 0;
                best = Some((wrong, params));
                if stop {
                    break;
                }
            }
        }
    }
    let (wrong, params) = best.expect("parameter enumeration is never empty");
    let (hypothesis, wrong2) =
        fit_with_params_counted(g, &inst.examples, &params, inst.q, mode, arena);
    debug_assert_eq!(wrong, wrong2);
    BruteForceResult {
        hypothesis,
        error: error_rate(wrong, inst.examples.len()),
        evaluated_params: evaluated,
        pruned_params: 0,
    }
}

/// The exact class optimum `ε* = min_{h ∈ H_{k,ℓ,q}(G)} err_Λ(h)`,
/// used as ground truth when validating approximate learners.
pub fn optimal_error(inst: &ErmInstance<'_>, arena: &Arc<Mutex<TypeArena>>) -> f64 {
    brute_force_erm(inst, TypeMode::Global, arena).error
}

/// Write the `idx`-th parameter tuple (odometer order, last position
/// fastest — the digits of `idx` base `n`, most-significant first) into
/// `out`.
fn decode_param_tuple(mut idx: usize, n: usize, out: &mut [V]) {
    for slot in out.iter_mut().rev() {
        *slot = V((idx % n) as u32);
        idx /= n;
    }
    debug_assert_eq!(idx, 0, "tuple index out of range");
}

/// Iterator over all `ℓ`-tuples of vertices (odometer order). Yields the
/// empty tuple exactly once when `ℓ = 0`.
pub struct ParamTuples {
    n: usize,
    current: Vec<u32>,
    done: bool,
}

impl ParamTuples {
    /// All `ℓ`-tuples over `0..n`.
    pub fn new(n: usize, ell: usize) -> Self {
        Self {
            n,
            current: vec![0; ell],
            done: n == 0 && ell > 0,
        }
    }
}

impl Iterator for ParamTuples {
    type Item = Vec<V>;

    fn next(&mut self) -> Option<Vec<V>> {
        if self.done {
            return None;
        }
        let out: Vec<V> = self.current.iter().map(|&i| V(i)).collect();
        // Advance the odometer.
        let mut pos = self.current.len();
        loop {
            if pos == 0 {
                self.done = true;
                break;
            }
            pos -= 1;
            self.current[pos] += 1;
            if (self.current[pos] as usize) < self.n {
                break;
            }
            self.current[pos] = 0;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ColorId, Vocabulary};

    use crate::fit::optimal_error_given_params;
    use crate::problem::TrainingSequence;

    use super::*;

    fn arena_for(g: &folearn_graph::Graph) -> Arc<Mutex<TypeArena>> {
        Arc::new(Mutex::new(TypeArena::new(Arc::clone(g.vocab()))))
    }

    #[test]
    fn param_tuples_enumerate_all() {
        let all: Vec<_> = ParamTuples::new(3, 2).collect();
        assert_eq!(all.len(), 9);
        assert_eq!(all[0], vec![V(0), V(0)]);
        assert_eq!(all[8], vec![V(2), V(2)]);
        let empty: Vec<_> = ParamTuples::new(5, 0).collect();
        assert_eq!(empty, vec![Vec::<V>::new()]);
    }

    #[test]
    fn decode_matches_iterator_order() {
        let mut out = vec![V(0); 2];
        for (idx, tuple) in ParamTuples::new(3, 2).enumerate() {
            decode_param_tuple(idx, 3, &mut out);
            assert_eq!(out, tuple, "at index {idx}");
        }
        decode_param_tuple(0, 5, &mut []);
    }

    #[test]
    fn finds_needed_parameter() {
        // Target "dist(x, w) ≤ 1" for a hidden w: zero error requires
        // choosing w (or a type-equivalent vertex) as parameter.
        let g = generators::path(9, Vocabulary::empty());
        let w = V(4);
        let target = |t: &[V]| t[0] == w || g.has_edge(t[0], w);
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.0);
        let arena = arena_for(&g);
        let res = brute_force_erm(&inst, TypeMode::Global, &arena);
        assert_eq!(res.error, 0.0);
        for v in g.vertices() {
            assert_eq!(res.hypothesis.predict(&g, &[v]), target(&[v]));
        }
    }

    #[test]
    fn zero_params_cannot_point() {
        let g = generators::path(9, Vocabulary::empty());
        let w = V(4);
        let target = |t: &[V]| t[0] == w;
        let examples = TrainingSequence::label_all_tuples(&g, 1, target);
        let inst = ErmInstance::new(&g, examples, 1, 0, 1, 0.0);
        let arena = arena_for(&g);
        let res = brute_force_erm(&inst, TypeMode::Global, &arena);
        // V(4) shares its 1-type with other interior vertices, so some
        // error is unavoidable without parameters.
        assert!(res.error > 0.0);
    }

    #[test]
    fn early_exit_on_perfect_fit() {
        let g = generators::path(6, Vocabulary::empty());
        let examples = TrainingSequence::label_all_tuples(&g, 1, |_| true);
        let inst = ErmInstance::new(&g, examples, 1, 1, 0, 0.0);
        let arena = arena_for(&g);
        let opts = BruteForceOpts {
            threads: Some(1),
            ..BruteForceOpts::default()
        };
        let res = brute_force_erm_with(&inst, TypeMode::Global, &arena, &opts);
        assert_eq!(res.error, 0.0);
        assert_eq!(res.evaluated_params, 1); // the very first tuple fits
        assert_eq!(res.pruned_params, 0);
    }

    #[test]
    fn pair_query_with_color() {
        // k = 2: learn "x0 and x1 are both red" exactly.
        let vocab = Vocabulary::new(["Red"]);
        let g = generators::periodically_colored(
            &generators::path(5, vocab),
            ColorId(0),
            2,
        );
        let target = |t: &[V]| {
            g.has_color(t[0], ColorId(0)) && g.has_color(t[1], ColorId(0))
        };
        let examples = TrainingSequence::label_all_tuples(&g, 2, target);
        let inst = ErmInstance::new(&g, examples, 2, 0, 0, 0.0);
        let arena = arena_for(&g);
        let res = brute_force_erm(&inst, TypeMode::Global, &arena);
        assert_eq!(res.error, 0.0);
        assert!(!res.hypothesis.predict(&g, &[V(0), V(1)]));
        assert!(res.hypothesis.predict(&g, &[V(0), V(2)]));
    }

    #[test]
    fn optimal_error_is_a_lower_bound() {
        let g = generators::random_tree(12, Vocabulary::empty(), 3);
        let examples = TrainingSequence::label_all_tuples(&g, 1, |t| t[0].0 % 3 == 0);
        let inst = ErmInstance::new(&g, examples.clone(), 1, 1, 1, 0.0);
        let arena = arena_for(&g);
        let eps_star = optimal_error(&inst, &arena);
        // Any fixed-parameter fit is at least as bad.
        let e0 = optimal_error_given_params(&g, &examples, &[V(0)], 1, TypeMode::Global, &arena);
        assert!(eps_star <= e0 + 1e-12);
    }

    /// Every engine configuration must agree with the sequential
    /// reference bit-for-bit: same error, same parameters, same
    /// positive-type classification on every vertex.
    #[test]
    fn parallel_matches_sequential_reference() {
        let g = generators::random_tree(14, Vocabulary::empty(), 5);
        let examples =
            TrainingSequence::label_all_tuples(&g, 1, |t| t[0].0 % 4 == 0 || t[0].0 == 7);
        let inst = ErmInstance::new(&g, examples, 1, 2, 1, 0.0);
        let reference = {
            let arena = arena_for(&g);
            brute_force_erm_sequential(&inst, TypeMode::Global, &arena)
        };
        for threads in [1, 2, 4, 7] {
            for prune in [false, true] {
                for block in [1, 3, 64] {
                    let arena = arena_for(&g);
                    let opts = BruteForceOpts {
                        threads: Some(threads),
                        prune,
                        block_size: Some(block),
                    };
                    let res =
                        brute_force_erm_with(&inst, TypeMode::Global, &arena, &opts);
                    assert_eq!(
                        res.error.to_bits(),
                        reference.error.to_bits(),
                        "threads={threads} prune={prune} block={block}"
                    );
                    assert_eq!(
                        res.hypothesis.params(),
                        reference.hypothesis.params(),
                        "threads={threads} prune={prune} block={block}"
                    );
                    for v in g.vertices() {
                        assert_eq!(
                            res.hypothesis.predict(&g, &[v]),
                            reference.hypothesis.predict(&g, &[v]),
                            "threads={threads} prune={prune} block={block} at {v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pruning_reduces_work_not_quality() {
        // Target "x = w" for hidden w = V(6), plus one conflicting label
        // on V(0) so no tuple fits perfectly (the sweep cannot
        // short-circuit): w = 6 errs once, every other choice errs twice.
        let g = generators::path(12, Vocabulary::empty());
        let mut pairs: Vec<(Vec<V>, bool)> =
            g.vertices().map(|v| (vec![v], v == V(6))).collect();
        pairs.push((vec![V(0)], true));
        let examples = TrainingSequence::from_pairs(pairs);
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.0);
        let one = |prune| {
            let arena = arena_for(&g);
            let opts = BruteForceOpts {
                threads: Some(1),
                prune,
                block_size: None,
            };
            brute_force_erm_with(&inst, TypeMode::Global, &arena, &opts)
        };
        let full = one(false);
        let pruned = one(true);
        assert!(full.error > 0.0, "the conflicting labels forbid a perfect fit");
        assert_eq!(full.error, pruned.error);
        assert_eq!(full.hypothesis.params(), pruned.hypothesis.params());
        assert_eq!(full.pruned_params, 0);
        assert_eq!(full.evaluated_params, 12); // no short-circuit: full scan
        assert_eq!(
            pruned.evaluated_params + pruned.pruned_params,
            full.evaluated_params,
            "pruning must not change which tuples are touched"
        );
        assert!(
            pruned.pruned_params > 0,
            "tuples past w = 6 are strictly worse than the bound and must abort"
        );
    }
}
